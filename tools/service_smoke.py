"""CI smoke for the job server: streamed results == the CLI path.

Starts ``python -m repro serve`` as a subprocess on a free port with a
temporary store, then:

1. submits a ``synth`` job and a ``verify`` job for ``gcd`` and checks
   the streamed results against the same work run in-process through
   the CLI-path entry points (``engine_for_benchmark`` /
   ``verify_benchmark``);
2. re-submits the synth job and asserts the warm store answered — the
   ``store`` stage must report cross-run disk hits — with the design
   summary bit-identical to the cold run.

With ``--faults PLAN`` (the ``chaos-smoke`` CI job) the server runs
under a pinned :mod:`repro.faults` plan — e.g. a worker SIGKILL during
the cold synth job and an injected store write error during verify —
and the smoke additionally asserts the chaos was survived: the killed
job retried (``attempts`` > 1), the pool rebuilt
(``worker_restarts`` > 0), and the streamed results *still* match the
in-process CLI path bit-for-bit.

Exit code is non-zero on any mismatch.  Run from the repository root:

    PYTHONPATH=src python tools/service_smoke.py
    PYTHONPATH=src python tools/service_smoke.py \
        --faults "seed=11;kill_worker@1;store_write@2:1"
"""

from __future__ import annotations

import argparse
import json
import pathlib
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

SYNTH_JOB = {"kind": "synth", "benchmark": "gcd", "passes": 6,
             "stimulus_seed": 7, "laxity": 2.0, "mode": "power",
             "verify": True,
             "search": {"depth": 3, "candidates": 6, "iterations": 3,
                        "seed": 0}}
VERIFY_JOB = {"kind": "verify", "benchmark": "gcd", "passes": 10,
              "stimulus_seed": 0, "iverilog": "off"}


def design_summary(summary: dict) -> dict:
    """The run summary minus cache counters (which legitimately vary)."""
    return {k: v for k, v in summary.items() if not k.startswith("cache_")}


def verdict(report: dict) -> dict:
    """A conformance report minus wall-clock time."""
    return {k: v for k, v in report.items() if k != "wall_s"}


def cli_path_results() -> tuple[dict, dict]:
    """The same synth + verify work, run in-process (no store)."""
    from repro.core.search import SearchConfig
    from repro.explore.driver import engine_for_benchmark
    from repro.verify.conformance import verify_benchmark

    engine = engine_for_benchmark(SYNTH_JOB["benchmark"],
                                  n_passes=SYNTH_JOB["passes"],
                                  seed=SYNTH_JOB["stimulus_seed"],
                                  store_dir="")
    spec = SYNTH_JOB["search"]
    result = engine.run(mode=SYNTH_JOB["mode"], laxity=SYNTH_JOB["laxity"],
                        search=SearchConfig(max_depth=spec["depth"],
                                            max_candidates=spec["candidates"],
                                            max_iterations=spec["iterations"],
                                            seed=spec["seed"]))
    report = verify_benchmark(VERIFY_JOB["benchmark"],
                              n_passes=VERIFY_JOB["passes"],
                              seed=VERIFY_JOB["stimulus_seed"],
                              use_iverilog="off", minimize=False,
                              store_dir="")
    return result.summary(), report.summary()


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--faults", metavar="PLAN", default=None,
                        help="fault plan spec to run the server under "
                             "(e.g. 'seed=11;kill_worker@1;store_write@2:1')")
    opts = parser.parse_args()

    with tempfile.TemporaryDirectory(prefix="repro-store-") as store:
        argv = [sys.executable, "-m", "repro", "serve", "--port", "0",
                "--workers", "1", "--store", store, "--timeout", "300"]
        if opts.faults:
            argv += ["--faults", opts.faults]
        proc = subprocess.Popen(
            argv, cwd=ROOT, stdout=subprocess.PIPE, text=True,
            env={**__import__("os").environ, "PYTHONPATH": str(SRC)})
        try:
            serving = json.loads(proc.stdout.readline())
            assert serving["event"] == "serving", serving
            print(f"service_smoke: serving on port {serving['port']}, "
                  f"store {store}, faults {serving.get('faults')}")

            from repro.service import ServiceClient

            with ServiceClient(port=serving["port"], timeout=600) as client:
                cold_event = client.run(SYNTH_JOB)
                cold = cold_event["result"]
                verify = client.run(VERIFY_JOB)["result"]
                warm = client.run(SYNTH_JOB)["result"]
                stats = client.stats()
        finally:
            proc.terminate()
            proc.wait(timeout=30)

        from repro.service import read_journal

        journal = read_journal(pathlib.Path(store) / "journal.ndjson")

        cli_synth, cli_verify = cli_path_results()

        failures = []
        if design_summary(cold["summary"]) != design_summary(cli_synth):
            failures.append(
                f"streamed synth result != CLI path:\n  served: "
                f"{design_summary(cold['summary'])}\n  cli:    "
                f"{design_summary(cli_synth)}")
        if not cold.get("conformance_ok"):
            failures.append("served synth job failed conformance")
        if verdict(verify["report"]) != verdict(cli_verify):
            failures.append(
                f"streamed verify report != CLI path:\n  served: "
                f"{verdict(verify['report'])}\n  cli:    "
                f"{verdict(cli_verify)}")
        if design_summary(warm["summary"]) != design_summary(cold["summary"]):
            failures.append("warm re-submission changed the design summary")
        warm_hits = warm.get("store_stage", {}).get("incremental", 0)
        if warm_hits <= 0:
            failures.append(
                f"warm re-submission reported no store hits "
                f"(store_stage={warm.get('store_stage')})")
        if not any(rec.get("rec") == "draining" for rec in journal):
            failures.append("SIGTERM did not journal a draining record")

        if opts.faults:
            # The chaos really happened AND was survived: the killed
            # job retried, the pool rebuilt, nothing above mismatched.
            if cold_event.get("attempts", 1) < 2:
                failures.append(
                    f"faulted cold synth was not retried "
                    f"(attempts={cold_event.get('attempts')})")
            if stats.get("worker_restarts", 0) < 1:
                failures.append(
                    f"pool reported no worker rebuilds under "
                    f"{opts.faults!r} (stats={stats})")
            if stats.get("failed", 0) != 0:
                failures.append(
                    f"jobs failed terminally under the fault plan "
                    f"(stats={stats})")

        if failures:
            print("service_smoke: FAIL")
            print("\n".join(failures))
            return 1
        chaos = f" under faults {opts.faults!r}" if opts.faults else ""
        print(f"service_smoke: OK{chaos} — results match the CLI path, "
              f"warm re-submission hit the store {warm_hits} times")
        return 0


if __name__ == "__main__":
    sys.exit(main())
