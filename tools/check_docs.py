"""Docs smoke check: every ``bash`` snippet must reference live code.

Scans README.md and docs/*.md for fenced ```bash blocks and validates
each command line against the repository:

* ``python -m <module>`` — the module must import (with ``src/`` on the
  path), and for ``python -m repro <subcommand>`` the subcommand must
  exist in the CLI parser with every long option it is given;
* ``python <file> ...`` / ``pytest <file>`` — the referenced file must
  exist;
* one ``--help`` smoke run per distinct documented module, so a snippet
  can never point at a module whose entry point crashes on import.

Exit code is non-zero on the first stale path, so CI catches docs that
drift from the code.  Run from the repository root:

    PYTHONPATH=src python tools/check_docs.py
"""

from __future__ import annotations

import importlib.util
import re
import shlex
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SRC = ROOT / "src"

FENCE = re.compile(r"```bash\n(.*?)```", re.DOTALL)


def extract_commands(text: str) -> list[str]:
    """Bash snippet lines, with continuations joined and comments dropped."""
    commands = []
    for block in FENCE.findall(text):
        joined = block.replace("\\\n", " ")
        for line in joined.splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                commands.append(line)
    return commands


def strip_env_prefix(tokens: list[str]) -> list[str]:
    """Drop leading VAR=value assignments (e.g. PYTHONPATH=src)."""
    while tokens and "=" in tokens[0] and not tokens[0].startswith("-"):
        tokens = tokens[1:]
    return tokens


def module_exists(name: str) -> bool:
    if sys.path[0] != str(SRC):
        sys.path.insert(0, str(SRC))
    try:
        return importlib.util.find_spec(name) is not None
    except (ImportError, ModuleNotFoundError, ValueError):
        return False


def cli_accepts(argv: list[str]) -> str | None:
    """Check a ``repro <subcommand> --opts`` line against the live parser."""
    from repro.cli import build_parser

    parser = build_parser()
    subactions = next(a for a in parser._actions
                      if hasattr(a, "choices") and a.choices
                      and not a.option_strings)
    if not argv:
        return None  # bare `python -m repro --help` style
    sub = argv[0]
    if sub.startswith("-"):
        return None
    if sub not in subactions.choices:
        return f"unknown subcommand {sub!r} (have {sorted(subactions.choices)})"
    known = {opt for action in subactions.choices[sub]._actions
             for opt in action.option_strings}
    for token in argv[1:]:
        if token.startswith("--") and token.split("=")[0] not in known:
            return f"subcommand {sub!r} has no option {token.split('=')[0]!r}"
    return None


def check_command(line: str) -> tuple[str | None, str | None]:
    """Validate one snippet line; returns (error, module-to-smoke)."""
    try:
        tokens = strip_env_prefix(shlex.split(line))
    except ValueError as exc:
        return f"unparseable: {exc}", None
    if not tokens:
        return None, None
    prog = Path(tokens[0]).name
    if prog in ("pip", "sudo", "apt-get", "cat", "iverilog"):
        return None, None
    if prog not in ("python", "python3"):
        return None, None
    args = tokens[1:]
    if not args:
        return None, None  # bare interpreter (interactive snippet)
    if args[0] == "-m":
        module = args[1]
        rest = args[2:]
        if module in ("pytest", "pip"):
            return _check_paths(rest), None
        if not module_exists(module):
            return f"module {module!r} does not import", None
        if module == "repro":
            return cli_accepts(rest), module
        return None, module
    return _check_paths(args), None


def _check_paths(args: list[str]) -> str | None:
    """The file-like arguments of a command must exist in the repo."""
    for token in args:
        if token.startswith("-"):
            continue
        if "/" in token and not token.startswith("results/"):
            candidate = (ROOT / token)
            if not candidate.exists():
                return f"referenced path {token!r} does not exist"
    return None


def smoke_help(module: str) -> str | None:
    """``python -m <module> --help`` must exit 0."""
    proc = subprocess.run(
        [sys.executable, "-m", module, "--help"],
        cwd=ROOT, capture_output=True, text=True, timeout=120,
        env={**__import__("os").environ,
             "PYTHONPATH": str(SRC) + (
                 ":" + __import__("os").environ["PYTHONPATH"]
                 if "PYTHONPATH" in __import__("os").environ else "")})
    if proc.returncode != 0:
        return (f"`python -m {module} --help` exited "
                f"{proc.returncode}: {proc.stderr.strip()[:200]}")
    return None


def main() -> int:
    sources = [ROOT / "README.md", *sorted((ROOT / "docs").glob("*.md"))]
    failures = []
    modules: set[str] = set()
    n_commands = 0
    for source in sources:
        for line in extract_commands(source.read_text(encoding="utf-8")):
            n_commands += 1
            error, module = check_command(line)
            if error:
                failures.append(f"{source.relative_to(ROOT)}: {line!r}: {error}")
            if module:
                modules.add(module)
    for module in sorted(modules):
        error = smoke_help(module)
        if error:
            failures.append(error)

    print(f"check_docs: {n_commands} snippet commands across "
          f"{len(sources)} files, {len(modules)} modules --help-smoked")
    if failures:
        print("\n".join(f"STALE: {f}" for f in failures))
        return 1
    print("check_docs: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
