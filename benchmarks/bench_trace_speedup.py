"""Trace manipulation vs re-simulation (the Section 2.3 engineering claim).

One behavioral simulation is recorded; every synthesis step then derives
unit traces by merging.  This bench times a binding evaluation done the
trace-manipulation way (replay + merge) against a full re-simulation, on
the largest benchmark.
"""

import time

from conftest import publish
from repro.benchmarks import get_benchmark
from repro.cdfg.interpreter import simulate
from repro.core.binding import Binding
from repro.library import default_library
from repro.power.trace_manip import merge_unit_traces
from repro.rtl import build_architecture
from repro.sched import replay, wavesched


def bench_trace_speedup(benchmark):
    bench_def = get_benchmark("x25_send")
    cdfg = bench_def.cdfg()
    stim = bench_def.stimulus(40, seed=17)
    store = simulate(cdfg, stim)
    binding = Binding.initial_parallel(cdfg, default_library())
    stg = wavesched(cdfg, binding, clock_ns=bench_def.clock_ns)
    rep = replay(stg, cdfg, store)
    arch = build_architecture(cdfg, binding, stg, clock_ns=bench_def.clock_ns)

    def merge_only():
        return merge_unit_traces(arch, store, rep)

    benchmark(merge_only)

    t0 = time.perf_counter()
    merge_unit_traces(arch, store, rep)
    merge_s = time.perf_counter() - t0
    t0 = time.perf_counter()
    simulate(cdfg, stim)
    resim_s = time.perf_counter() - t0
    speedup = resim_s / merge_s if merge_s > 0 else float("inf")
    text = (f"Trace manipulation vs re-simulation (x25_send, 40 passes)\n"
            f"  merge unit traces : {merge_s * 1e3:8.2f} ms\n"
            f"  full re-simulation: {resim_s * 1e3:8.2f} ms\n"
            f"  speedup           : {speedup:8.2f}x")
    publish("trace_speedup", text)
    benchmark.extra_info["speedup_vs_resim"] = round(speedup, 2)
