"""The [13] claim: multiplexer networks can consume a large share of a CFI
circuit's power.

The paper motivates mux restructuring with interconnect consuming "more
than 40%" of total power in CFI circuits.  Parallel initial designs have
few muxes; aggressive area-mode sharing builds the big mux networks the
claim is about — we report the mux share of both, measured bit-level.
"""

from conftest import publish, run_once
from repro.benchmarks import get_benchmark
from repro.cdfg.interpreter import simulate
from repro.core.impact import synthesize
from repro.core.search import SearchConfig
from repro.gatesim import simulate_architecture
from repro.experiments.report import format_table
from repro.sched.engine import ScheduleOptions

SEARCH = SearchConfig(max_depth=5, max_candidates=12, max_iterations=6, seed=0)
NAMES = ("gcd", "dealer", "x25_send", "loops")


def bench_mux_share(benchmark):
    def run():
        rows = []
        for name in NAMES:
            bench_def = get_benchmark(name)
            cdfg = bench_def.cdfg()
            stim = bench_def.stimulus(15, seed=13)
            options = ScheduleOptions(clock_ns=bench_def.clock_ns)
            result = synthesize(cdfg, stim, mode="area", laxity=3.0,
                                options=options, search=SEARCH)
            parallel = simulate_architecture(
                result.initial.arch, stim,
                expected_outputs=result.store.outputs)
            shared = simulate_architecture(
                result.design.arch, stim,
                expected_outputs=result.store.outputs)
            assert parallel.output_mismatches == 0
            assert shared.output_mismatches == 0

            def mux_share(measured):
                interconnect = measured.breakdown["muxes"]
                return interconnect / measured.breakdown["total"]

            rows.append({
                "benchmark": name,
                "mux share (parallel)": f"{mux_share(parallel):.1%}",
                "mux share (area-shared)": f"{mux_share(shared):.1%}",
                "fus parallel->shared": (f"{len(result.initial.binding.fus)}"
                                         f"->{len(result.design.binding.fus)}"),
            })
        return rows

    rows = run_once(benchmark, run)
    text = format_table(rows, title=(
        "Multiplexer share of measured power ([13]: >40% in CFI circuits)"))
    publish("mux_share", text)
