"""Figure 13: the dealer subplot (normalized power and area vs laxity)."""

from _fig13_common import run_fig13


def bench_fig13_dealer(benchmark):
    run_fig13(benchmark, "dealer")
