"""Figure 13: the paulin subplot (normalized power and area vs laxity)."""

from _fig13_common import run_fig13


def bench_fig13_paulin(benchmark):
    run_fig13(benchmark, "paulin")
