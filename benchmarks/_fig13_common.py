"""Shared driver for the six Figure 13 benches."""

from __future__ import annotations

from conftest import publish, run_once
from repro.core.search import SearchConfig
from repro.experiments.laxity import run_laxity_sweep
from repro.experiments.report import ascii_series, format_sweep

#: One sweep configuration for all six subplots: the coarse laxity grid
#: keeps the full Figure 13 regeneration within a few minutes.
LAXITIES = (1.0, 1.5, 2.0, 2.5, 3.0)
N_PASSES = 20
SEARCH = SearchConfig(max_depth=5, max_candidates=12, max_iterations=6, seed=0)


def run_fig13(benchmark, name: str) -> None:
    sweep = run_once(benchmark, lambda: run_laxity_sweep(
        name, laxities=LAXITIES, n_passes=N_PASSES, search=SEARCH))
    xs = [p.laxity for p in sweep.points]
    plot = ascii_series(xs, {
        "A-Power": [p.a_power for p in sweep.points],
        "I-Power": [p.i_power for p in sweep.points],
        "I-Area": [p.i_area for p in sweep.points],
    })
    text = format_sweep(sweep) + "\n" + plot
    publish(f"fig13_{name}", text)
    benchmark.extra_info["max_reduction_vs_base"] = round(
        sweep.max_power_reduction_vs_base(), 2)
    benchmark.extra_info["max_reduction_vs_a"] = round(
        sweep.max_power_reduction_vs_a(), 2)
    benchmark.extra_info["max_area_overhead"] = round(sweep.max_area_overhead(), 3)

    assert sweep.total_mismatches() == 0, "measured design diverged from behavior"
    for point in sweep.points:
        assert point.i_area <= 1.3 + 1e-6
        assert point.i_power <= point.a_power + 0.05
