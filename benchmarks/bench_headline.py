"""Section 4 headline numbers across the whole suite.

The paper reports: up to 6.7x power reduction over the 5 V area-optimized
base, up to 2.6x over the Vdd-scaled area-optimized designs, and <= 30 %
area overhead.  This bench aggregates the maxima over all six Figure 13
sweeps (coarser grid than the per-benchmark benches, so it stands alone).

Each sweep runs through one :class:`~repro.core.engine.SynthesisEngine`,
so the bench also tracks the performance trajectory of the synthesis hot
path itself: wall time, candidate evaluations, the pipeline-cache hit
rates, and the per-stage timing/incremental-hit breakdown from
:data:`repro.core.profile.PROFILER` (how often the delta-based
incremental evaluation layer short-circuited a full recomputation).
Headline metrics are emitted as a table, as one machine-readable JSON
line (persisted to ``results/headline.json`` with the per-stage profile
mirrored to ``results/profile.json``), and as an appended run record in
``BENCH_headline.json`` — the checked-in perf trajectory the CI
perf-smoke job gates regressions against (see ``check_perf.py``).

The run also differentially cosimulates every benchmark's design across
the four execution models (interpreter / replay / gatesim / emitted-
Verilog netsim) and persists the verdicts to ``results/conformance.json``
— a headline number is only as good as the agreement of the models that
produced it.

Set ``HEADLINE_SMOKE=1`` to restrict the run to the two smallest
benchmarks — the CI smoke/perf-gate mode.
"""

import datetime
import json
import os
import pathlib
import time

from conftest import RESULTS_DIR, publish, run_once
from repro.core.profile import PROFILER
from repro.core.search import SearchConfig
from repro.experiments.laxity import run_laxity_sweep
from repro.experiments.report import format_table
from repro.store.atomic import atomic_write_text, write_json
from repro.verify.conformance import verify_benchmark

SEARCH = SearchConfig(max_depth=4, max_candidates=10, max_iterations=5, seed=0)
NAMES = ("loops", "gcd", "dealer", "x25_send", "cordic", "paulin")
CONFORMANCE_PASSES = 25
if os.environ.get("HEADLINE_SMOKE"):
    NAMES = ("loops", "gcd")
    CONFORMANCE_PASSES = 10

BENCH_LOG = pathlib.Path(__file__).resolve().parent.parent / "BENCH_headline.json"

#: Every pipeline stage with an incremental fast path.  Emitted explicitly
#: (zeros included) in ``incremental_hits`` so trend tooling sees a stage
#: losing its incremental coverage as a 0, not as a missing key.  The
#: ``store`` stage counts cross-run disk hits from the persistent
#: artifact store (nonzero only when ``$REPRO_STORE_DIR`` points at a
#: warm store — see ``docs/service.md``).
PIPELINE_STAGES = ("arch_build", "power_estimate", "replay", "schedule",
                   "store", "trace_merge")

#: The checked-in trajectory keeps only this many most-recent records.
MAX_RECORDS = 50


def append_run_record(record: dict) -> None:
    """Append one run record to the checked-in perf trajectory.

    The records list is capped at the most recent :data:`MAX_RECORDS`
    entries so the checked-in file stays reviewable.
    """
    log = {"records": []}
    if BENCH_LOG.exists():
        log = json.loads(BENCH_LOG.read_text(encoding="utf-8"))
    log["records"] = (log.get("records", []) + [record])[-MAX_RECORDS:]
    write_json(BENCH_LOG, log)


def bench_headline(benchmark):
    def run():
        rows = []
        totals = {"hits": 0, "misses": 0, "sched_hits": 0, "sched_misses": 0,
                  "replay_hits": 0, "replay_misses": 0, "evaluations": 0}
        profile_window = PROFILER.snapshot()
        t0 = time.perf_counter()
        for name in NAMES:
            sweep = run_laxity_sweep(name, laxities=(1.0, 2.0, 3.0),
                                     n_passes=15, search=SEARCH)
            assert sweep.total_mismatches() == 0
            stats = sweep.cache_stats
            totals["hits"] += stats["total"]["hits"]
            totals["misses"] += stats["total"]["misses"]
            totals["sched_hits"] += stats["schedule"]["hits"]
            totals["sched_misses"] += stats["schedule"]["misses"]
            totals["replay_hits"] += stats["replay"]["hits"]
            totals["replay_misses"] += stats["replay"]["misses"]
            totals["evaluations"] += sweep.evaluations
            rows.append({
                "benchmark": name,
                "vs 5V base": f"{sweep.max_power_reduction_vs_base():.2f}x",
                "vs A-Power": f"{sweep.max_power_reduction_vs_a():.2f}x",
                "area overhead": f"{sweep.max_area_overhead():.1%}",
                "cache hit rate": f"{stats['total']['hit_rate']:.1%}",
            })
        totals["wall_time_s"] = round(time.perf_counter() - t0, 3)
        totals["profile"] = PROFILER.window(profile_window)

        # Differential conformance over the same registry: the oracle
        # chain must agree before any power number above is credible.
        conformance = []
        for name in NAMES:
            report = verify_benchmark(name, n_passes=CONFORMANCE_PASSES,
                                      seed=0, use_iverilog="auto",
                                      minimize=False)
            conformance.append(report.summary())
        totals["conformance"] = conformance
        return rows, totals

    rows, totals = run_once(benchmark, run)
    conformance = totals["conformance"]
    conformance_ok = all(c["ok"] for c in conformance)
    calls = totals["hits"] + totals["misses"]
    sched_replay_calls = (totals["sched_hits"] + totals["sched_misses"]
                          + totals["replay_hits"] + totals["replay_misses"])
    sched_replay_computes = totals["sched_misses"] + totals["replay_misses"]
    profile = totals["profile"]
    incremental_hits = {stage: profile.get(stage, {}).get("incremental", 0)
                        for stage in PIPELINE_STAGES}
    metrics = {
        "bench": "headline",
        "benchmarks": list(NAMES),
        "smoke": bool(os.environ.get("HEADLINE_SMOKE")),
        "recorded_at": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"),
        "wall_time_s": totals["wall_time_s"],
        "evaluations": totals["evaluations"],
        "cache_hit_rate": round(totals["hits"] / calls, 4) if calls else 0.0,
        "schedule_replay_calls": sched_replay_calls,
        "schedule_replay_computes": sched_replay_computes,
        "compute_reduction": round(sched_replay_calls / sched_replay_computes, 2)
        if sched_replay_computes else 1.0,
        "incremental_hits": incremental_hits,
        "profile": profile,
        "conformance_ok": conformance_ok,
        "conformance_passes": CONFORMANCE_PASSES,
    }
    benchmark.extra_info.update(metrics)

    text = format_table(rows, title=(
        "Section 4 headlines (paper: up to 6.7x vs base, up to 2.6x vs "
        "A-Power, <= 30% area overhead)"))
    text += (
        f"\n\npipeline: {totals['wall_time_s']:.2f}s wall, "
        f"{totals['evaluations']} evaluations, "
        f"{metrics['cache_hit_rate']:.1%} cache hit rate, "
        f"{metrics['compute_reduction']:.2f}x fewer schedule/replay "
        f"computations ({sched_replay_computes}/{sched_replay_calls})")
    stage_bits = []
    for stage in sorted(profile):
        stats = profile[stage]
        stage_bits.append(
            f"{stage} {stats['seconds']:.2f}s"
            f" ({stats['incremental']}/{stats['calls']} incremental)")
    if stage_bits:
        text += "\nstages: " + ", ".join(stage_bits)
    text += (
        f"\nconformance: {sum(c['ok'] for c in conformance)}/{len(conformance)} "
        f"benchmarks agree across interpreter/replay/gatesim/netsim "
        f"({CONFORMANCE_PASSES} passes each)")
    publish("headline", text)

    # One machine-readable line per run, for the perf trajectory.
    json_line = json.dumps(metrics, sort_keys=True)
    print(json_line)
    RESULTS_DIR.mkdir(exist_ok=True)
    atomic_write_text(RESULTS_DIR / "headline.json", json_line + "\n")
    write_json(RESULTS_DIR / "profile.json",
               {"recorded_at": metrics["recorded_at"],
                "wall_time_s": metrics["wall_time_s"],
                "benchmarks": list(NAMES),
                "stages": profile,
                "incremental_hits": incremental_hits})
    write_json(RESULTS_DIR / "conformance.json",
               {"ok": conformance_ok, "passes": CONFORMANCE_PASSES,
                "benchmarks": conformance}, indent=2)
    append_run_record(metrics)
    assert conformance_ok, "conformance divergence — see results/conformance.json"
