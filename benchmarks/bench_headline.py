"""Section 4 headline numbers across the whole suite.

The paper reports: up to 6.7x power reduction over the 5 V area-optimized
base, up to 2.6x over the Vdd-scaled area-optimized designs, and <= 30 %
area overhead.  This bench aggregates the maxima over all six Figure 13
sweeps (coarser grid than the per-benchmark benches, so it stands alone).
"""

from conftest import publish, run_once
from repro.core.search import SearchConfig
from repro.experiments.laxity import run_laxity_sweep
from repro.experiments.report import format_table

SEARCH = SearchConfig(max_depth=4, max_candidates=10, max_iterations=5, seed=0)
NAMES = ("loops", "gcd", "dealer", "x25_send", "cordic", "paulin")


def bench_headline(benchmark):
    def run():
        rows = []
        for name in NAMES:
            sweep = run_laxity_sweep(name, laxities=(1.0, 2.0, 3.0),
                                     n_passes=15, search=SEARCH)
            assert sweep.total_mismatches() == 0
            rows.append({
                "benchmark": name,
                "vs 5V base": f"{sweep.max_power_reduction_vs_base():.2f}x",
                "vs A-Power": f"{sweep.max_power_reduction_vs_a():.2f}x",
                "area overhead": f"{sweep.max_area_overhead():.1%}",
            })
        return rows

    rows = run_once(benchmark, run)
    text = format_table(rows, title=(
        "Section 4 headlines (paper: up to 6.7x vs base, up to 2.6x vs "
        "A-Power, <= 30% area overhead)"))
    publish("headline", text)
