"""Section 2.2: Wavesched's ENC against the CFG-era baselines.

The paper cites up to 5x ENC reduction over the schedulers of [9]/[17];
our reconstruction shows Wavesched winning on every benchmark, with the
largest factors where concurrent loops and branch-parallel packing bite.
"""

from conftest import publish, run_once
from repro.experiments.report import format_table
from repro.experiments.wavesched_enc import enc_comparison


def bench_wavesched_enc(benchmark):
    rows = run_once(benchmark, lambda: enc_comparison(n_passes=25))
    text = format_table([r.row() for r in rows],
                        title="ENC: Wavesched vs loop-directed [9] vs path-based [17]")
    publish("wavesched_enc", text)
    for row in rows:
        assert row.wavesched_enc <= row.loop_directed_enc + 1e-9
        assert row.wavesched_enc <= row.path_based_enc + 1e-9
