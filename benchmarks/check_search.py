"""CI search-quality gate: fail on a hypervolume regression.

Compares the freshly measured Pareto bench (``results/pareto.json``,
written by ``bench_pareto.py``) against the checked-in search-quality
trajectory (``BENCH_pareto.json``): for every benchmark in the current
run, the baseline is the **median of the last 3** earlier records
matching the run's mode (same ``smoke`` flag and benchmark set), and the
gate fails when the current *fixed-reference* hypervolume falls below
``--min-ratio`` times that median (default 0.98, i.e. a >2 % drop).

Hypervolume under a committed reference point is deterministic in the
code — identical runs produce identical values — so the gate really
measures algorithm changes: a mutation to the search, the archive, the
estimators or the schedulers that shrinks the frontier shows up here
even when every unit test still passes.  The 2 % headroom lets benign
refactors (tie-break order, float formatting) through; the
hypervolume-over-time traces recorded alongside make bisecting a
genuine drop straightforward (which grid cell lost ground).

Usage::

    python benchmarks/check_search.py [--baseline BENCH_pareto.json]
                                      [--current results/pareto.json]
                                      [--min-ratio 0.98]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: How many recent matching records the baseline median is taken over.
BASELINE_WINDOW = 3


def find_baselines(records: list[dict], current: dict,
                   window: int = BASELINE_WINDOW) -> list[dict]:
    """The most recent earlier records matching the current run's mode.

    Mirrors ``check_perf.find_baselines``: a record matches on the same
    benchmark set under the same ``smoke`` flag, records newer than the
    current run are excluded (same-timestamp reruns count), and the
    current run's own record never gates against itself.
    """
    cur_ts = current.get("recorded_at")
    matches = [
        r for r in records
        if r != current
        and bool(r.get("smoke")) == bool(current.get("smoke"))
        and r.get("benchmarks") == current.get("benchmarks")
        and (cur_ts is None or r.get("recorded_at", "") <= cur_ts)
        and "results" in r
    ]
    return matches[-window:]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=str(ROOT / "BENCH_pareto.json"))
    parser.add_argument("--current",
                        default=str(ROOT / "results" / "pareto.json"))
    parser.add_argument("--min-ratio", type=float, default=0.98)
    args = parser.parse_args(argv)

    results = json.loads(pathlib.Path(args.current).read_text(encoding="utf-8"))
    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.exists():
        print(f"search gate: no baseline file {baseline_path}; "
              "passing (seed run)")
        return 0
    records = json.loads(
        baseline_path.read_text(encoding="utf-8")).get("records", [])

    # The current run's mode: bench_pareto.py appended its own record
    # last, so read the mode (and exclude the self-record) through it.
    current = records[-1] if records else {}
    baselines = find_baselines(records, current)
    if not baselines:
        print(f"search gate: {baseline_path.name} has no records matching "
              f"smoke={bool(current.get('smoke'))} benchmarks="
              f"{current.get('benchmarks')} — run bench_pareto.py once in "
              "this mode to seed the trajectory before gating")
        return 1

    failed = False
    for name, outcome in sorted(results.items()):
        hv = outcome["hypervolume"]
        history = [r["results"][name]["hypervolume"] for r in baselines
                   if name in r.get("results", {})]
        if not history:
            print(f"search gate: {name}: no baseline history; skipping")
            continue
        base = statistics.median(history)
        ratio = hv / base if base else float("inf")
        verdict = "OK" if ratio >= args.min_ratio else "REGRESSION"
        window = ", ".join(f"{value:.4g}" for value in history)
        print(f"search gate: {name}: hypervolume {hv:.4g} vs median "
              f"{base:.4g} of last {len(history)} matching records "
              f"[{window}] -> {ratio:.3f}x [{verdict}, floor "
              f"{args.min_ratio:.2f}x]")
        if verdict == "REGRESSION":
            failed = True

    if failed:
        print("search gate: frontier hypervolume regressed — compare "
              "hv_trace in BENCH_pareto.json records to find the grid "
              "cells that lost ground")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
