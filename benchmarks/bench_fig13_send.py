"""Figure 13(d): the Send (X.25) subplot (normalized power/area vs laxity)."""

from _fig13_common import run_fig13


def bench_fig13_send(benchmark):
    run_fig13(benchmark, "x25_send")
