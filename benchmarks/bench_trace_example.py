"""Section 2.3 worked example: the merged trace of the shared adder.

With the three additions of Figure 3 on one adder and the condition
evaluating [T, T, F, T], the unit's trace must interleave
(+1,+3), (+1,+3), (+1,+2), (+1,+3) (paper labels; our builder numbers the
then-arm add +2 and the else-arm add +3).
"""

from conftest import publish, run_once
from repro.experiments.trace_example import trace_worked_example


def bench_trace_example(benchmark):
    result = run_once(benchmark, trace_worked_example)
    text = ("Merged trace of the shared adder (condition e8 = [T, T, F, T]):\n"
            + result.table())
    publish("trace_example", text)
    assert result.op_sequence == ["+1", "+2", "+1", "+2", "+1", "+3", "+1", "+2"]
