"""Pareto-frontier quality on gcd and paulin.

Runs the multi-objective explorer over its default (objective x laxity)
grid for the control-dominated GCD and the data-dominated Paulin solver
and reports the two standard frontier-quality indicators:

* **frontier size** — how many mutually non-dominated (area, power,
  latency) design variants the archive-guided searches surfaced;
* **hypervolume** — the objective-space volume the front dominates up to
  a *fixed* per-benchmark reference point (committed below, comfortably
  beyond each benchmark's reachable region), the scalar that grows only
  when the front advances or spreads — comparable across runs precisely
  because the reference never moves.

The frontier is deterministic for any shard count (the determinism test
enforces 1 vs N bit-identity), so these metrics are stable across
machines; wall time is the only machine-dependent column.  Results land
in ``results/pareto.txt`` and ``results/pareto.json``.
"""

import json

from conftest import RESULTS_DIR, publish, run_once
from repro.core.search import SearchConfig
from repro.experiments.report import format_table
from repro.explore import explore

SEARCH = SearchConfig(max_depth=4, max_candidates=10, max_iterations=5, seed=0)
NAMES = ("gcd", "paulin")
SHARDS = 2

#: Fixed hypervolume reference points (area, power mW, latency cycles),
#: chosen well outside each benchmark's reachable objective region so
#: every frontier point contributes volume and runs stay comparable.
REFERENCES = {
    "gcd": (1500.0, 4.0, 150.0),
    "paulin": (40000.0, 25.0, 250.0),
}


def bench_pareto(benchmark):
    def run():
        rows = []
        results = {}
        for name in NAMES:
            result = explore(name, shards=SHARDS, n_passes=15,
                             search=SEARCH)
            summary = result.summary()
            summary["hypervolume"] = result.front.hypervolume(
                REFERENCES[name])
            results[name] = {**summary, "wall_time_s": result.wall_time_s,
                             "reference": REFERENCES[name],
                             "frontier": result.rows()}
            rows.append({
                "benchmark": name,
                "jobs": summary["jobs"],
                "evaluations": summary["evaluations"],
                "offers": summary["offered"],
                "frontier": summary["frontier_size"],
                "hypervolume": f"{summary['hypervolume']:.4g}",
                "wall_s": f"{result.wall_time_s:.2f}",
            })
        return rows, results

    rows, results = run_once(benchmark, run)
    benchmark.extra_info.update({
        name: {k: results[name][k] for k in
               ("frontier_size", "hypervolume", "evaluations")}
        for name in NAMES
    })
    publish("pareto", format_table(rows, title=(
        f"Pareto frontier quality over the default explore grid "
        f"({SHARDS} shards; size + hypervolume are shard-count invariant)")))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "pareto.json").write_text(
        json.dumps(results, indent=1, sort_keys=True) + "\n",
        encoding="utf-8")
    for name in NAMES:
        assert results[name]["frontier_size"] >= 1
        assert results[name]["hypervolume"] > 0.0
