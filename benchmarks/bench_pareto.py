"""Pareto-frontier quality on gcd and paulin.

Runs the multi-objective explorer over its default (objective x laxity)
grid — through the work-stealing pool, so the steal path gets nightly
coverage — for the control-dominated GCD and the data-dominated Paulin
solver and reports the two standard frontier-quality indicators:

* **frontier size** — how many mutually non-dominated (area, power,
  latency) design variants the archive-guided searches surfaced;
* **hypervolume** — the objective-space volume the front dominates up to
  a *fixed* per-benchmark reference point (committed below, comfortably
  beyond each benchmark's reachable region), the scalar that grows only
  when the front advances or spreads — comparable across runs precisely
  because the reference never moves.

The **hypervolume-over-time trace** (frontier hypervolume after each
grid cell's merge, fixed reference) is appended with the final numbers
to the checked-in trajectory ``BENCH_pareto.json``; the CI gate
(``check_search.py``) fails when the final hypervolume drops below the
median of recent matching records — a search-quality regression, caught
the same way ``check_perf.py`` catches wall-time regressions.

The frontier is deterministic for any shard or steal-worker count (the
determinism tests enforce bit-identity), so these metrics are stable
across machines; wall time is the only machine-dependent column.
Results land in ``results/pareto.txt`` and ``results/pareto.json``.

Set ``PARETO_SMOKE=1`` for the PR-gate mode: gcd only, a lighter search
— the trajectory keeps smoke and full records apart by their mode.
"""

import datetime
import json
import os
import pathlib

from conftest import RESULTS_DIR, publish, run_once
from repro.core.search import SearchConfig
from repro.experiments.report import format_table
from repro.explore import explore
from repro.store.atomic import write_json

SEARCH = SearchConfig(max_depth=4, max_candidates=10, max_iterations=5, seed=0)
NAMES = ("gcd", "paulin")
N_PASSES = 15
STEAL_WORKERS = 2
if os.environ.get("PARETO_SMOKE"):
    NAMES = ("gcd",)
    N_PASSES = 8
    SEARCH = SearchConfig(max_depth=3, max_candidates=8, max_iterations=3,
                          seed=0)

BENCH_LOG = pathlib.Path(__file__).resolve().parent.parent / "BENCH_pareto.json"

#: The checked-in trajectory keeps only this many most-recent records.
MAX_RECORDS = 50

#: Fixed hypervolume reference points (area, power mW, latency cycles),
#: chosen well outside each benchmark's reachable objective region so
#: every frontier point contributes volume and runs stay comparable.
REFERENCES = {
    "gcd": (1500.0, 4.0, 150.0),
    "paulin": (40000.0, 25.0, 250.0),
}


def append_run_record(record: dict) -> None:
    """Append one run record to the checked-in search-quality trajectory."""
    log = {"records": []}
    if BENCH_LOG.exists():
        log = json.loads(BENCH_LOG.read_text(encoding="utf-8"))
    log["records"] = (log.get("records", []) + [record])[-MAX_RECORDS:]
    write_json(BENCH_LOG, log)


def bench_pareto(benchmark):
    def run():
        rows = []
        results = {}
        for name in NAMES:
            result = explore(name, steal=STEAL_WORKERS, n_passes=N_PASSES,
                             search=SEARCH, hv_reference=REFERENCES[name])
            summary = result.summary()
            summary["hypervolume"] = result.front.hypervolume(
                REFERENCES[name])
            results[name] = {**summary, "wall_time_s": result.wall_time_s,
                             "reference": REFERENCES[name],
                             "frontier": result.rows()}
            rows.append({
                "benchmark": name,
                "jobs": summary["jobs"],
                "evaluations": summary["evaluations"],
                "offers": summary["offered"],
                "frontier": summary["frontier_size"],
                "hypervolume": f"{summary['hypervolume']:.4g}",
                "warm": summary["warm_hits"],
                "wall_s": f"{result.wall_time_s:.2f}",
            })
        return rows, results

    rows, results = run_once(benchmark, run)
    benchmark.extra_info.update({
        name: {k: results[name][k] for k in
               ("frontier_size", "hypervolume", "evaluations")}
        for name in NAMES
    })
    publish("pareto", format_table(rows, title=(
        f"Pareto frontier quality over the default explore grid "
        f"({STEAL_WORKERS} steal workers; size + hypervolume are "
        f"topology invariant)")))
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / "pareto.json").write_text(
        json.dumps(results, indent=1, sort_keys=True) + "\n",
        encoding="utf-8")
    append_run_record({
        "bench": "pareto",
        "benchmarks": list(NAMES),
        "smoke": bool(os.environ.get("PARETO_SMOKE")),
        "recorded_at": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "results": {name: {
            "hypervolume": results[name]["hypervolume"],
            "hv_trace": results[name]["hv_trace"],
            "frontier_size": results[name]["frontier_size"],
            "evaluations": results[name]["evaluations"],
        } for name in NAMES},
    })
    for name in NAMES:
        assert results[name]["frontier_size"] >= 1
        assert results[name]["hypervolume"] > 0.0
