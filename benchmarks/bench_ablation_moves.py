"""Ablation: contribution of each move class to the power result.

DESIGN.md calls out the interleaving of scheduling, module selection,
resource sharing and mux restructuring as the paper's core claim; this
bench disables one move class at a time and reports the power-mode result
on GCD and Dealer at laxity 2.0.
"""

from conftest import publish, run_once
import repro.core.moves as moves_mod
from repro.benchmarks import get_benchmark
from repro.core.impact import synthesize
from repro.core.search import SearchConfig
from repro.experiments.report import format_table
from repro.sched.engine import ScheduleOptions

SEARCH = SearchConfig(max_depth=5, max_candidates=12, max_iterations=6, seed=0)
ABLATIONS = {
    "full": (),
    "no sharing": (moves_mod.ShareFU, moves_mod.ShareRegisters),
    "no module selection": (moves_mod.SubstituteModule,),
    "no mux restructuring": (moves_mod.RestructureMux,),
    "no splitting": (moves_mod.SplitFU, moves_mod.SplitRegister),
}


def _filtered_generate(disabled):
    original = moves_mod.generate_moves

    def generate(design):
        return [m for m in original(design) if not isinstance(m, disabled)]

    return original, generate


def bench_ablation_moves(benchmark):
    def run():
        rows = []
        for name in ("gcd", "dealer"):
            bench_def = get_benchmark(name)
            cdfg = bench_def.cdfg()
            stim = bench_def.stimulus(15, seed=23)
            options = ScheduleOptions(clock_ns=bench_def.clock_ns)
            row = {"benchmark": name}
            for label, disabled in ABLATIONS.items():
                original, patched = _filtered_generate(tuple(disabled))
                # The search imports generate_moves by name; patch the
                # module attribute both places it is visible.
                import repro.core.search as search_mod

                moves_mod.generate_moves = patched
                search_mod.generate_moves = patched
                try:
                    result = synthesize(cdfg, stim, mode="power", laxity=2.0,
                                        options=options, search=SEARCH)
                    from repro.core.design import energy_cost

                    row[label] = round(
                        energy_cost(result.design, result.enc_budget), 2)
                finally:
                    moves_mod.generate_moves = original
                    search_mod.generate_moves = original
            rows.append(row)
        return rows

    rows = run_once(benchmark, run)
    text = format_table(rows, title=(
        "Ablation: equal-throughput energy (pJ/pass) with move classes disabled"))
    publish("ablation_moves", text)
    for row in rows:
        # The full move set is never worse than any ablation.
        others = [v for k, v in row.items() if k not in ("benchmark", "full")]
        assert row["full"] <= min(others) * 1.15 + 1e-9
