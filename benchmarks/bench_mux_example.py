"""Section 3.2.1 worked example: Figures 8-10.

The analytic activities must reproduce the paper's numbers exactly
(balanced 1.09, restructured 0.72, -34 %); the behavioral part runs the
Figure 8 conditional cascade through IMPACT with a stimulus matching the
paper's branch probabilities and reports the mux-tree effect on real
merged-trace statistics.
"""

from conftest import publish, run_once
from repro.core.search import SearchConfig
from repro.core.impact import synthesize
from repro.experiments.mux_example import (
    MUX_EXAMPLE_SOURCE,
    mux_example_stimulus,
    mux_worked_example,
)
from repro.experiments.report import format_table
from repro.lang import parse
from repro.sched.engine import ScheduleOptions


def bench_mux_example(benchmark):
    def run():
        analytic = mux_worked_example()
        cdfg = parse(MUX_EXAMPLE_SOURCE)
        stimulus = mux_example_stimulus(60, seed=2)
        result = synthesize(
            cdfg, stimulus, mode="power", laxity=2.0,
            options=ScheduleOptions(clock_ns=15.0),
            search=SearchConfig(max_depth=4, max_candidates=10,
                                max_iterations=5, seed=0))
        return analytic, result

    analytic, result = run_once(benchmark, run)
    rows = [analytic.row()]
    text = format_table(rows, title="Mux tree activity (paper: 1.09 -> 0.72, -34%)")
    text += "\n\nFigure 8 behavior synthesized (power mode, laxity 2.0):\n"
    text += f"  restructured mux trees: {len(result.design.tree_policy)}\n"
    text += f"  design: {result.design.summary()}"
    publish("mux_example", text)

    assert abs(analytic.balanced_activity - 1.0939) < 5e-4
    assert abs(analytic.huffman_activity - 0.7217) < 5e-4
