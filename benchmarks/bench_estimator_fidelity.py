"""Estimator vs bit-level measurement: the model driving the search must
point in the right direction (Section 2.3's purpose).
"""

from conftest import publish, run_once
from repro.benchmarks import BENCHMARKS, get_benchmark
from repro.cdfg.interpreter import simulate
from repro.core.binding import Binding
from repro.gatesim import simulate_architecture
from repro.library import default_library
from repro.power import estimate_power, merge_unit_traces
from repro.rtl import build_architecture
from repro.sched import replay, wavesched
from repro.experiments.report import format_table


def bench_estimator_fidelity(benchmark):
    def run():
        rows = []
        for name in sorted(BENCHMARKS):
            bench_def = get_benchmark(name)
            cdfg = bench_def.cdfg()
            stim = bench_def.stimulus(15, seed=4)
            binding = Binding.initial_parallel(cdfg, default_library())
            store = simulate(cdfg, stim)
            stg = wavesched(cdfg, binding, clock_ns=bench_def.clock_ns)
            rep = replay(stg, cdfg, store)
            arch = build_architecture(cdfg, binding, stg,
                                      clock_ns=bench_def.clock_ns)
            traces = merge_unit_traces(arch, store, rep)
            est = estimate_power(arch, traces, vdd=5.0).total
            meas = simulate_architecture(arch, stim,
                                         expected_outputs=store.outputs,
                                         vdd=5.0)
            assert meas.output_mismatches == 0
            rows.append({
                "benchmark": name,
                "estimate (mW)": round(est, 3),
                "measured (mW)": round(meas.power_mw, 3),
                "ratio": round(est / meas.power_mw, 2),
            })
        return rows

    rows = run_once(benchmark, run)
    text = format_table(rows, title="RT-level estimate vs bit-level measurement (5 V)")
    publish("estimator_fidelity", text)
    for row in rows:
        assert 0.7 <= row["ratio"] <= 1.4
