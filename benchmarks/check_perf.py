"""CI perf gate: fail on a wall-time regression against the baseline.

Compares the freshly measured headline run (``results/headline.json``,
written by ``bench_headline.py``) against the checked-in perf trajectory
(``BENCH_headline.json``): the baseline is the most recent *earlier*
record covering the same benchmark set, and the gate fails when the
current wall time exceeds ``--max-ratio`` (default 1.25, i.e. a >25 %
regression).  Runs with no comparable baseline pass with a notice, so
the first record on a new benchmark set seeds the trajectory instead of
failing it.

Wall time is machine-dependent; the default ratio leaves headroom for
runner jitter while still catching the order-of-magnitude mistakes
(accidentally disabled caching, a quadratic loop) the gate exists for.

Usage::

    python benchmarks/check_perf.py [--baseline BENCH_headline.json]
                                    [--current results/headline.json]
                                    [--max-ratio 1.25]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent


def find_baseline(records: list[dict], current: dict) -> dict | None:
    """Most recent earlier record over the same benchmark set."""
    matches = [
        r for r in records
        if r.get("benchmarks") == current.get("benchmarks")
        and r.get("recorded_at", "") < current.get("recorded_at", "")
    ]
    return matches[-1] if matches else None


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=str(ROOT / "BENCH_headline.json"))
    parser.add_argument("--current", default=str(ROOT / "results" / "headline.json"))
    parser.add_argument("--max-ratio", type=float, default=1.25)
    args = parser.parse_args(argv)

    current = json.loads(pathlib.Path(args.current).read_text(encoding="utf-8"))
    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.exists():
        print(f"perf gate: no baseline file {baseline_path}; passing (seed run)")
        return 0
    records = json.loads(baseline_path.read_text(encoding="utf-8")).get("records", [])
    baseline = find_baseline(records, current)
    if baseline is None:
        print(f"perf gate: no earlier record for benchmarks "
              f"{current.get('benchmarks')}; passing (seed run)")
        return 0

    wall = current["wall_time_s"]
    base = baseline["wall_time_s"]
    ratio = wall / base if base else float("inf")
    verdict = "OK" if ratio <= args.max_ratio else "REGRESSION"
    print(f"perf gate: current {wall:.2f}s vs baseline {base:.2f}s "
          f"({baseline['recorded_at']}) -> {ratio:.2f}x [{verdict}, "
          f"limit {args.max_ratio:.2f}x]")
    if verdict == "REGRESSION":
        print("perf gate: headline wall time regressed by more than "
              f"{(args.max_ratio - 1.0):.0%} — see results/profile.json for "
              "the per-stage breakdown")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
