"""CI perf gate: fail on a wall-time regression against the baseline.

Compares the freshly measured headline run (``results/headline.json``,
written by ``bench_headline.py``) against the checked-in perf trajectory
(``BENCH_headline.json``): the baseline is the **median of the last 3**
earlier records matching the current run's mode (same ``smoke`` flag and
benchmark set), and the gate fails when the current wall time exceeds
``--max-ratio`` times that median (default 1.25, i.e. a >25 %
regression).  A single-record comparison flakes on noisy runners; the
median absorbs one outlier calibration run.  When the baseline file has
no records matching the current mode, the gate fails with a clear
message naming the mode — run the bench once in that mode to seed the
trajectory (the CI job's calibration run does exactly this).

Wall time is machine-dependent; the default ratio leaves headroom for
runner jitter while still catching the order-of-magnitude mistakes
(accidentally disabled caching, a quadratic loop) the gate exists for.

Usage::

    python benchmarks/check_perf.py [--baseline BENCH_headline.json]
                                    [--current results/headline.json]
                                    [--max-ratio 1.25]
"""

from __future__ import annotations

import argparse
import json
import pathlib
import statistics
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent

#: How many recent matching records the baseline median is taken over.
BASELINE_WINDOW = 3


def find_baselines(records: list[dict], current: dict,
                   window: int = BASELINE_WINDOW) -> list[dict]:
    """The most recent earlier records matching the current run's mode.

    A record matches when it covers the same benchmark set under the same
    ``smoke`` flag — comparing a smoke run against a full run (or vice
    versa) would measure the mode switch, not a regression.

    A current run missing ``recorded_at`` is treated as newer than every
    record (previously it matched nothing and the gate failed spuriously),
    and records sharing the current timestamp count too (sub-second CI
    reruns used to silently lose their whole baseline window).  The
    current run's own record — appended to the trajectory by
    ``bench_headline.py`` before the gate runs — is excluded so it never
    gates against itself.
    """
    cur_ts = current.get("recorded_at")
    matches = [
        r for r in records
        if r != current
        and bool(r.get("smoke")) == bool(current.get("smoke"))
        and r.get("benchmarks") == current.get("benchmarks")
        and (cur_ts is None or r.get("recorded_at", "") <= cur_ts)
        and "wall_time_s" in r
    ]
    return matches[-window:]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=str(ROOT / "BENCH_headline.json"))
    parser.add_argument("--current", default=str(ROOT / "results" / "headline.json"))
    parser.add_argument("--max-ratio", type=float, default=1.25)
    args = parser.parse_args(argv)

    current = json.loads(pathlib.Path(args.current).read_text(encoding="utf-8"))
    baseline_path = pathlib.Path(args.baseline)
    if not baseline_path.exists():
        print(f"perf gate: no baseline file {baseline_path}; passing (seed run)")
        return 0
    records = json.loads(baseline_path.read_text(encoding="utf-8")).get("records", [])
    baselines = find_baselines(records, current)
    if not baselines:
        print(f"perf gate: {baseline_path.name} has no records matching "
              f"smoke={bool(current.get('smoke'))} benchmarks="
              f"{current.get('benchmarks')} — run bench_headline.py once in "
              "this mode to seed the trajectory before gating")
        return 1

    wall = current["wall_time_s"]
    base = statistics.median(r["wall_time_s"] for r in baselines)
    ratio = wall / base if base else float("inf")
    verdict = "OK" if ratio <= args.max_ratio else "REGRESSION"
    window = ", ".join(f"{r['wall_time_s']:.2f}s" for r in baselines)
    print(f"perf gate: current {wall:.2f}s vs median {base:.2f}s of last "
          f"{len(baselines)} matching records [{window}] -> {ratio:.2f}x "
          f"[{verdict}, limit {args.max_ratio:.2f}x]")
    if verdict == "REGRESSION":
        print("perf gate: headline wall time regressed by more than "
              f"{(args.max_ratio - 1.0):.0%} — see results/profile.json for "
              "the per-stage breakdown")
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
