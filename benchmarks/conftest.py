"""Shared helpers for the reproduction benches.

Every bench regenerates one figure/table of the paper, prints the
reproduction table, stores headline numbers in ``benchmark.extra_info``,
and writes the full text to ``results/<name>.txt`` so the artifacts survive
pytest's output capture.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def publish(name: str, text: str) -> None:
    """Print a reproduction table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
    print(f"\n{text}\n")


def run_once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)
