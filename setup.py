"""Setuptools entry point.

Packaging metadata lives here (rather than PEP 621 pyproject metadata)
because the target environment ships without the ``wheel`` package, which
PEP 517 editable installs require; the classic ``setup.py develop`` path
works everywhere.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.2.0",
    description=(
        "IMPACT: low-power high-level synthesis for control-flow intensive "
        "circuits (DATE 1998 reproduction)"
    ),
    python_requires=">=3.11",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=[
        "numpy>=1.24",
        "networkx>=3.0",
        "scipy>=1.10",
    ],
    extras_require={"test": ["pytest", "pytest-benchmark", "hypothesis"]},
    entry_points={"console_scripts": ["repro=repro.cli:main"]},
)
