"""ENC comparison: Wavesched vs. CFG-era baselines (Section 2.2 claim).

The paper cites up to 5x ENC improvement of Wavesched [18] over the
schedulers of [9] and [17].  This harness schedules every benchmark with
all three engines under the same fully-parallel binding and reports the
empirical ENC (trace replay over the benchmark stimulus).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.benchmarks import BENCHMARKS, get_benchmark
from repro.cdfg.interpreter import simulate
from repro.core.binding import Binding
from repro.library.modules_data import default_library
from repro.sched import loop_directed_schedule, path_based_schedule, replay, wavesched


@dataclass
class EncRow:
    benchmark: str
    wavesched_enc: float
    loop_directed_enc: float
    path_based_enc: float
    wavesched_states: int
    path_based_states: int

    @property
    def speedup_vs_path_based(self) -> float:
        return self.path_based_enc / self.wavesched_enc

    @property
    def speedup_vs_loop_directed(self) -> float:
        return self.loop_directed_enc / self.wavesched_enc

    def row(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "wavesched": round(self.wavesched_enc, 2),
            "loop-directed [9]": round(self.loop_directed_enc, 2),
            "path-based [17]": round(self.path_based_enc, 2),
            "speedup vs [17]": round(self.speedup_vs_path_based, 2),
            "speedup vs [9]": round(self.speedup_vs_loop_directed, 2),
        }


def enc_comparison(benchmarks: tuple[str, ...] | None = None, n_passes: int = 30,
                   seed: int = 7) -> list[EncRow]:
    """ENC of the three schedulers on each benchmark."""
    names = benchmarks or tuple(BENCHMARKS)
    library = default_library()
    rows: list[EncRow] = []
    for name in names:
        bench = get_benchmark(name)
        cdfg = bench.cdfg()
        store = simulate(cdfg, bench.stimulus(n_passes, seed=seed))
        binding = Binding.initial_parallel(cdfg, library)
        stg_wave = wavesched(cdfg, binding)
        stg_ld = loop_directed_schedule(cdfg, binding)
        stg_pb = path_based_schedule(cdfg, binding)
        rows.append(EncRow(
            benchmark=name,
            wavesched_enc=replay(stg_wave, cdfg, store).enc,
            loop_directed_enc=replay(stg_ld, cdfg, store).enc,
            path_based_enc=replay(stg_pb, cdfg, store).enc,
            wavesched_states=stg_wave.n_states,
            path_based_states=stg_pb.n_states,
        ))
    return rows
