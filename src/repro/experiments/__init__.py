"""Experiment harnesses regenerating every figure/table of the paper.

* :mod:`repro.experiments.laxity` — Figure 13(a)-(f): normalized A-Power /
  I-Power / I-Area vs. laxity factor, plus the Section 4 headline ratios;
* :mod:`repro.experiments.wavesched_enc` — the Section 2.2 ENC comparison
  (Wavesched vs. the [9]/[17]-style baselines);
* :mod:`repro.experiments.mux_example` — the Section 3.2.1 worked example
  (balanced 1.09 vs. Huffman 0.72 tree activity, Figure 8-10);
* :mod:`repro.experiments.trace_example` — the Section 2.3 trace-merging
  example (the shared adder's trace under e8 = [T, T, F, T]);
* :mod:`repro.experiments.report` — plain-text tables and series.
"""

from repro.experiments.laxity import LaxityPoint, LaxitySweep, run_laxity_sweep
from repro.experiments.wavesched_enc import enc_comparison
from repro.experiments.mux_example import mux_worked_example
from repro.experiments.trace_example import trace_worked_example

__all__ = [
    "LaxityPoint",
    "LaxitySweep",
    "run_laxity_sweep",
    "enc_comparison",
    "mux_worked_example",
    "trace_worked_example",
]
