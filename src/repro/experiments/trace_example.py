"""The Section 2.3 worked example: trace manipulation for three additions.

Figure 3's CDFG computes ``t = a + b`` (+1), then under condition e8 either
``out = t + 8`` (+3, condition true) or ``out = 1 + t`` (+2, condition
false).  With all three additions shared on one adder and a stimulus whose
condition evaluates [T, T, F, T], the merged adder trace must interleave

    (+1, +3), (+1, +3), (+1, +2), (+1, +3)

— the exact table of Section 2.3.  We rebuild it through the real pipeline:
behavioral simulation once, a shared-adder binding, STG replay, trace merge.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ExperimentError
from repro.cdfg.interpreter import simulate
from repro.cdfg.node import OpKind
from repro.core.binding import Binding
from repro.lang import parse
from repro.library.modules_data import default_library
from repro.power.trace_manip import merge_unit_traces
from repro.rtl.builder import build_architecture
from repro.sched import replay, wavesched

TRACE_EXAMPLE_SOURCE = """
process traceex(a: int8, b: int8, c: int8, d: int8) -> (out: int16) {
  var t: int16 = a + b;
  if (c < d) {
    out = t + 8;
  } else {
    out = 1 + t;
  }
}
"""

#: Input passes whose condition (c < d) evaluates [T, T, F, T].
EXAMPLE_PASSES = [
    {"a": 3, "b": 4, "c": 1, "d": 2},
    {"a": 10, "b": -2, "c": 0, "d": 5},
    {"a": 7, "b": 7, "c": 9, "d": 2},
    {"a": -1, "b": 6, "c": 2, "d": 3},
]


@dataclass
class TraceExampleResult:
    """The merged trace of the shared adder (rows of in1, in2 | out)."""

    rows: list[tuple[int, int, int]]
    op_sequence: list[str]

    def table(self) -> str:
        lines = ["In1   In2   | Out"]
        for (in1, in2, out), name in zip(self.rows, self.op_sequence):
            lines.append(f"{in1:5d} {in2:5d} | {out:5d}   ({name})")
        return "\n".join(lines)


def trace_worked_example() -> TraceExampleResult:
    """Run the pipeline and return the shared adder's merged trace."""
    cdfg = parse(TRACE_EXAMPLE_SOURCE)
    library = default_library()
    store = simulate(cdfg, EXAMPLE_PASSES)

    binding = Binding.initial_parallel(cdfg, library)
    adders = [fu_id for fu_id, fu in binding.fus.items()
              if all(cdfg.node(op).kind is OpKind.ADD for op in fu.ops)]
    if len(adders) != 3:
        raise ExperimentError(f"expected 3 adder units, found {len(adders)}")
    keep = adders[0]
    for other in adders[1:]:
        binding.merge_fus(keep, other, binding.library.get("add_cla"))

    stg = wavesched(cdfg, binding)
    rep = replay(stg, cdfg, store)
    arch = build_architecture(cdfg, binding, stg)
    traces = merge_unit_traces(arch, store, rep)
    stream = traces.fu_streams[keep]

    # Recover the per-row op names by matching occurrence timestamps.
    stamps = []
    for op in sorted(binding.fus[keep].ops):
        name = cdfg.node(op).name
        for cycle, start in zip(rep.op_cycle[op], rep.op_start[op]):
            stamps.append((int(cycle), float(start), name))
    stamps.sort()
    op_sequence = [name for _c, _s, name in stamps]

    rows = [(int(stream.ins[0][i]), int(stream.ins[1][i]), int(stream.out[i]))
            for i in range(stream.executions)]
    return TraceExampleResult(rows=rows, op_sequence=op_sequence)
