"""The Section 3.2.1 worked example (Figures 8-10).

Given activities a = (0.6, 0.1, 0.2, 0.1) and propagation probabilities
p = (0.7, 0.2, 0.05, 0.05) for branch signals e1..e4, the balanced tree of
Figure 9 has activity 1.09 while the restructured tree of Figure 10 has
0.72 — a 34 % reduction.  Both numbers are reproduced *exactly* by
Equations (1)-(7) plus the Figure 12 Huffman construction.

The module also runs the Figure 8 behavior through the full IMPACT flow
with a stimulus shaped to those branch probabilities, showing mux
restructuring engage on real merged-trace statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.mux_restructure import huffman_tree
from repro.rtl.mux import MuxSource, MuxTree, tree_from_pairs

#: The paper's (activity, probability) pairs for e1..e4.
PAPER_STATS = {
    "e1": (0.6, 0.7),
    "e2": (0.1, 0.2),
    "e3": (0.2, 0.05),
    "e4": (0.1, 0.05),
}

#: Figure 8 behavior in our language (the if/else-if cascade computing z).
MUX_EXAMPLE_SOURCE = """
process muxex(x: int8, a: int8, b: int8, c: bool, d: bool) -> (z: int16) {
  if (x > 5) {
    z = a + b + 10;
  } else {
    if (x > 2) {
      z = b + 5;
    } else {
      if (x == 1) {
        z = c && d;
      } else {
        z = c || d;
      }
    }
  }
}
"""


@dataclass
class MuxExampleResult:
    balanced_activity: float
    huffman_activity: float
    reduction: float
    huffman_depths: dict[str, int]

    def row(self) -> dict:
        return {
            "balanced (Fig. 9)": round(self.balanced_activity, 4),
            "restructured (Fig. 10)": round(self.huffman_activity, 4),
            "reduction": f"{self.reduction:.0%}",
        }


def mux_worked_example() -> MuxExampleResult:
    """Reproduce the 1.09 / 0.72 tree activities analytically."""
    sources = {k: MuxSource(k, a, p) for k, (a, p) in PAPER_STATS.items()}
    balanced = tree_from_pairs(((sources["e1"], sources["e2"]),
                                (sources["e3"], sources["e4"])))
    restructured = huffman_tree(list(sources.values()))
    return MuxExampleResult(
        balanced_activity=balanced.tree_activity(),
        huffman_activity=restructured.tree_activity(),
        reduction=1.0 - restructured.tree_activity() / balanced.tree_activity(),
        huffman_depths={k: restructured.depth_of(k) for k in sources},
    )


def mux_example_stimulus(n_passes: int, seed: int = 0) -> list[dict[str, int]]:
    """Stimulus matching the paper's branch probabilities (.7/.2/.05/.05).

    ``x > 5`` with probability 0.7, ``x in (3..5]`` 0.2, ``x == 1`` 0.05,
    otherwise 0.05.
    """
    rng = np.random.default_rng(seed)
    passes = []
    for _ in range(n_passes):
        roll = rng.random()
        if roll < 0.70:
            x = int(rng.integers(6, 100))
        elif roll < 0.90:
            x = int(rng.integers(3, 6))
        elif roll < 0.95:
            x = 1
        else:
            x = int(rng.choice([0, 2]))
        passes.append({
            "x": x,
            "a": int(rng.integers(-50, 51)),
            "b": int(rng.integers(-50, 51)),
            "c": int(rng.integers(0, 2)),
            "d": int(rng.integers(0, 2)),
        })
    return passes
