"""Rendering and emission of experiment results.

Plain-text tables and ASCII series for terminals, plus the report
writers the ``python -m repro`` CLI uses: :func:`write_report` emits one
row set as ``<base>.json`` / ``<base>.csv`` / ``<base>.md`` side by side
(see ``docs/cli.md`` for where each subcommand writes under
``results/``).
"""

from __future__ import annotations

import csv
import io
import pathlib

from repro.experiments.laxity import LaxitySweep
from repro.store.atomic import atomic_write_text, write_json


def format_table(rows: list[dict], title: str = "") -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return title
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
              for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def format_sweep(sweep: LaxitySweep) -> str:
    """One Figure 13 subplot as a table plus the headline ratios."""
    table = format_table([p.row() for p in sweep.points],
                         title=f"Figure 13 ({sweep.benchmark}): normalized power "
                               f"and area vs laxity factor")
    footer = (
        f"max power reduction vs 5V base : {sweep.max_power_reduction_vs_base():.2f}x\n"
        f"max power reduction vs A-Power : {sweep.max_power_reduction_vs_a():.2f}x\n"
        f"max area overhead              : {sweep.max_area_overhead():.1%}\n"
        f"output mismatches              : {sweep.total_mismatches()}"
    )
    return table + "\n" + footer


def format_markdown_table(rows: list[dict], title: str = "") -> str:
    """Render dict rows as a GitHub-flavored markdown table.

    Column order follows the first row (like :func:`format_table`);
    missing cells render empty.  ``title`` becomes a leading heading.
    """
    lines = [f"## {title}", ""] if title else []
    if not rows:
        lines.append("*(empty)*")
        return "\n".join(lines)
    columns = list(rows[0])
    lines.append("| " + " | ".join(str(c) for c in columns) + " |")
    lines.append("|" + "|".join("---" for _ in columns) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(row.get(c, "")) for c in columns)
                     + " |")
    return "\n".join(lines)


def format_csv(rows: list[dict]) -> str:
    """Render dict rows as CSV text (columns from the first row)."""
    if not rows:
        return ""
    columns = list(rows[0])
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=columns, extrasaction="ignore")
    writer.writeheader()
    for row in rows:
        writer.writerow(row)
    return out.getvalue()


def write_report(rows: list[dict], base: pathlib.Path | str, *,
                 title: str = "", extra: dict | None = None,
                 formats: tuple[str, ...] = ("json", "csv", "md"),
                 ) -> dict[str, pathlib.Path]:
    """Emit one row set as JSON, CSV and markdown files side by side.

    ``base`` is the extension-less output path (its directory is
    created); ``extra`` adds top-level keys next to ``rows`` in the JSON
    payload (e.g. a run summary).  Returns ``{format: written path}``.

    Every file is published atomically (write-temp + rename, the same
    helper the artifact store uses), so a reader — or a crash — never
    sees a half-written report.
    """
    base = pathlib.Path(base)
    base.parent.mkdir(parents=True, exist_ok=True)
    written: dict[str, pathlib.Path] = {}
    if "json" in formats:
        payload = {"title": title, **(extra or {}), "rows": rows}
        path = base.with_suffix(".json")
        write_json(path, payload)
        written["json"] = path
    if "csv" in formats:
        path = base.with_suffix(".csv")
        atomic_write_text(path, format_csv(rows))
        written["csv"] = path
    if "md" in formats:
        path = base.with_suffix(".md")
        atomic_write_text(path, format_markdown_table(rows, title=title) + "\n")
        written["md"] = path
    return written


def ascii_series(xs: list[float], series: dict[str, list[float]], width: int = 60,
                 height: int = 16) -> str:
    """A crude ASCII plot of several y-series over shared x values."""
    all_ys = [y for ys in series.values() for y in ys]
    if not all_ys:
        return "(empty)"
    lo, hi = min(all_ys + [0.0]), max(all_ys + [1.0])
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#"
    for (name, ys), marker in zip(series.items(), markers):
        for i, y in enumerate(ys):
            col = int(i * (width - 1) / max(len(ys) - 1, 1))
            row = height - 1 - int((y - lo) / span * (height - 1))
            grid[row][col] = marker
    lines = ["".join(row) for row in grid]
    legend = "   ".join(f"{m}={n}" for (n, _), m in zip(series.items(), markers))
    axis = f"y: [{lo:.2f}, {hi:.2f}]   x: [{xs[0]}, {xs[-1]}]   {legend}"
    return "\n".join(lines) + "\n" + axis
