"""Plain-text rendering of experiment results (tables and ASCII series)."""

from __future__ import annotations

from repro.experiments.laxity import LaxitySweep


def format_table(rows: list[dict], title: str = "") -> str:
    """Render dict rows as an aligned plain-text table."""
    if not rows:
        return title
    columns = list(rows[0])
    widths = {c: max(len(str(c)), *(len(str(r.get(c, ""))) for r in rows))
              for c in columns}
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(c).ljust(widths[c]) for c in columns)
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        lines.append("  ".join(str(row.get(c, "")).ljust(widths[c]) for c in columns))
    return "\n".join(lines)


def format_sweep(sweep: LaxitySweep) -> str:
    """One Figure 13 subplot as a table plus the headline ratios."""
    table = format_table([p.row() for p in sweep.points],
                         title=f"Figure 13 ({sweep.benchmark}): normalized power "
                               f"and area vs laxity factor")
    footer = (
        f"max power reduction vs 5V base : {sweep.max_power_reduction_vs_base():.2f}x\n"
        f"max power reduction vs A-Power : {sweep.max_power_reduction_vs_a():.2f}x\n"
        f"max area overhead              : {sweep.max_area_overhead():.1%}\n"
        f"output mismatches              : {sweep.total_mismatches()}"
    )
    return table + "\n" + footer


def ascii_series(xs: list[float], series: dict[str, list[float]], width: int = 60,
                 height: int = 16) -> str:
    """A crude ASCII plot of several y-series over shared x values."""
    all_ys = [y for ys in series.values() for y in ys]
    if not all_ys:
        return "(empty)"
    lo, hi = min(all_ys + [0.0]), max(all_ys + [1.0])
    span = hi - lo or 1.0
    grid = [[" "] * width for _ in range(height)]
    markers = "*o+x#"
    for (name, ys), marker in zip(series.items(), markers):
        for i, y in enumerate(ys):
            col = int(i * (width - 1) / max(len(ys) - 1, 1))
            row = height - 1 - int((y - lo) / span * (height - 1))
            grid[row][col] = marker
    lines = ["".join(row) for row in grid]
    legend = "   ".join(f"{m}={n}" for (n, _), m in zip(series.items(), markers))
    axis = f"y: [{lo:.2f}, {hi:.2f}]   x: [{xs[0]}, {xs[-1]}]   {legend}"
    return "\n".join(lines) + "\n" + axis
