"""The Figure 13 experiment: normalized power and area vs. laxity factor.

For each laxity point L (the ratio of the allowed ENC to the minimum ENC
achievable with the library):

1. synthesize in *area-optimization mode* -> the base design; its power
   measured at 5 V is the normalization denominator for this L;
2. Vdd-scale the base design (consume the residual in-state timing slack)
   and measure -> **A-Power**;
3. synthesize in *power-optimization mode* at the same ENC budget,
   Vdd-scale, measure -> **I-Power**; its area over the base's -> **I-Area**.

All measurements use the bit-level proxy (:mod:`repro.gatesim`) over the
same stimulus the synthesizer profiled with, and every measured design is
simultaneously verified against the behavioral outputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ExperimentError
from repro.benchmarks import get_benchmark
from repro.core.design import equal_throughput_vdd
from repro.core.engine import SynthesisEngine, SynthesisResult
from repro.core.search import SearchConfig
from repro.gatesim import rescale_result, simulate_architecture
from repro.sched.engine import ScheduleOptions

#: The paper's laxity grid (Figure 13 x-axis).
FULL_LAXITY_GRID = tuple(round(1.0 + 0.2 * i, 1) for i in range(11))

#: A coarser grid for quick runs.
COARSE_LAXITY_GRID = (1.0, 1.5, 2.0, 2.5, 3.0)


@dataclass
class LaxityPoint:
    """One x-position of a Figure 13 subplot."""

    laxity: float
    base_power_mw: float      # area-optimized design at 5 V
    a_power_mw: float         # area-optimized design, Vdd-scaled
    i_power_mw: float         # power-optimized design, Vdd-scaled
    base_area: float
    i_area_abs: float
    a_vdd: float
    i_vdd: float
    enc_budget: float
    a_enc: float
    i_enc: float
    mismatches: int

    @property
    def a_power(self) -> float:
        """A-Power normalized to the 5 V base."""
        return self.a_power_mw / self.base_power_mw

    @property
    def i_power(self) -> float:
        """I-Power normalized to the 5 V base."""
        return self.i_power_mw / self.base_power_mw

    @property
    def i_area(self) -> float:
        """Power-optimized area normalized to the area-optimized base."""
        return self.i_area_abs / self.base_area

    def row(self) -> dict[str, float]:
        return {
            "laxity": self.laxity,
            "A-Power": round(self.a_power, 3),
            "I-Power": round(self.i_power, 3),
            "I-Area": round(self.i_area, 3),
            "A-Vdd": round(self.a_vdd, 2),
            "I-Vdd": round(self.i_vdd, 2),
        }


@dataclass
class LaxitySweep:
    """All points of one benchmark's Figure 13 subplot."""

    benchmark: str
    points: list[LaxityPoint] = field(default_factory=list)
    #: Lifetime pipeline-cache counters of the engine that ran the sweep
    #: (see :meth:`repro.core.cache.SynthesisCache.stats`).
    cache_stats: dict = field(default_factory=dict)
    #: Total candidate evaluations across every synthesis run of the sweep.
    evaluations: int = 0
    #: Per-stage timing/incremental counters accumulated over the sweep
    #: (see :class:`repro.core.profile.Profiler`).
    profile: dict = field(default_factory=dict)

    def max_power_reduction_vs_base(self) -> float:
        """Paper headline: up to 6.7x over the 5 V area-optimized base."""
        return max(1.0 / p.i_power for p in self.points)

    def max_power_reduction_vs_a(self) -> float:
        """Paper headline: up to 2.6x over the Vdd-scaled area-optimized."""
        return max(p.a_power / p.i_power for p in self.points)

    def max_area_overhead(self) -> float:
        """Paper headline: area overhead <= 30 %."""
        return max(p.i_area for p in self.points) - 1.0

    def total_mismatches(self) -> int:
        return sum(p.mismatches for p in self.points)


def run_laxity_sweep(
    benchmark: str,
    laxities: tuple[float, ...] = COARSE_LAXITY_GRID,
    n_passes: int = 30,
    seed: int = 7,
    search: SearchConfig | None = None,
    options: ScheduleOptions | None = None,
    caching: bool = True,
    engine: SynthesisEngine | None = None,
    store_dir=None,
) -> LaxitySweep:
    """Regenerate one Figure 13 subplot.

    One :class:`SynthesisEngine` carries the trace store, the initial
    design point and the pipeline memo tables across every laxity point
    and both optimization modes, so the repeated portions of the searches
    (shared prefixes of the move sequences, re-visited bindings) are not
    recomputed.  Pass ``engine`` to share that state with a caller; the
    engine then supplies the program, stimulus and configuration, and
    ``benchmark`` is just the sweep's label (``n_passes``/``seed``/
    ``options``/``caching`` are ignored).  ``store_dir`` attaches the
    persistent artifact store (``None`` consults ``$REPRO_STORE_DIR``),
    so a repeated sweep replays schedules and replay results from disk.
    """
    search = search or SearchConfig(max_depth=5, max_candidates=12, max_iterations=6)
    if engine is None:
        bench = get_benchmark(benchmark)
        cdfg = bench.cdfg()
        stimulus = bench.stimulus(n_passes, seed=seed)
        options = options or ScheduleOptions(clock_ns=bench.clock_ns)
        from repro.store import attached_cache
        engine = SynthesisEngine(
            cdfg, stimulus, options=options,
            cache=attached_cache(caching=caching, store_dir=store_dir))
    stimulus = engine.stimulus

    from repro.core.profile import PROFILER

    sweep = LaxitySweep(benchmark=benchmark)
    profile_window = PROFILER.snapshot()
    prev_area = None
    prev_power = None
    # One 5 V gatesim measurement per distinct architecture for the whole
    # sweep: warm starts make consecutive laxity points converge on the
    # same designs, and every other supply point is an exact Vdd^2
    # rescaling of the 5 V run (see :func:`rescale_result`).  Entries pin
    # the architecture object so an ``id()`` is never reused while cached.
    sim_cache: dict[int, tuple[object, object]] = {}
    for laxity in laxities:
        # Warm-starting from the previous laxity point keeps the curves
        # monotone (any design feasible at L is feasible at L' > L); the
        # power search additionally starts from the area-optimized design,
        # so I-Power can never lose to A-Power in estimator terms.
        area_starts = [d for d in (prev_area,) if d is not None]
        area_res = engine.run(mode="area", laxity=laxity, search=search,
                              starts=area_starts)
        power_starts = [area_res.design] + [d for d in (prev_power,) if d is not None]
        # The paper's power-optimized designs stay within ~1.3x of the
        # area-optimized base; impose that as the search's area ceiling.
        area_cap = 1.3 * area_res.design.evaluate().area
        power_res = engine.run(mode="power", laxity=laxity, search=search,
                               starts=power_starts, area_cap=area_cap)
        prev_area = area_res.design
        prev_power = power_res.design
        sweep.evaluations += (area_res.history.evaluations
                              + power_res.history.evaluations)
        sweep.points.append(_measure_point(laxity, area_res, power_res,
                                           stimulus, sim_cache))
    sweep.cache_stats = engine.cache.stats()
    sweep.profile = PROFILER.window(profile_window)
    return sweep


def _sim_5v(arch, stimulus, expected, sim_cache: dict):
    """The 5 V measurement of one architecture, memoized per sweep."""
    entry = sim_cache.get(id(arch))
    if entry is None or entry[0] is not arch:
        entry = (arch, simulate_architecture(arch, stimulus,
                                             expected_outputs=expected,
                                             vdd=5.0))
        sim_cache[id(arch)] = entry
    return entry[1]


def _measure_point(laxity: float, area_res: SynthesisResult,
                   power_res: SynthesisResult,
                   stimulus: list[dict[str, int]],
                   sim_cache: dict) -> LaxityPoint:
    store = area_res.store
    a_eval = area_res.design.evaluate()
    i_eval = power_res.design.evaluate()
    if not a_eval.legal or not i_eval.legal:
        raise ExperimentError(f"illegal design escaped the search at laxity {laxity}")

    budget = area_res.enc_budget
    a_vdd = equal_throughput_vdd(a_eval, budget)
    i_vdd = equal_throughput_vdd(i_eval, budget)

    base = _sim_5v(area_res.design.arch, stimulus, store.outputs, sim_cache)
    a_meas = rescale_result(base, a_vdd)
    i_meas = rescale_result(
        _sim_5v(power_res.design.arch, stimulus, store.outputs, sim_cache),
        i_vdd)

    # Equal-throughput comparison: every design gets `budget` cycles of
    # real time per pass, so powers are energies-per-pass over a shared
    # denominator.  Energy = measured power x measured time.
    clock = area_res.design.options.clock_ns
    base_e = base.power_mw * base.total_cycles * clock
    a_e = a_meas.power_mw * a_meas.total_cycles * clock
    i_e = i_meas.power_mw * i_meas.total_cycles * clock
    shared_time = budget * clock * len(stimulus)

    return LaxityPoint(
        laxity=laxity,
        base_power_mw=base_e / shared_time,
        a_power_mw=a_e / shared_time,
        i_power_mw=i_e / shared_time,
        base_area=a_eval.area,
        i_area_abs=i_eval.area,
        a_vdd=a_vdd,
        i_vdd=i_vdd,
        enc_budget=budget,
        a_enc=area_res.enc,
        i_enc=power_res.enc,
        mismatches=(base.output_mismatches + a_meas.output_mismatches
                    + i_meas.output_mismatches),
    )
