"""GraphViz (DOT) export of CDFGs, in the visual style of the paper.

Control edges are dashed, data edges solid; node labels show the paper-style
name plus the control-port polarity (``+`` / ``-``).  Loop-carried edges are
annotated with their initial value in braces, like ``i(0)`` in Figure 1.
"""

from __future__ import annotations

from repro.cdfg.graph import CDFG
from repro.cdfg.node import OpKind, Polarity

_SHAPES = {
    OpKind.SELECT: "trapezium",
    OpKind.ENDLOOP: "house",
    OpKind.INPUT: "invtriangle",
    OpKind.OUTPUT: "triangle",
    OpKind.CONST: "plaintext",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(cdfg: CDFG) -> str:
    """Render the CDFG as a DOT digraph string."""
    lines = [f'digraph "{_escape(cdfg.name)}" {{', "  rankdir=TB;"]
    for node in cdfg.nodes.values():
        label = node.name
        if node.control.source is not None:
            label += f" ({node.control.polarity.value})"
        if node.kind is OpKind.CONST:
            label = str(node.value)
        shape = _SHAPES.get(node.kind, "circle")
        lines.append(f'  n{node.id} [label="{_escape(label)}" shape={shape}];')
    for edge in cdfg.edges:
        style = "dashed" if edge.is_control else "solid"
        attrs = [f"style={style}"]
        if edge.carried:
            init = edge.init_const if edge.init_const is not None else "*"
            attrs.append(f'label="({init})"')
            attrs.append("constraint=false")
        lines.append(f"  n{edge.src} -> n{edge.dst} [{', '.join(attrs)}];")
    lines.append("}")
    return "\n".join(lines)


def write_dot(cdfg: CDFG, path: str) -> None:
    """Write :func:`to_dot` output to a file."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_dot(cdfg))
