"""AST -> CDFG compilation.

The builder walks a checked :class:`repro.lang.ast_nodes.Process` and emits
the flat graph plus the region tree:

* every assignment becomes a *write event*: either the fresh operation node
  computing the right-hand side (its ``carrier`` set to the variable) or a
  zero-delay ``COPY`` node when the right-hand side is a literal or a plain
  variable reference;
* ``if``/``else`` arms become nested block regions whose nodes receive a
  control port tied to the condition (active-high / active-low); variables
  assigned in an arm are merged by a ``Sel`` node (the paper's branch-merge
  multiplexer);
* loops become test-first :class:`LoopRegion`\\ s; reads of a variable whose
  defining write happens later in the loop body become *loop-carried* edges
  with an initial value — exactly the ``i(0)`` annotations of Figure 1;
* an ``Elp`` node per live-out variable marks loop termination (control
  port active-low on the loop condition).

Register allocation in later stages keys off ``carrier`` names: every node
whose output is a program variable carries that variable's name, so the
register file and its input multiplexers fall out of the graph naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CDFGError
from repro.lang import ast_nodes as ast
from repro.lang.typecheck import check_process, literal_type, result_type, unary_result_type
from repro.cdfg.edge import CONTROL_PORT, Edge
from repro.cdfg.graph import CDFG
from repro.cdfg.node import ControlPort, Node, OpKind, Polarity
from repro.cdfg.regions import (
    BlockRegion,
    CarriedVar,
    IfRegion,
    LoopRegion,
    RegionKind,
)

_BINOP_KINDS = {
    "+": OpKind.ADD, "-": OpKind.SUB, "*": OpKind.MUL,
    "<<": OpKind.SHL, ">>": OpKind.SHR,
    "<": OpKind.LT, ">": OpKind.GT, "<=": OpKind.LE, ">=": OpKind.GE,
    "==": OpKind.EQ, "!=": OpKind.NE,
    "&&": OpKind.LAND, "||": OpKind.LOR,
    "&": OpKind.BAND, "|": OpKind.BOR, "^": OpKind.BXOR,
}

_NAME_SYMBOLS = {
    OpKind.ADD: "+", OpKind.SUB: "-", OpKind.MUL: "*",
    OpKind.SHL: "<<", OpKind.SHR: ">>",
    OpKind.LT: "<", OpKind.GT: ">", OpKind.LE: "<=", OpKind.GE: ">=",
    OpKind.EQ: "==", OpKind.NE: "!=",
    OpKind.LAND: "&&", OpKind.LOR: "||", OpKind.LNOT: "!",
    OpKind.BAND: "&", OpKind.BOR: "|", OpKind.BXOR: "^",
    OpKind.SELECT: "Sel", OpKind.ENDLOOP: "Elp", OpKind.COPY: "mov",
    OpKind.LOAD: "ld", OpKind.STORE: "st",
}


# -- value references during construction -----------------------------------

@dataclass(frozen=True)
class NodeRef:
    node: int


@dataclass(frozen=True)
class ConstRef:
    value: int
    width: int
    signed: bool


@dataclass(frozen=True)
class VarMarker:
    """A read of a variable whose loop-carried producer is not yet known."""

    loop_scope: int  # index into the builder's loop-scope stack
    var: str


Ref = NodeRef | ConstRef | VarMarker


@dataclass
class _PendingEdge:
    dst: int
    port: int


@dataclass
class _LoopScope:
    """Bookkeeping for a loop currently under construction."""

    region: LoopRegion
    entry_env: dict[str, Ref]
    pending: dict[str, list[_PendingEdge]] = field(default_factory=dict)
    pending_inits: dict[str, list[CarriedVar]] = field(default_factory=dict)

    def note_read(self, var: str, dst: int, port: int) -> None:
        self.pending.setdefault(var, []).append(_PendingEdge(dst, port))


class _Builder:
    def __init__(self, process: ast.Process):
        self._process = process
        checked = check_process(process)
        self._types = checked.var_types
        self._array_types = checked.array_types
        self._cdfg = CDFG(name=process.name)
        self._env: dict[str, Ref] = {}
        self._const_nodes: dict[tuple[int, int, bool], int] = {}
        self._name_counters: dict[str, int] = {}
        self._control_stack: list[tuple[int, Polarity]] = []
        self._guard_stack: list[tuple[int, bool]] = []
        self._loop_scopes: list[_LoopScope] = []
        self._block_stack: list[BlockRegion] = []
        self._decl_scopes: list[set[str]] = [set()]

    # -- top level -----------------------------------------------------------

    def run(self) -> CDFG:
        cdfg = self._cdfg
        root = BlockRegion(id=cdfg.new_region_id(), kind=RegionKind.BLOCK, parent=None)
        cdfg.add_region(root)
        cdfg.root_region = root.id
        self._block_stack.append(root)
        for name, vtype in self._types.items():
            cdfg.var_types[name] = (vtype.width, vtype.signed)
        for name, (etype, size) in self._array_types.items():
            cdfg.array_types[name] = (etype.width, etype.signed, size)

        for param in self._process.inputs:
            node = self._new_node(OpKind.INPUT, param.type.width, param.type.signed,
                                  name=param.name, carrier=param.name)
            self._env[param.name] = NodeRef(node.id)

        self._build_body(self._process.body)

        for param in self._process.outputs:
            out = self._new_node(OpKind.OUTPUT, param.type.width, param.type.signed,
                                 name=f"out:{param.name}", carrier=None)
            self._connect(out.id, 0, self._env[param.name])

        self._block_stack.pop()
        cdfg.validate()
        return cdfg

    # -- node / edge helpers ---------------------------------------------------

    def _fresh_name(self, kind: OpKind) -> str:
        symbol = _NAME_SYMBOLS.get(kind, kind.value)
        count = self._name_counters.get(symbol, 0) + 1
        self._name_counters[symbol] = count
        return f"{symbol}{count}"

    def _current_block(self) -> BlockRegion:
        return self._block_stack[-1]

    def _new_node(self, kind: OpKind, width: int, signed: bool, *, name: str | None = None,
                  carrier: str | None = None, value: int | None = None,
                  const_shift: bool = False, mem: str | None = None, line: int = 0,
                  control: ControlPort | None = None, in_items: bool | None = None) -> Node:
        cdfg = self._cdfg
        if control is None:
            if kind in (OpKind.INPUT, OpKind.CONST, OpKind.OUTPUT):
                control = ControlPort()
            elif self._control_stack:
                src, pol = self._control_stack[-1]
                control = ControlPort(src, pol)
            else:
                control = ControlPort()
        node = Node(
            id=cdfg.new_node_id(),
            kind=kind,
            name=name if name is not None else self._fresh_name(kind),
            width=width,
            signed=signed,
            control=control,
            guard=frozenset(self._guard_stack),
            region=self._current_block().id,
            carrier=carrier,
            value=value,
            const_shift=const_shift,
            mem=mem,
            line=line,
        )
        cdfg.add_node(node)
        if control.source is not None:
            cdfg.add_edge(Edge(src=control.source, dst=node.id, dst_port=CONTROL_PORT,
                               width=self._cdfg.node(control.source).width))
        schedulable = node.is_schedulable if in_items is None else in_items
        if schedulable:
            self._current_block().append_node(node.id)
        return node

    def _const_node(self, value: int, width: int, signed: bool) -> int:
        key = (value, width, signed)
        node_id = self._const_nodes.get(key)
        if node_id is None:
            node = self._new_node(OpKind.CONST, width, signed, name=f"c:{value}", value=value)
            # Constants belong to the root region regardless of where they
            # are first used; they are tie-offs, not computations.
            node.region = self._cdfg.root_region
            node.control = ControlPort()
            node.guard = frozenset()
            self._const_nodes[key] = node.id
            node_id = node.id
        return node_id

    def _ref_width(self, ref: Ref) -> tuple[int, bool]:
        if isinstance(ref, NodeRef):
            node = self._cdfg.node(ref.node)
            return node.width, node.signed
        if isinstance(ref, ConstRef):
            return ref.width, ref.signed
        width, signed = self._cdfg.var_types[ref.var]
        return width, signed

    def _connect(self, dst: int, port: int, ref: Ref) -> None:
        """Create the data edge ``ref -> dst.port`` (deferred for markers)."""
        if isinstance(ref, NodeRef):
            width = self._cdfg.node(ref.node).width
            self._cdfg.add_edge(Edge(src=ref.node, dst=dst, dst_port=port, width=width))
        elif isinstance(ref, ConstRef):
            node_id = self._const_node(ref.value, ref.width, ref.signed)
            self._cdfg.add_edge(Edge(src=node_id, dst=dst, dst_port=port, width=ref.width))
        elif isinstance(ref, VarMarker):
            self._loop_scopes[ref.loop_scope].note_read(ref.var, dst, port)
        else:  # pragma: no cover - exhaustive
            raise CDFGError(f"unknown ref {ref!r}")

    def _read_var(self, name: str, line: int) -> Ref:
        ref = self._env.get(name)
        if ref is None:
            raise CDFGError(f"line {line}: read of unassigned variable {name!r}")
        return ref

    # -- expressions -------------------------------------------------------------

    def _build_expr(self, expr: ast.Expr) -> Ref:
        if isinstance(expr, ast.IntLit):
            ltype = literal_type(expr.value)
            return ConstRef(expr.value, ltype.width, ltype.signed)
        if isinstance(expr, ast.BoolLit):
            return ConstRef(int(expr.value), 1, False)
        if isinstance(expr, ast.VarRef):
            return self._read_var(expr.name, expr.line)
        if isinstance(expr, ast.IndexExpr):
            return self._build_load(expr)
        if isinstance(expr, ast.UnaryOp):
            return self._build_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._build_binary(expr)
        raise CDFGError(f"unknown expression {type(expr).__name__}")

    def _expr_type(self, ref: Ref) -> ast.Type:
        width, signed = self._ref_width(ref)
        return ast.Type(width, signed)

    def _build_unary(self, expr: ast.UnaryOp) -> Ref:
        operand = self._build_expr(expr.operand)
        if expr.op == "-":
            if isinstance(operand, ConstRef):
                ltype = literal_type(-operand.value)
                return ConstRef(-operand.value, ltype.width, ltype.signed)
            rtype = unary_result_type("-", self._expr_type(operand))
            node = self._new_node(OpKind.SUB, rtype.width, rtype.signed, line=expr.line)
            self._connect(node.id, 0, ConstRef(0, 1, False))
            self._connect(node.id, 1, operand)
            return NodeRef(node.id)
        if expr.op == "!":
            node = self._new_node(OpKind.LNOT, 1, False, line=expr.line)
            self._connect(node.id, 0, operand)
            return NodeRef(node.id)
        raise CDFGError(f"unknown unary operator {expr.op!r}")

    def _build_binary(self, expr: ast.BinaryOp) -> Ref:
        left = self._build_expr(expr.left)
        right = self._build_expr(expr.right)
        if isinstance(left, ConstRef) and isinstance(right, ConstRef):
            folded = _fold_const(expr.op, left.value, right.value)
            if folded is not None:
                ltype = literal_type(folded)
                return ConstRef(folded, ltype.width, ltype.signed)
        kind = _BINOP_KINDS[expr.op]
        rtype = result_type(expr.op, self._expr_type(left), self._expr_type(right))
        const_shift = kind in (OpKind.SHL, OpKind.SHR) and isinstance(right, ConstRef)
        node = self._new_node(kind, rtype.width, rtype.signed, line=expr.line,
                              const_shift=const_shift)
        self._connect(node.id, 0, left)
        self._connect(node.id, 1, right)
        return NodeRef(node.id)

    # -- memory access ----------------------------------------------------------

    def _build_load(self, expr: ast.IndexExpr) -> Ref:
        """Lower ``a[i]`` to a LOAD node (port 0: address).

        The node's width/sign are the element type; the address wraps to the
        (power-of-two) array size inside every backend, so any integer
        expression is a valid index.
        """
        addr = self._build_expr(expr.index)
        etype, _size = self._array_types[expr.name]
        node = self._new_node(OpKind.LOAD, etype.width, etype.signed,
                              mem=expr.name, line=expr.line)
        self._connect(node.id, 0, addr)
        return NodeRef(node.id)

    def _build_store(self, stmt: ast.ArrayAssign) -> None:
        """Lower ``a[i] = e`` to a STORE node (port 0: address, port 1: data).

        The stored value wraps to the element type, exactly like a scalar
        assignment wraps to the variable type.
        """
        addr = self._build_expr(stmt.index)
        value = self._build_expr(stmt.value)
        etype, _size = self._array_types[stmt.name]
        node = self._new_node(OpKind.STORE, etype.width, etype.signed,
                              mem=stmt.name, line=stmt.line)
        self._connect(node.id, 0, addr)
        self._connect(node.id, 1, value)

    # -- statements -----------------------------------------------------------------

    def _build_body(self, body: tuple[ast.Stmt, ...]) -> None:
        for stmt in body:
            self._build_stmt(stmt)

    def _build_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            existing = self._env.get(stmt.name)
            shadows = existing is not None and not (
                isinstance(existing, VarMarker) and existing.var == stmt.name)
            if shadows:
                raise CDFGError(
                    f"line {stmt.line}: declaration of {stmt.name!r} shadows an "
                    f"existing variable (rename it)")
            self._decl_scopes[-1].add(stmt.name)
            if stmt.init is not None:
                self._build_assign(stmt.name, stmt.init, stmt.line)
        elif isinstance(stmt, ast.ArrayDecl):
            # Declarations carry no computation; the array set was recorded
            # from the checker before the body walk.
            pass
        elif isinstance(stmt, ast.ArrayAssign):
            self._build_store(stmt)
        elif isinstance(stmt, ast.Assign):
            self._build_assign(stmt.name, stmt.value, stmt.line)
        elif isinstance(stmt, ast.If):
            self._build_if(stmt)
        elif isinstance(stmt, ast.For):
            self._build_stmt(stmt.init)
            self._build_loop(test=stmt.cond, body=stmt.body, update=stmt.update,
                             loop_kind="for", line=stmt.line)
        elif isinstance(stmt, ast.While):
            self._build_loop(test=stmt.cond, body=stmt.body, update=None,
                             loop_kind="while", line=stmt.line)
        else:
            raise CDFGError(f"unknown statement {type(stmt).__name__}")

    def _build_assign(self, name: str, value: ast.Expr, line: int) -> None:
        width, signed = self._cdfg.var_types[name]
        ref = self._build_expr(value)
        fresh_op = (
            isinstance(ref, NodeRef)
            and self._cdfg.node(ref.node).carrier is None
            and isinstance(value, (ast.BinaryOp, ast.UnaryOp))
        )
        if fresh_op:
            node = self._cdfg.node(ref.node)
            node.carrier = name
            node.width = width
            node.signed = signed
            for edge in self._cdfg.out_edges(node.id):
                edge.width = width
        else:
            node = self._new_node(OpKind.COPY, width, signed, carrier=name, line=line)
            self._connect(node.id, 0, ref)
        self._env[name] = NodeRef(node.id)

    def _materialize_condition(self, cond: ast.Expr, line: int) -> int:
        """Build a condition expression down to a concrete node id.

        Constant, loop-carried, and structurally-merged (Sel/Elp) conditions
        are funneled through a 1-bit COPY so the controller always reads a
        condition node that actually executes.
        """
        ref = self._build_expr(cond)
        if isinstance(ref, NodeRef):
            kind = self._cdfg.node(ref.node).kind
            if kind not in (OpKind.SELECT, OpKind.ENDLOOP):
                return ref.node
        node = self._new_node(OpKind.COPY, 1, False, line=line)
        self._connect(node.id, 0, ref)
        return node.id

    def _build_if(self, stmt: ast.If) -> None:
        cdfg = self._cdfg
        cond_node = self._materialize_condition(stmt.cond, stmt.line)
        parent_block = self._current_block()

        region = IfRegion(id=cdfg.new_region_id(), kind=RegionKind.IF,
                          parent=parent_block.id, cond_node=cond_node)
        cdfg.add_region(region)
        parent_block.append_region(region.id)

        env_before = dict(self._env)
        env_then, assigned_then = self._build_arm(region, "then", cond_node, Polarity.HIGH, stmt.then_body)
        self._env = dict(env_before)
        env_else, assigned_else = self._build_arm(region, "else", cond_node, Polarity.LOW, stmt.else_body)
        self._env = dict(env_before)

        for var in sorted(assigned_then | assigned_else):
            then_ref = env_then.get(var, env_before.get(var))
            else_ref = env_else.get(var, env_before.get(var))
            if then_ref is None or else_ref is None:
                # Variable local to one arm: it goes out of scope at the
                # join (reading it later raises "read of unassigned").
                self._env.pop(var, None)
                continue
            width, signed = cdfg.var_types[var]
            sel = self._new_node(OpKind.SELECT, width, signed, carrier=var,
                                 control=ControlPort(cond_node, Polarity.HIGH),
                                 line=stmt.line, in_items=False)
            sel.region = parent_block.id
            self._connect(sel.id, 0, then_ref)
            self._connect(sel.id, 1, else_ref)
            region.sel_nodes.append(sel.id)
            self._env[var] = NodeRef(sel.id)

    def _build_arm(self, region: IfRegion, which: str, cond_node: int, polarity: Polarity,
                   body: tuple[ast.Stmt, ...]) -> tuple[dict[str, Ref], set[str]]:
        cdfg = self._cdfg
        block = BlockRegion(id=cdfg.new_region_id(), kind=RegionKind.BLOCK, parent=region.id)
        cdfg.add_region(block)
        if which == "then":
            region.then_block = block.id
        else:
            region.else_block = block.id
        env_before = dict(self._env)
        self._block_stack.append(block)
        self._control_stack.append((cond_node, polarity))
        self._guard_stack.append((cond_node, polarity is Polarity.HIGH))
        self._decl_scopes.append(set())
        try:
            self._build_body(body)
        finally:
            arm_decls = self._decl_scopes.pop()
            self._guard_stack.pop()
            self._control_stack.pop()
            self._block_stack.pop()
        assigned = {v for v, ref in self._env.items()
                    if env_before.get(v) != ref and v not in arm_decls}
        return dict(self._env), assigned

    def _build_loop(self, test: ast.Expr, body: tuple[ast.Stmt, ...],
                    update: ast.Assign | None, loop_kind: str, line: int) -> None:
        cdfg = self._cdfg
        parent_block = self._current_block()

        region = LoopRegion(id=cdfg.new_region_id(), kind=RegionKind.LOOP,
                            parent=parent_block.id, loop_kind=loop_kind)
        cdfg.add_region(region)
        parent_block.append_region(region.id)

        full_body = body + ((update,) if update is not None else ())
        assigned_in_loop = ast.assigned_names(full_body)

        entry_env = dict(self._env)
        scope = _LoopScope(region=region, entry_env=entry_env)
        self._loop_scopes.append(scope)
        scope_index = len(self._loop_scopes) - 1

        # Reads of loop-assigned variables resolve to markers until the body
        # producer is known.
        for var in assigned_in_loop:
            self._env[var] = VarMarker(scope_index, var)

        test_block = BlockRegion(id=cdfg.new_region_id(), kind=RegionKind.BLOCK, parent=region.id)
        cdfg.add_region(test_block)
        region.test_block = test_block.id
        self._block_stack.append(test_block)
        try:
            cond_node = self._materialize_condition(test, line)
        finally:
            self._block_stack.pop()
        region.cond_node = cond_node

        body_block = BlockRegion(id=cdfg.new_region_id(), kind=RegionKind.BLOCK, parent=region.id)
        cdfg.add_region(body_block)
        region.body_block = body_block.id
        self._block_stack.append(body_block)
        self._control_stack.append((cond_node, Polarity.HIGH))
        self._decl_scopes.append(set())
        try:
            self._build_body(body)
            if update is not None:
                self._build_stmt(update)
        finally:
            body_decls = self._decl_scopes.pop()
            self._control_stack.pop()
            self._block_stack.pop()

        self._finalize_loop(scope, assigned_in_loop, body_decls, line)
        self._loop_scopes.pop()

    def _finalize_loop(self, scope: _LoopScope, assigned_in_loop: set[str],
                       body_decls: set[str], line: int) -> None:
        cdfg = self._cdfg
        region = scope.region
        cond_node = region.cond_node

        for var in sorted(assigned_in_loop):
            producer_ref = self._env.get(var)
            pending = scope.pending.get(var, [])
            pending_inits = scope.pending_inits.get(var, [])
            if var in body_decls:
                # Body-local declaration: scoped to one iteration -- it is
                # neither loop-carried nor visible after the loop.
                if pending or pending_inits:
                    raise CDFGError(
                        f"line {line}: {var!r} is read before its declaration "
                        f"inside the loop body")
                entry = scope.entry_env.get(var)
                if entry is not None:
                    self._env[var] = entry
                else:
                    self._env.pop(var, None)
                continue
            if not isinstance(producer_ref, NodeRef):
                # No visible producer survived the body: the only writes
                # were inside a nested arm-local declaration scope (an if
                # arm declaring the variable), so the loop's own marker is
                # dead.  Restore the pre-loop binding -- leaving the marker
                # in the env would leak a reference to this (about to be
                # popped) scope into enclosing merges.
                if pending or pending_inits:
                    raise CDFGError(
                        f"line {line}: loop-carried variable {var!r} has no producer in "
                        f"the loop body")
                entry = scope.entry_env.get(var)
                if entry is not None:
                    self._env[var] = entry
                else:
                    self._env.pop(var, None)
                continue
            producer = producer_ref.node
            if pending or pending_inits:
                entry = scope.entry_env.get(var)
                if entry is None:
                    raise CDFGError(
                        f"line {line}: variable {var!r} read in loop before any assignment")
                carried = CarriedVar(var=var, body_producer=producer,
                                     init_const=0, init_src=None)
                width = cdfg.node(producer).width
                carried_edges: list[Edge] = []
                for use in pending:
                    edge = Edge(src=producer, dst=use.dst, dst_port=use.port,
                                width=width, carried=True, init_const=0,
                                init_src=None, loop=region.id)
                    cdfg.add_edge(edge)
                    carried_edges.append(edge)
                self._assign_init(entry, [carried] + carried_edges)
                region.carried.append(carried)
                for inner in pending_inits:
                    inner.init_const = None
                    inner.init_src = producer
                    if isinstance(inner, CarriedVar):
                        inner.init_carried_from = region.id

            width, signed = cdfg.var_types[var]
            elp = self._new_node(OpKind.ENDLOOP, width, signed, carrier=var,
                                 control=ControlPort(cond_node, Polarity.LOW),
                                 line=line, in_items=False)
            elp.region = region.parent if region.parent is not None else cdfg.root_region
            region.elp_nodes.append(elp.id)
            self._connect(elp.id, 0, producer_ref)
            self._env[var] = NodeRef(elp.id)

    def _assign_init(self, entry: Ref, targets: list) -> None:
        """Set the first-iteration value on a CarriedVar and its edges.

        ``targets`` mixes :class:`CarriedVar` and :class:`Edge` objects that
        all share the same init.  When the entry value is itself a marker of
        an *enclosing* loop, the init source is unknown until that loop
        finalizes; the targets are queued on the enclosing scope and patched
        there (init_carried_from flags the cross-loop carry for schedulers).
        """
        if isinstance(entry, ConstRef):
            for target in targets:
                target.init_const = entry.value
                target.init_src = None
        elif isinstance(entry, NodeRef):
            for target in targets:
                target.init_const = None
                target.init_src = entry.node
        elif isinstance(entry, VarMarker):
            outer = self._loop_scopes[entry.loop_scope]
            outer.pending_inits.setdefault(entry.var, []).extend(targets)
        else:  # pragma: no cover - exhaustive
            raise CDFGError(f"bad loop entry value {entry!r}")


def _fold_const(op: str, left: int, right: int) -> int | None:
    """Compile-time evaluation of constant expressions (None if not foldable)."""
    if op == "+":
        return left + right
    if op == "-":
        return left - right
    if op == "*":
        return left * right
    if op == "<<":
        return left << right if 0 <= right < 64 else None
    if op == ">>":
        return left >> right if 0 <= right < 64 else None
    if op == "&":
        return left & right
    if op == "|":
        return left | right
    if op == "^":
        return left ^ right
    if op == "<":
        return int(left < right)
    if op == ">":
        return int(left > right)
    if op == "<=":
        return int(left <= right)
    if op == ">=":
        return int(left >= right)
    if op == "==":
        return int(left == right)
    if op == "!=":
        return int(left != right)
    if op == "&&":
        return int(bool(left) and bool(right))
    if op == "||":
        return int(bool(left) or bool(right))
    return None


def build_cdfg(process: ast.Process) -> CDFG:
    """Compile a checked process AST into a validated CDFG."""
    return _Builder(process).run()
