"""Static analyses over CDFGs: guards, mutual exclusion, loop structure."""

from __future__ import annotations

from repro.cdfg.graph import CDFG
from repro.cdfg.node import Node, OpKind
from repro.cdfg.regions import BlockRegion, IfRegion, LoopRegion, OpsItem, Region, SubRegionItem


def guard_of(cdfg: CDFG, node_id: int) -> frozenset[tuple[int, bool]]:
    """Full conjunction of branch conditions controlling a node's execution."""
    return cdfg.node(node_id).guard


def mutually_exclusive(cdfg: CDFG, a: int, b: int) -> bool:
    """True when two nodes can never execute for the same branch outcome.

    Two operations are mutually exclusive iff their guard conjunctions
    require opposite values of the same condition — i.e. they sit in
    opposite arms of some conditional.  Mutually exclusive operations may
    share one functional unit within a single state (Section 3.2.3).
    """
    guard_a = cdfg.node(a).guard
    guard_b = dict(cdfg.node(b).guard)
    for cond, value in guard_a:
        other = guard_b.get(cond)
        if other is not None and other != value:
            return True
    return False


def condition_nodes(cdfg: CDFG) -> list[int]:
    """Nodes whose value steers control flow (if / loop conditions)."""
    conds: list[int] = []
    for region in cdfg.regions.values():
        if isinstance(region, (IfRegion, LoopRegion)):
            conds.append(region.cond_node)
    return sorted(set(conds))


def loops_of(cdfg: CDFG) -> list[LoopRegion]:
    """All loop regions, outermost first (by region id order of creation)."""
    return [r for r in sorted(cdfg.regions.values(), key=lambda r: r.id)
            if isinstance(r, LoopRegion)]


def region_nodes(cdfg: CDFG, region_id: int, recursive: bool = True) -> list[int]:
    """Schedulable node ids inside a region (optionally descending)."""
    region = cdfg.region(region_id)
    out: list[int] = []
    if isinstance(region, BlockRegion):
        for item in region.items:
            if isinstance(item, OpsItem):
                out.extend(item.nodes)
            elif isinstance(item, SubRegionItem) and recursive:
                out.extend(region_nodes(cdfg, item.region, recursive=True))
    elif isinstance(region, IfRegion):
        if recursive:
            out.extend(region_nodes(cdfg, region.then_block, recursive=True))
            out.extend(region_nodes(cdfg, region.else_block, recursive=True))
    elif isinstance(region, LoopRegion):
        if recursive:
            out.extend(region_nodes(cdfg, region.test_block, recursive=True))
            out.extend(region_nodes(cdfg, region.body_block, recursive=True))
    return out


def region_subtree(cdfg: CDFG, region_id: int) -> set[int]:
    """All region ids in the subtree rooted at ``region_id`` (inclusive)."""
    out = {region_id}
    region = cdfg.region(region_id)
    if isinstance(region, BlockRegion):
        for item in region.items:
            if isinstance(item, SubRegionItem):
                out |= region_subtree(cdfg, item.region)
    elif isinstance(region, IfRegion):
        out |= region_subtree(cdfg, region.then_block)
        out |= region_subtree(cdfg, region.else_block)
    elif isinstance(region, LoopRegion):
        out |= region_subtree(cdfg, region.test_block)
        out |= region_subtree(cdfg, region.body_block)
    return out


def producers_outside(cdfg: CDFG, region_id: int) -> set[int]:
    """Nodes outside a region subtree whose values the subtree reads.

    These are the region's *live-in* producers; schedulers use them as the
    region task's dependencies.  Loop-carried edges are skipped (they are
    cross-iteration, not entry dependencies) but carried-var init sources
    are included unless themselves carried from an enclosing loop.
    """
    regions = region_subtree(cdfg, region_id)
    inside = {n for r in regions for n in region_nodes(cdfg, r, recursive=False)}
    # Structural nodes (Sel) live in their parent block but belong to the
    # conditional; treat any node whose region is in the subtree as inside.
    for node in cdfg.nodes.values():
        if node.region in regions:
            inside.add(node.id)
    deps: set[int] = set()
    for node_id in inside:
        for edge in cdfg.in_edges(node_id):
            if edge.carried:
                continue
            if edge.src not in inside:
                deps.add(edge.src)
        ctrl = cdfg.control_edge(node_id)
        if ctrl is not None and not ctrl.carried and ctrl.src not in inside:
            deps.add(ctrl.src)
    for region in (cdfg.region(r) for r in regions):
        if isinstance(region, LoopRegion):
            for cv in region.carried:
                if cv.init_src is not None and cv.init_carried_from is None \
                        and cv.init_src not in inside:
                    deps.add(cv.init_src)
    return deps


def node_heights(cdfg: CDFG, delays: dict[int, float]) -> dict[int, float]:
    """Longest-path-to-sink delay per node over the acyclic skeleton.

    ``delays`` maps node id -> execution delay (ns); missing nodes count as
    zero.  Used as the list-scheduling priority (critical-path first).
    """
    import networkx as nx

    graph = nx.DiGraph()
    graph.add_nodes_from(cdfg.nodes)
    for edge in cdfg.edges:
        if not edge.carried:
            graph.add_edge(edge.src, edge.dst)
    heights: dict[int, float] = {}
    for node_id in reversed(list(nx.topological_sort(graph))):
        succ_max = max((heights[s] for s in graph.successors(node_id)), default=0.0)
        heights[node_id] = delays.get(node_id, 0.0) + succ_max
    return heights
