"""Control-data flow graph (CDFG) model — Section 2.1 of the paper.

A CDFG combines data-flow and control-flow in one graph.  Nodes are
arithmetic / logical / comparison operations plus the structural ``Sel``
(branch merge) and ``Elp`` (end-loop) nodes; every node has exactly one
*control port* with a polarity (active-high, active-low, or null).  Edges
carry only data; edges that feed control ports are a presentation detail
(dashed in the paper's figures).  Loop-carried edges are marked and carry an
initial value, mirroring the ``i(0)`` annotations of Figure 1.

On top of the flat graph we keep a *region tree* (block / if / loop), which
gives the interpreter and the schedulers a well-defined execution structure
without losing the flat-graph generality the analyses need.
"""

from repro.cdfg.node import Node, OpKind, Polarity, ControlPort
from repro.cdfg.edge import Edge, CONTROL_PORT
from repro.cdfg.graph import CDFG
from repro.cdfg.regions import (
    Region,
    BlockRegion,
    IfRegion,
    LoopRegion,
    CarriedVar,
    RegionKind,
)
from repro.cdfg.builder import build_cdfg
from repro.cdfg.analysis import mutually_exclusive, guard_of, condition_nodes

__all__ = [
    "Node",
    "OpKind",
    "Polarity",
    "ControlPort",
    "Edge",
    "CONTROL_PORT",
    "CDFG",
    "Region",
    "BlockRegion",
    "IfRegion",
    "LoopRegion",
    "CarriedVar",
    "RegionKind",
    "build_cdfg",
    "mutually_exclusive",
    "guard_of",
    "condition_nodes",
]
