"""Hierarchical region tree over the flat CDFG.

Regions give the flat graph a structured execution semantics:

* ``BlockRegion`` — a sequence of items; each item is either an ordered
  group of dataflow nodes or a nested region.
* ``IfRegion`` — a two-armed conditional with the merge (Sel) nodes that
  reconcile variables assigned in the arms.
* ``LoopRegion`` — a test-first loop: the test block is (re)evaluated before
  every iteration, the body block runs while the condition holds, and the
  Elp node marks loop termination.  ``carried`` lists the loop-carried
  variables with their first-iteration sources.

The interpreter executes the region tree; the schedulers turn it into a
state transition graph.  Both consult the flat edges for data dependencies.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class RegionKind(enum.Enum):
    BLOCK = "block"
    IF = "if"
    LOOP = "loop"


@dataclass
class Region:
    id: int
    kind: RegionKind
    parent: int | None = None


#: A block item: either an ordered list of node ids (straight-line dataflow)
#: or the id of a nested region.
@dataclass
class OpsItem:
    nodes: list[int] = field(default_factory=list)


@dataclass
class SubRegionItem:
    region: int = 0


BlockItem = OpsItem | SubRegionItem


@dataclass
class BlockRegion(Region):
    items: list[BlockItem] = field(default_factory=list)

    def append_node(self, node_id: int) -> None:
        """Add a dataflow node, extending the trailing ops item if present."""
        if self.items and isinstance(self.items[-1], OpsItem):
            self.items[-1].nodes.append(node_id)
        else:
            self.items.append(OpsItem([node_id]))

    def append_region(self, region_id: int) -> None:
        self.items.append(SubRegionItem(region_id))

    def all_nodes(self) -> list[int]:
        """Node ids directly in this block (not in nested regions)."""
        out: list[int] = []
        for item in self.items:
            if isinstance(item, OpsItem):
                out.extend(item.nodes)
        return out


@dataclass
class IfRegion(Region):
    cond_node: int = -1
    then_block: int = -1
    else_block: int = -1
    sel_nodes: list[int] = field(default_factory=list)


@dataclass
class CarriedVar:
    """A loop-carried variable.

    ``body_producer`` is the node whose output is the variable's value at
    the end of an iteration; on the first test/iteration the value comes
    from ``init_const`` or ``init_src`` instead.  When the initial value is
    itself carried by an *enclosing* loop, ``init_carried_from`` names that
    loop — schedulers must then not treat the init source as an
    intra-iteration dependency.
    """

    var: str
    body_producer: int
    init_const: int | None = None
    init_src: int | None = None
    init_carried_from: int | None = None

    def __post_init__(self) -> None:
        if (self.init_const is None) == (self.init_src is None):
            raise ValueError(f"carried var {self.var!r} needs exactly one init source")


@dataclass
class LoopRegion(Region):
    test_block: int = -1
    body_block: int = -1
    cond_node: int = -1
    elp_nodes: list[int] = field(default_factory=list)
    carried: list[CarriedVar] = field(default_factory=list)
    loop_kind: str = "while"  # "for" or "while" (diagnostic only)

    def carried_var(self, var: str) -> CarriedVar | None:
        for cv in self.carried:
            if cv.var == var:
                return cv
        return None
