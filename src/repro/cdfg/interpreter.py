"""Behavioral execution of a CDFG.

The interpreter walks the region tree in program order, evaluating nodes
against the flat graph's edges, and records an *occurrence* (input values,
output value, dynamic step number) for every schedulable node.  One run over
a stimulus is the "initial behavioral simulation" of Section 2.3 — every
later synthesis step reuses these occurrence streams through trace
manipulation instead of re-simulating.

Value semantics: every node's result is wrapped to its declared width
(two's complement when signed); variable writes update the variable
environment, which is the single source of truth for loop-carried reads and
for the structural ``Sel`` / ``Elp`` nodes (which alias register contents).
"""

from __future__ import annotations

from repro.errors import InterpreterError
from repro.cdfg.edge import Edge
from repro.cdfg.graph import CDFG
from repro.cdfg.node import Node, OpKind
from repro.cdfg.regions import BlockRegion, IfRegion, LoopRegion, OpsItem, SubRegionItem
from repro.sim.traces import TraceRecorder, TraceStore
from repro.utils.bitwidth import mask_for_width, wrap_to_width

#: Safety cap on iterations of a single loop entry.
MAX_LOOP_ITERATIONS = 100_000


def _wrap(value: int, width: int, signed: bool) -> int:
    if signed:
        return wrap_to_width(value, width)
    return value & mask_for_width(width)


class Interpreter:
    """Executes a CDFG over a sequence of input passes."""

    def __init__(self, cdfg: CDFG, max_loop_iterations: int = MAX_LOOP_ITERATIONS):
        self._cdfg = cdfg
        self._max_iter = max_loop_iterations
        self._val: dict[int, int] = {}
        self._venv: dict[str, int] = {}
        self._mem: dict[str, list[int]] = {}
        self._step = 0
        self._recorder: TraceRecorder | None = None
        self._pass_idx = 0

    # -- public API ------------------------------------------------------------

    def run(self, input_passes: list[dict[str, int]]) -> TraceStore:
        """Execute one pass per input assignment; returns the trace store."""
        cdfg = self._cdfg
        recorder = TraceRecorder(cdfg)
        self._recorder = recorder
        # Arrays are process-scoped memory: they power on at zero and their
        # contents persist across stimulus passes (each pass is one
        # start/done handshake of the same powered-up circuit).
        self._mem = {name: [0] * size
                     for name, (_w, _s, size) in cdfg.array_types.items()}
        for pass_idx, inputs in enumerate(input_passes):
            self._pass_idx = pass_idx
            self._run_pass(inputs)
        store = recorder.finalize(len(input_passes))
        store.mem_final = {name: list(words)
                           for name, words in self._mem.items()}
        return store

    # -- execution ---------------------------------------------------------------

    def _run_pass(self, inputs: dict[str, int]) -> None:
        cdfg = self._cdfg
        self._val = {}
        self._venv = {}
        self._step = 0
        for node_id in cdfg.input_nodes:
            node = cdfg.node(node_id)
            if node.carrier not in inputs:
                raise InterpreterError(f"missing input {node.carrier!r}")
            value = _wrap(inputs[node.carrier], node.width, node.signed)
            self._val[node_id] = value
            self._venv[node.carrier] = value
            self._recorder.record(node_id, self._pass_idx, self._step, (), value)
        self._exec_block(cdfg.block(cdfg.root_region))
        for node_id in cdfg.output_nodes:
            node = cdfg.node(node_id)
            edge = cdfg.in_edge(node_id, 0)
            value = _wrap(self._edge_value(edge), node.width, node.signed)
            self._recorder.record_output(node.name.removeprefix("out:"), self._pass_idx, value)

    def _exec_block(self, block: BlockRegion) -> None:
        cdfg = self._cdfg
        for item in block.items:
            if isinstance(item, OpsItem):
                for node_id in item.nodes:
                    self._exec_op(cdfg.node(node_id))
            elif isinstance(item, SubRegionItem):
                region = cdfg.region(item.region)
                if isinstance(region, IfRegion):
                    self._exec_if(region)
                elif isinstance(region, LoopRegion):
                    self._exec_loop(region)
                else:
                    self._exec_block(cdfg.block(item.region))

    def _exec_if(self, region: IfRegion) -> None:
        cond = self._node_value(region.cond_node)
        if cond:
            self._exec_block(self._cdfg.block(region.then_block))
        else:
            self._exec_block(self._cdfg.block(region.else_block))
        # Sel nodes alias register contents; the variable environment is
        # already correct because only the taken arm executed.

    def _exec_loop(self, region: LoopRegion) -> None:
        cdfg = self._cdfg
        iterations = 0
        while True:
            self._exec_block(cdfg.block(region.test_block))
            if not self._node_value(region.cond_node):
                break
            iterations += 1
            if iterations > self._max_iter:
                raise InterpreterError(
                    f"loop {region.id} exceeded {self._max_iter} iterations "
                    f"(pass {self._pass_idx})")
            self._exec_block(cdfg.block(region.body_block))
        self._recorder.record_loop_trip(region.id, self._pass_idx, iterations)

    def _exec_op(self, node: Node) -> None:
        ins = tuple(self._edge_value(e) for e in self._cdfg.in_edges(node.id))
        if node.kind in (OpKind.LOAD, OpKind.STORE):
            out = self._exec_mem(node, ins)
        else:
            out = _wrap(self._compute(node, ins), node.width, node.signed)
        self._val[node.id] = out
        if node.carrier is not None:
            self._venv[node.carrier] = out
        self._recorder.record(node.id, self._pass_idx, self._step, ins, out)
        self._step += 1

    def _exec_mem(self, node: Node, ins: tuple[int, ...]) -> int:
        """Execute one LOAD/STORE.  The address wraps to the power-of-two
        array size; stored data wraps to the element type — identically in
        every downstream backend."""
        contents = self._mem[node.mem]
        addr = ins[0] & (len(contents) - 1)
        if node.kind is OpKind.LOAD:
            return contents[addr]
        value = _wrap(ins[1], node.width, node.signed)
        contents[addr] = value
        return value

    # -- value resolution -----------------------------------------------------------

    def _edge_value(self, edge: Edge) -> int:
        src = self._cdfg.node(edge.src)
        if edge.carried or src.kind in (OpKind.SELECT, OpKind.ENDLOOP):
            carrier = src.carrier
            if carrier is None or carrier not in self._venv:
                raise InterpreterError(
                    f"read of variable {carrier!r} before any write (node {src.name})")
            return self._venv[carrier]
        if src.kind is OpKind.CONST:
            return src.value
        if edge.src not in self._val:
            raise InterpreterError(f"node {src.name} read before execution")
        return self._val[edge.src]

    def _node_value(self, node_id: int) -> int:
        node = self._cdfg.node(node_id)
        if node.kind in (OpKind.SELECT, OpKind.ENDLOOP):
            return self._venv[node.carrier]
        if node.kind is OpKind.CONST:
            return node.value
        if node_id not in self._val:
            raise InterpreterError(f"condition {node.name} read before execution")
        return self._val[node_id]

    @staticmethod
    def _compute(node: Node, ins: tuple[int, ...]) -> int:
        kind = node.kind
        if kind is OpKind.ADD:
            return ins[0] + ins[1]
        if kind is OpKind.SUB:
            return ins[0] - ins[1]
        if kind is OpKind.MUL:
            return ins[0] * ins[1]
        if kind is OpKind.SHL:
            return ins[0] << (ins[1] & 63)
        if kind is OpKind.SHR:
            return ins[0] >> (ins[1] & 63)
        if kind is OpKind.LT:
            return int(ins[0] < ins[1])
        if kind is OpKind.GT:
            return int(ins[0] > ins[1])
        if kind is OpKind.LE:
            return int(ins[0] <= ins[1])
        if kind is OpKind.GE:
            return int(ins[0] >= ins[1])
        if kind is OpKind.EQ:
            return int(ins[0] == ins[1])
        if kind is OpKind.NE:
            return int(ins[0] != ins[1])
        if kind is OpKind.LAND:
            return int(bool(ins[0]) and bool(ins[1]))
        if kind is OpKind.LOR:
            return int(bool(ins[0]) or bool(ins[1]))
        if kind is OpKind.LNOT:
            return int(not ins[0])
        if kind is OpKind.BAND:
            return ins[0] & ins[1]
        if kind is OpKind.BOR:
            return ins[0] | ins[1]
        if kind is OpKind.BXOR:
            return ins[0] ^ ins[1]
        if kind is OpKind.COPY:
            return ins[0]
        raise InterpreterError(f"cannot execute node kind {kind}")


def simulate(cdfg: CDFG, input_passes: list[dict[str, int]]) -> TraceStore:
    """Profile a CDFG behaviorally over a stimulus.

    ``input_passes`` is one dict per pass mapping input-port names to
    integer values.  Returns a :class:`~repro.sim.traces.TraceStore`
    holding per-operation value traces, occurrence counts and the
    reference outputs — the inputs power estimation and conformance
    checking are built on.
    """
    return Interpreter(cdfg).run(input_passes)
