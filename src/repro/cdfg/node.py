"""CDFG node model: operation kinds, control ports, polarities."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from functools import cached_property


class OpKind(enum.Enum):
    """Every node kind a CDFG can contain.

    The *operation* kinds map to functional units from the module library;
    the *structural* kinds (SELECT, ENDLOOP, COPY) realize control structure
    and register transfers; the *boundary* kinds (INPUT, CONST, OUTPUT)
    anchor the graph to the process interface.
    """

    # arithmetic
    ADD = "+"
    SUB = "-"
    MUL = "*"
    SHL = "<<"
    SHR = ">>"
    # comparison
    LT = "<"
    GT = ">"
    LE = "<="
    GE = ">="
    EQ = "=="
    NE = "!="
    # logical (1-bit) and bitwise
    LAND = "&&"
    LOR = "||"
    LNOT = "!"
    BAND = "&"
    BOR = "|"
    BXOR = "^"
    # structural
    SELECT = "Sel"
    ENDLOOP = "Elp"
    COPY = "mov"
    # memory
    LOAD = "ld"
    STORE = "st"
    # boundary
    INPUT = "in"
    CONST = "const"
    OUTPUT = "out"


ARITH_KINDS = frozenset({OpKind.ADD, OpKind.SUB, OpKind.MUL, OpKind.SHL, OpKind.SHR})
COMPARE_KINDS = frozenset({OpKind.LT, OpKind.GT, OpKind.LE, OpKind.GE, OpKind.EQ, OpKind.NE})
LOGIC_KINDS = frozenset({OpKind.LAND, OpKind.LOR, OpKind.LNOT, OpKind.BAND, OpKind.BOR, OpKind.BXOR})

#: Kinds that execute on a functional unit from the module library.
FU_KINDS = ARITH_KINDS | COMPARE_KINDS | LOGIC_KINDS

#: Kinds that occupy a state slot but use no functional unit.
TRANSFER_KINDS = frozenset({OpKind.COPY})

#: Kinds that access a process-scoped memory through a RAM port.  They
#: schedule like transfers (no functional unit) but carry a real access
#: delay from the bound RAM and compete for its ports.
MEMORY_KINDS = frozenset({OpKind.LOAD, OpKind.STORE})

#: Kinds that are purely structural (never scheduled).
STRUCTURAL_KINDS = frozenset({OpKind.SELECT, OpKind.ENDLOOP, OpKind.INPUT, OpKind.CONST, OpKind.OUTPUT})

#: Kinds with two data input ports.
BINARY_KINDS = FU_KINDS - {OpKind.LNOT}

#: Commutative operations (used when merging mux sources across shared FUs).
COMMUTATIVE_KINDS = frozenset({
    OpKind.ADD, OpKind.MUL, OpKind.EQ, OpKind.NE,
    OpKind.LAND, OpKind.LOR, OpKind.BAND, OpKind.BOR, OpKind.BXOR,
})


class Polarity(enum.Enum):
    """Control-port polarity (Figure 2 of the paper)."""

    HIGH = "+"   # node executes when the control value is true
    LOW = "-"    # node executes when the control value is false
    NONE = "0"   # control-independent


@dataclass(frozen=True)
class ControlPort:
    """The single control port of a node.

    ``source`` is the id of the condition-producing node whose value gates
    execution, or ``None`` for control-independent nodes.
    """

    source: int | None = None
    polarity: Polarity = Polarity.NONE

    def __post_init__(self) -> None:
        has_source = self.source is not None
        has_polarity = self.polarity is not Polarity.NONE
        if has_source != has_polarity:
            raise ValueError("control port needs both a source and a polarity, or neither")


@dataclass
class Node:
    """One CDFG node.

    Attributes:
        id: unique integer id within the graph.
        kind: the operation / structural kind.
        name: display name in the paper's style (``+1``, ``Sel2`` ...).
        width: output bit width (1 for comparisons and logicals).
        signed: whether the output is interpreted as two's complement.
        control: the node's single control port.
        guard: full conjunction of branch conditions controlling execution,
            as a frozenset of ``(condition_node_id, required_bool)`` pairs.
            The control port shows only the *innermost* condition (the paper
            draws exactly one dashed edge per node); the guard keeps the
            whole conjunction for mutual-exclusion analysis.
        region: id of the region the node belongs to.
        carrier: the variable name whose value this node produces (register
            allocation unit), or ``None`` for pure temporaries.
        value: constant value (CONST nodes only).
        const_shift: True for shift nodes whose amount is a constant; such
            shifts are wiring and need no functional unit.
        mem: the array name a LOAD/STORE accesses (memory kinds only).
        line: source line for diagnostics.
    """

    id: int
    kind: OpKind
    name: str
    width: int
    signed: bool = True
    control: ControlPort = field(default_factory=ControlPort)
    guard: frozenset[tuple[int, bool]] = frozenset()
    region: int = 0
    carrier: str | None = None
    value: int | None = None
    const_shift: bool = False
    mem: str | None = None
    line: int = 0

    @cached_property
    def needs_fu(self) -> bool:
        """True if this node must be bound to a functional unit.

        Cached: ``kind``/``const_shift`` are fixed at construction, and
        this sits on the inner loops of binding and power estimation.
        """
        if self.kind in FU_KINDS:
            return not (self.kind in (OpKind.SHL, OpKind.SHR) and self.const_shift)
        return False

    @cached_property
    def is_schedulable(self) -> bool:
        """True if the node occupies a slot in some STG state (cached)."""
        if self.kind in STRUCTURAL_KINDS:
            return False
        return True

    @property
    def num_data_inputs(self) -> int:
        if self.kind in BINARY_KINDS:
            return 2
        if self.kind in (OpKind.LNOT, OpKind.COPY, OpKind.OUTPUT):
            return 1
        if self.kind is OpKind.LOAD:
            return 1   # port 0: address
        if self.kind is OpKind.STORE:
            return 2   # port 0: address, port 1: data
        if self.kind is OpKind.SELECT:
            return 2
        if self.kind in (OpKind.INPUT, OpKind.CONST):
            return 0
        if self.kind is OpKind.ENDLOOP:
            return -1  # variable arity
        raise ValueError(f"unknown arity for {self.kind}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        pol = self.control.polarity.value if self.control.source is not None else ""
        return f"<Node {self.id} {self.name}{'(' + pol + ')' if pol else ''} w{self.width}>"
