"""The CDFG container: nodes, edges, region tree, and validation."""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx

from repro.errors import CDFGError
from repro.cdfg.edge import CONTROL_PORT, Edge
from repro.cdfg.node import Node, OpKind, Polarity
from repro.cdfg.regions import (
    BlockRegion,
    CarriedVar,
    IfRegion,
    LoopRegion,
    OpsItem,
    Region,
    RegionKind,
    SubRegionItem,
)


@dataclass
class CDFG:
    """A control-data flow graph with its region tree.

    Construction goes through :meth:`add_node` / :meth:`add_edge` /
    :meth:`add_region` (normally driven by :mod:`repro.cdfg.builder`).
    After construction, :meth:`validate` checks the structural invariants.
    """

    name: str = "cdfg"
    nodes: dict[int, Node] = field(default_factory=dict)
    edges: list[Edge] = field(default_factory=list)
    regions: dict[int, Region] = field(default_factory=dict)
    root_region: int = 0
    input_nodes: list[int] = field(default_factory=list)
    output_nodes: list[int] = field(default_factory=list)
    var_types: dict[str, tuple[int, bool]] = field(default_factory=dict)
    #: name -> (element width, element signed, size) for every declared
    #: array; arrays bind to RAM instances, never to registers.
    array_types: dict[str, tuple[int, bool, int]] = field(default_factory=dict)

    _in_edges: dict[int, dict[int, Edge]] = field(default_factory=dict, repr=False)
    _out_edges: dict[int, list[Edge]] = field(default_factory=dict, repr=False)
    #: Memoized :meth:`in_edges` lists (data ports, sorted), per node.
    _data_in: dict[int, list[Edge]] = field(default_factory=dict, repr=False)
    _next_node_id: int = 0
    _next_region_id: int = 0

    # -- construction --------------------------------------------------------

    def new_node_id(self) -> int:
        node_id = self._next_node_id
        self._next_node_id += 1
        return node_id

    def new_region_id(self) -> int:
        region_id = self._next_region_id
        self._next_region_id += 1
        return region_id

    def add_node(self, node: Node) -> Node:
        if node.id in self.nodes:
            raise CDFGError(f"duplicate node id {node.id}")
        self.nodes[node.id] = node
        self._in_edges.setdefault(node.id, {})
        self._out_edges.setdefault(node.id, [])
        if node.kind is OpKind.INPUT:
            self.input_nodes.append(node.id)
        elif node.kind is OpKind.OUTPUT:
            self.output_nodes.append(node.id)
        return node

    def add_edge(self, edge: Edge) -> Edge:
        if edge.src not in self.nodes or edge.dst not in self.nodes:
            raise CDFGError(f"edge {edge.src}->{edge.dst} references unknown node")
        port_map = self._in_edges.setdefault(edge.dst, {})
        if edge.dst_port in port_map:
            raise CDFGError(
                f"node {self.nodes[edge.dst].name} already has an edge on port {edge.dst_port}")
        port_map[edge.dst_port] = edge
        self._out_edges.setdefault(edge.src, []).append(edge)
        self.edges.append(edge)
        self._data_in.pop(edge.dst, None)
        return edge

    def add_region(self, region: Region) -> Region:
        if region.id in self.regions:
            raise CDFGError(f"duplicate region id {region.id}")
        self.regions[region.id] = region
        return region

    def redirect_edge_source(self, edge: Edge, new_src: int) -> None:
        """Re-point an edge at a different producer (used for loop patching)."""
        if new_src not in self.nodes:
            raise CDFGError(f"unknown node {new_src}")
        self._out_edges[edge.src].remove(edge)
        edge.src = new_src
        self._out_edges.setdefault(new_src, []).append(edge)

    # -- accessors -----------------------------------------------------------

    def node(self, node_id: int) -> Node:
        try:
            return self.nodes[node_id]
        except KeyError:
            raise CDFGError(f"unknown node id {node_id}") from None

    def region(self, region_id: int) -> Region:
        try:
            return self.regions[region_id]
        except KeyError:
            raise CDFGError(f"unknown region id {region_id}") from None

    def in_edge(self, node_id: int, port: int) -> Edge:
        try:
            return self._in_edges[node_id][port]
        except KeyError:
            raise CDFGError(
                f"node {self.nodes[node_id].name} has no edge on port {port}") from None

    def in_edges(self, node_id: int) -> list[Edge]:
        """Data input edges of a node, sorted by port (control port excluded).

        Memoized per node — this accessor sits on the inner loops of
        scheduling, replay, architecture wiring and bit-level simulation,
        and the port map only changes through :meth:`add_edge` (which
        invalidates the entry).  Callers must not mutate the list.
        """
        cached = self._data_in.get(node_id)
        if cached is None:
            ports = self._in_edges.get(node_id, {})
            cached = [ports[p] for p in sorted(ports) if p != CONTROL_PORT]
            self._data_in[node_id] = cached
        return cached

    def control_edge(self, node_id: int) -> Edge | None:
        return self._in_edges.get(node_id, {}).get(CONTROL_PORT)

    def out_edges(self, node_id: int) -> list[Edge]:
        return list(self._out_edges.get(node_id, []))

    def op_nodes(self) -> list[Node]:
        """Nodes that occupy STG state slots (FU ops, transfers)."""
        return [n for n in self.nodes.values() if n.is_schedulable]

    def fu_nodes(self) -> list[Node]:
        """Nodes that need a functional unit."""
        return [n for n in self.nodes.values() if n.needs_fu]

    def mem_nodes(self) -> list[Node]:
        """LOAD/STORE nodes in program (node-id) order."""
        return sorted((n for n in self.nodes.values()
                       if n.kind in (OpKind.LOAD, OpKind.STORE)),
                      key=lambda n: n.id)

    def condition_consumers(self, cond_node: int) -> list[Node]:
        return [self.nodes[e.dst] for e in self._out_edges.get(cond_node, []) if e.is_control]

    def block(self, region_id: int) -> BlockRegion:
        region = self.region(region_id)
        if not isinstance(region, BlockRegion):
            raise CDFGError(f"region {region_id} is not a block")
        return region

    def enclosing_loops(self, node_id: int) -> list[LoopRegion]:
        """Innermost-first list of loop regions containing a node."""
        loops: list[LoopRegion] = []
        region = self.region(self.node(node_id).region)
        while True:
            if isinstance(region, LoopRegion):
                loops.append(region)
            if region.parent is None:
                return loops
            region = self.region(region.parent)

    def to_networkx(self, include_carried: bool = True) -> nx.MultiDiGraph:
        """Flat-graph view for graph algorithms and export."""
        graph = nx.MultiDiGraph(name=self.name)
        for node in self.nodes.values():
            graph.add_node(node.id, kind=node.kind.value, name=node.name, width=node.width)
        for edge in self.edges:
            if edge.carried and not include_carried:
                continue
            graph.add_edge(edge.src, edge.dst, port=edge.dst_port, carried=edge.carried)
        return graph

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants; raises :class:`CDFGError`.

        Invariants checked:
          * every node's data ports are fully connected (per its arity);
          * a node with a control-port polarity has exactly one control edge
            and vice versa;
          * the acyclic skeleton (carried edges removed) has no cycles;
          * every node belongs to a known region, and every region node set
            is consistent with node.region back-references;
          * carried edges sit inside the loop they reference;
          * Sel nodes have both data inputs and a control edge;
          * widths on edges match the producing node.
        """
        for node in self.nodes.values():
            self._validate_node(node)
        skeleton = nx.DiGraph()
        skeleton.add_nodes_from(self.nodes)
        for edge in self.edges:
            if not edge.carried:
                skeleton.add_edge(edge.src, edge.dst)
        try:
            cycle = nx.find_cycle(skeleton)
        except nx.NetworkXNoCycle:
            cycle = None
        if cycle:
            names = " -> ".join(self.nodes[a].name for a, b in cycle)
            raise CDFGError(f"acyclic skeleton contains a cycle: {names}")
        self._validate_regions()
        for edge in self.edges:
            src = self.nodes[edge.src]
            if edge.width != src.width:
                raise CDFGError(
                    f"edge {src.name}->{self.nodes[edge.dst].name} width {edge.width} "
                    f"!= producer width {src.width}")
            if edge.carried:
                if edge.loop is None or edge.loop not in self.regions:
                    raise CDFGError(f"carried edge {src.name}->{self.nodes[edge.dst].name} "
                                    f"references unknown loop {edge.loop}")

    def _validate_node(self, node: Node) -> None:
        arity = node.num_data_inputs
        data_edges = self.in_edges(node.id)
        if arity >= 0 and len(data_edges) != arity:
            raise CDFGError(
                f"node {node.name} ({node.kind.value}) expects {arity} data inputs, "
                f"has {len(data_edges)}")
        has_ctrl_edge = self.control_edge(node.id) is not None
        wants_ctrl = node.control.source is not None
        if has_ctrl_edge != wants_ctrl:
            raise CDFGError(
                f"node {node.name}: control edge present={has_ctrl_edge} but "
                f"polarity={node.control.polarity.value}")
        if wants_ctrl:
            ctrl = self.control_edge(node.id)
            if ctrl is not None and ctrl.src != node.control.source:
                raise CDFGError(
                    f"node {node.name}: control edge from {ctrl.src} but port source "
                    f"is {node.control.source}")
        if node.kind is OpKind.CONST and node.value is None:
            raise CDFGError(f"const node {node.name} has no value")
        if node.kind in (OpKind.LOAD, OpKind.STORE):
            if node.mem is None or node.mem not in self.array_types:
                raise CDFGError(
                    f"memory node {node.name} references unknown array {node.mem!r}")
        elif node.mem is not None:
            raise CDFGError(f"non-memory node {node.name} has mem={node.mem!r}")
        if node.region not in self.regions:
            raise CDFGError(f"node {node.name} in unknown region {node.region}")

    def _validate_regions(self) -> None:
        seen_nodes: set[int] = set()
        for region in self.regions.values():
            if region.parent is not None and region.parent not in self.regions:
                raise CDFGError(f"region {region.id} has unknown parent {region.parent}")
            if isinstance(region, BlockRegion):
                for item in region.items:
                    if isinstance(item, OpsItem):
                        for node_id in item.nodes:
                            if node_id not in self.nodes:
                                raise CDFGError(
                                    f"region {region.id} lists unknown node {node_id}")
                            if node_id in seen_nodes:
                                raise CDFGError(
                                    f"node {self.nodes[node_id].name} listed in two regions")
                            seen_nodes.add(node_id)
                            if self.nodes[node_id].region != region.id:
                                raise CDFGError(
                                    f"node {self.nodes[node_id].name} back-reference "
                                    f"disagrees with region {region.id}")
                    elif isinstance(item, SubRegionItem):
                        if item.region not in self.regions:
                            raise CDFGError(
                                f"region {region.id} nests unknown region {item.region}")
            elif isinstance(region, IfRegion):
                for attr in ("then_block", "else_block"):
                    if getattr(region, attr) not in self.regions:
                        raise CDFGError(f"if-region {region.id} missing {attr}")
                if region.cond_node not in self.nodes:
                    raise CDFGError(f"if-region {region.id} has unknown condition node")
            elif isinstance(region, LoopRegion):
                for attr in ("test_block", "body_block"):
                    if getattr(region, attr) not in self.regions:
                        raise CDFGError(f"loop-region {region.id} missing {attr}")
                if region.cond_node not in self.nodes:
                    raise CDFGError(f"loop-region {region.id} has unknown condition node")
                for cv in region.carried:
                    if cv.body_producer not in self.nodes:
                        raise CDFGError(
                            f"loop-region {region.id} carried var {cv.var!r} has unknown "
                            f"producer {cv.body_producer}")

    # -- statistics ------------------------------------------------------------

    def summary(self) -> dict[str, int]:
        """Node/edge/region counts by category (for reports and tests)."""
        kinds: dict[str, int] = {}
        for node in self.nodes.values():
            kinds[node.kind.value] = kinds.get(node.kind.value, 0) + 1
        loops = sum(1 for r in self.regions.values() if isinstance(r, LoopRegion))
        conds = sum(1 for r in self.regions.values() if isinstance(r, IfRegion))
        return {
            "nodes": len(self.nodes),
            "edges": len(self.edges),
            "fu_ops": len(self.fu_nodes()),
            "loops": loops,
            "conditionals": conds,
            **{f"kind:{k}": v for k, v in sorted(kinds.items())},
        }
