"""CDFG edge model.

Per the paper (Section 2.1), edges carry only data values; whether an edge
feeds a data port or a control port is a property of its destination.  Loop-
carried edges are marked ``carried`` and remember the value the carrier has
on the first iteration (a constant, or the node that produced it before the
loop) — the ``i(0)`` / ``h(8)`` annotations of Figure 1.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Destination-port value denoting a node's control port.
CONTROL_PORT = -1


@dataclass
class Edge:
    """A directed data edge ``src -> dst`` entering ``dst_port``.

    Attributes:
        src: producing node id.
        dst: consuming node id.
        dst_port: 0-based data port index, or :data:`CONTROL_PORT`.
        width: bit width of the value carried.
        carried: True for loop-carried (back) edges; the consumer reads the
            *previous* iteration's value, so the edge is not an
            intra-iteration precedence constraint.
        init_const: first-iteration value for carried edges, when constant.
        init_src: node that produced the first-iteration value, when it is
            computed before the loop (mutually exclusive with init_const).
        loop: id of the loop region a carried edge belongs to (else None).
    """

    src: int
    dst: int
    dst_port: int
    width: int
    carried: bool = False
    init_const: int | None = None
    init_src: int | None = None
    loop: int | None = None

    def __post_init__(self) -> None:
        if self.carried:
            if (self.init_const is None) == (self.init_src is None):
                raise ValueError(
                    f"carried edge {self.src}->{self.dst} needs exactly one of "
                    f"init_const / init_src")
        elif self.init_const is not None or self.init_src is not None:
            raise ValueError(f"edge {self.src}->{self.dst}: init values only on carried edges")

    @property
    def is_control(self) -> bool:
        return self.dst_port == CONTROL_PORT

    def key(self) -> tuple[int, int, int]:
        return (self.src, self.dst, self.dst_port)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        tag = " ctrl" if self.is_control else f" p{self.dst_port}"
        extra = " carried" if self.carried else ""
        return f"<Edge {self.src}->{self.dst}{tag}{extra}>"
