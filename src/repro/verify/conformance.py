"""Differential cosimulation conformance harness.

Four (optionally five) execution models evaluate every stimulus pass:

1. **interpreter** — the behavioral CDFG interpreter, the reference for
   primary-output values;
2. **replay** — STG replay under the architecture's *normalized* state
   durations, the reference for per-pass cycle counts;
3. **gatesim** — the bit-level architecture simulator (values + cycles);
4. **netsim** — the emitted Verilog's netlist executed by
   :mod:`repro.hdl.netsim` (values + cycles);
5. **iverilog** — when installed, the printed Verilog text itself,
   compiled and run against a generated self-checking testbench.

Any disagreement is a :class:`Divergence`; the harness then *minimizes*
the first divergent stimulus by greedily shrinking each input toward zero
while the divergence persists, so a scheduling or binding bug reports as
the smallest reproducing input rather than a random 100-pass blob.

Run it from the command line::

    python -m repro.verify.conformance --all          # every registry benchmark
    python -m repro.verify.conformance -b gcd -p 200  # one benchmark, 200 passes

or programmatically through :meth:`repro.SynthesisEngine.verify`.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ConformanceError, ReproError
from repro.cdfg.graph import CDFG
from repro.cdfg.interpreter import simulate
from repro.gatesim import simulate_architecture
from repro.hdl import (
    emit_testbench,
    emit_verilog,
    iverilog_available,
    lower_architecture,
    run_iverilog,
    simulate_netlist,
)
from repro.rtl.architecture import Architecture
from repro.sched.replay import replay
from repro.sim.traces import TraceStore
from repro.utils.bitwidth import mask_for_width, wrap_to_width

#: The always-available oracle chain, in comparison order.
BACKENDS = ("interpreter", "replay", "gatesim", "netsim")

#: Trial budget for stimulus minimization.
MAX_MINIMIZE_TRIALS = 256

#: Cap on recorded divergences per run (the first one is what matters).
MAX_DIVERGENCES = 16


@dataclass
class Divergence:
    """One disagreement between two execution models."""

    pass_idx: int
    kind: str               # "output" | "cycles" | "error"
    backend: str            # the model that disagrees with the reference
    detail: str
    stimulus: dict[str, int] = field(default_factory=dict)
    minimized: dict[str, int] | None = None

    def __str__(self) -> str:
        text = (f"pass {self.pass_idx}: {self.backend} {self.kind} "
                f"divergence — {self.detail}")
        if self.minimized is not None:
            text += f" [minimized stimulus: {self.minimized}]"
        return text


@dataclass
class ConformanceReport:
    """Outcome of one differential conformance run."""

    name: str
    n_passes: int
    backends: list[str]
    divergences: list[Divergence]
    total_cycles: int
    iverilog_ran: bool
    wall_s: float

    @property
    def ok(self) -> bool:
        return not self.divergences

    def summary(self) -> dict:
        return {
            "name": self.name,
            "ok": self.ok,
            "n_passes": self.n_passes,
            "backends": list(self.backends),
            "iverilog": self.iverilog_ran,
            "total_cycles": self.total_cycles,
            "divergences": len(self.divergences),
            "wall_s": round(self.wall_s, 3),
        }

    def raise_if_failed(self) -> None:
        if not self.ok:
            first = self.divergences[0]
            raise ConformanceError(
                f"{self.name}: {len(self.divergences)} divergence(s); first: {first}")


def _compare_run(cdfg: CDFG, arch: Architecture, netlist, stimulus,
                 store: TraceStore | None = None) -> tuple[list[Divergence], int]:
    """Run the always-available chain once; returns (divergences, cycles)."""
    divergences: list[Divergence] = []
    if store is None:
        store = simulate(cdfg, stimulus)

    rep = replay(arch.stg, cdfg, store)
    ref_cycles = [int(c) for c in rep.cycles_under(arch.duration_map())]
    ref_outputs = {k: [int(x) for x in v] for k, v in store.outputs.items()}

    def check_outputs(backend: str, outputs: dict) -> None:
        for out_name, expected in ref_outputs.items():
            got = [int(x) for x in outputs[out_name]]
            for idx, (e, g) in enumerate(zip(expected, got)):
                if e != g and len(divergences) < MAX_DIVERGENCES:
                    divergences.append(Divergence(
                        idx, "output", backend,
                        f"{out_name} = {g}, interpreter says {e}",
                        stimulus=dict(stimulus[idx])))

    def check_cycles(backend: str, cycles, states=None, ref_states=None) -> None:
        for idx, (e, g) in enumerate(zip(ref_cycles, [int(c) for c in cycles])):
            if e != g and len(divergences) < MAX_DIVERGENCES:
                detail = f"{g} cycles, replay says {e}"
                if states is not None and ref_states is not None:
                    detail += (f" (states {states[idx][:12]} vs "
                               f"replay {list(ref_states[idx][:12])})")
                divergences.append(Divergence(
                    idx, "cycles", backend, detail, stimulus=dict(stimulus[idx])))

    def check_mems(backend: str, got_mems: dict) -> None:
        # Memory traffic conformance: after the whole stimulus, every
        # backend must hold the interpreter's exact array image (arrays
        # persist across passes, so a single misrouted store surfaces
        # here even when no output ever reads the clobbered word).
        for array, expected in sorted(store.mem_final.items()):
            got = got_mems.get(array)
            if got is None or got == expected:
                continue
            if len(divergences) >= MAX_DIVERGENCES:
                return
            bad = next(i for i, (e, g) in enumerate(zip(expected, got))
                       if e != g)
            divergences.append(Divergence(
                len(stimulus) - 1, "memory", backend,
                f"array {array!r}[{bad}] = {got[bad]}, interpreter says "
                f"{expected[bad]}",
                stimulus=dict(stimulus[-1]) if stimulus else {}))

    try:
        gs = simulate_architecture(arch, stimulus, expected_outputs=store.outputs,
                                   record_states=True)
        check_outputs("gatesim", gs.outputs)
        check_cycles("gatesim", gs.cycles, gs.state_seq, rep.state_seq)
        check_mems("gatesim", gs.mems or {})
    except ReproError as exc:
        divergences.append(Divergence(0, "error", "gatesim", str(exc)))

    try:
        # Replay already knows how long each pass should take; a netlist
        # that runs 4x past that has diverged into a non-terminating path.
        cap = max(ref_cycles, default=1) * 4 + 64
        ns = simulate_netlist(netlist, stimulus, max_cycles_per_pass=cap)
        check_outputs("netsim", ns.outputs)
        durations = arch.duration_map()
        ns_visits = [visits_from_cycle_trace(seq, durations)
                     for seq in ns.state_seq]
        check_cycles("netsim", ns.cycles, ns_visits, rep.state_seq)
        if store.mem_final:
            # Netsim stores raw word patterns; re-sign each with its
            # array's element type before comparing.
            signed_mems = {}
            for array, (width, signed, _size) in cdfg.array_types.items():
                raw = ns.mems.get(f"mem_{array}")
                if raw is None:
                    continue
                if signed:
                    signed_mems[array] = [wrap_to_width(v, width) for v in raw]
                else:
                    mask = mask_for_width(width)
                    signed_mems[array] = [v & mask for v in raw]
            check_mems("netsim", signed_mems)
    except ReproError as exc:
        divergences.append(Divergence(0, "error", "netsim", str(exc)))

    return divergences, int(sum(ref_cycles))


def visits_from_cycle_trace(seq: list[int],
                            durations: dict[int, int]) -> list[int]:
    """Recover per-visit state ids from a per-cycle FSM trace.

    A state with duration ``d`` occupies ``d`` consecutive trace entries
    per visit; a 1-cycle state self-looping ``k`` times occupies ``k``
    entries for ``k`` distinct visits — so runs must be split by the
    state's duration, not merely de-duplicated.  Ragged runs (a diverged
    netlist stuck mid-state) round up to whole visits.
    """
    visits: list[int] = []
    idx = 0
    while idx < len(seq):
        state = seq[idx]
        run = 1
        while idx + run < len(seq) and seq[idx + run] == state:
            run += 1
        duration = max(1, durations.get(state, 1))
        visits.extend([state] * ((run + duration - 1) // duration))
        idx += run
    return visits


def minimize_stimulus(cdfg: CDFG, arch: Architecture, inputs: dict[str, int],
                      netlist=None) -> dict[str, int]:
    """Greedily shrink a divergent input assignment toward zero.

    Each variable is halved toward zero (then tried at 0 and ±1) while the
    single-pass conformance chain still diverges; trials whose *behavior*
    cannot even be interpreted (e.g. a non-terminating loop) are rejected,
    so minimization cannot trade the original bug for a crash.
    """
    if netlist is None:
        netlist = lower_architecture(arch)
    trials = 0

    def diverges(candidate: dict[str, int]) -> bool:
        nonlocal trials
        if trials >= MAX_MINIMIZE_TRIALS:
            return False
        trials += 1
        try:
            store = simulate(cdfg, [candidate])
        except ReproError:
            return False  # behaviorally invalid candidate
        try:
            found, _cycles = _compare_run(cdfg, arch, netlist, [candidate], store)
        except ReproError:
            return True
        return bool(found)

    current = dict(inputs)
    if not diverges(current):
        return current  # not reproducible standalone; report as-is
    improved = True
    while improved and trials < MAX_MINIMIZE_TRIALS:
        improved = False
        for var in sorted(current):
            value = current[var]
            while value != 0:
                smaller = value // 2 if value > 0 else -((-value) // 2)
                trial = {**current, var: smaller}
                if smaller != value and diverges(trial):
                    current = trial
                    value = smaller
                    improved = True
                else:
                    break
            for candidate in (0, 1, -1):
                if current[var] != candidate and abs(candidate) < abs(current[var]):
                    trial = {**current, var: candidate}
                    if diverges(trial):
                        current = trial
                        improved = True
                        break
    return current


def verify_architecture(cdfg: CDFG, arch: Architecture,
                        stimulus: list[dict[str, int]], *,
                        store: TraceStore | None = None,
                        name: str = "impact",
                        use_iverilog: str = "auto",
                        minimize: bool = True) -> ConformanceReport:
    """Differentially cosimulate one architecture over one stimulus.

    ``use_iverilog``: ``"auto"`` runs the external simulator when
    installed, ``"off"`` never, ``"require"`` fails when missing.
    """
    if use_iverilog not in ("auto", "off", "require"):
        raise ConformanceError(f"unknown iverilog mode {use_iverilog!r}")
    t0 = time.perf_counter()
    netlist = lower_architecture(arch, name=name)
    divergences, total_cycles = _compare_run(cdfg, arch, netlist, stimulus, store)

    backends = list(BACKENDS)
    iverilog_ran = False
    want_iverilog = (use_iverilog == "require"
                     or (use_iverilog == "auto" and iverilog_available()))
    if use_iverilog == "require" and not iverilog_available():
        raise ConformanceError("iverilog required but not found on PATH")
    if want_iverilog:
        if store is None:
            store = simulate(cdfg, stimulus)
        rep = replay(arch.stg, cdfg, store)
        expected = {k: [int(x) for x in v] for k, v in store.outputs.items()}
        cycles = [int(c) for c in rep.cycles_under(arch.duration_map())]
        tb = emit_testbench(netlist, stimulus, expected, cycles)
        result = run_iverilog(emit_verilog(netlist), tb, name=name)
        iverilog_ran = True
        backends.append("iverilog")
        if not result.passed:
            first_fail = next((line for line in result.log.splitlines()
                               if line.startswith("FAIL")), "see log")
            divergences.append(Divergence(
                -1, "output", "iverilog",
                f"{result.n_checks_failed} testbench checks failed: {first_fail}"))

    if minimize:
        # The first divergence is the actionable one; minimize just it.
        first = next((d for d in divergences if d.stimulus), None)
        if first is not None:
            first.minimized = minimize_stimulus(cdfg, arch, first.stimulus,
                                                netlist=netlist)

    return ConformanceReport(
        name=name,
        n_passes=len(stimulus),
        backends=backends,
        divergences=divergences,
        total_cycles=total_cycles,
        iverilog_ran=iverilog_ran,
        wall_s=time.perf_counter() - t0,
    )


def verify_benchmark(name: str, n_passes: int = 100, seed: int = 0, *,
                     use_iverilog: str = "auto",
                     minimize: bool = True,
                     store_dir=None) -> ConformanceReport:
    """Conformance-check one registry benchmark's initial design point.

    ``store_dir`` attaches the persistent artifact store (``None``
    consults ``$REPRO_STORE_DIR``): schedules and replay results are
    reused across runs, and the verdict plus the emitted netlist are
    filed under the design's content key.  The conformance chain itself
    always re-executes — a stored verdict is provenance, not a shortcut.
    """
    from repro.benchmarks import get_benchmark
    from repro.core.engine import SynthesisEngine
    from repro.sched.engine import ScheduleOptions
    from repro.store import attached_cache

    bench = get_benchmark(name)
    cdfg = bench.cdfg()
    stimulus = bench.stimulus(n_passes, seed=seed)
    engine = SynthesisEngine(cdfg, stimulus,
                             options=ScheduleOptions(clock_ns=bench.clock_ns),
                             cache=attached_cache(store_dir=store_dir))
    return engine.verify(use_iverilog=use_iverilog, minimize=minimize, name=name)


def _format_row(report: ConformanceReport) -> str:
    verdict = "ok" if report.ok else f"FAIL ({len(report.divergences)})"
    backends = "+".join(report.backends)
    return (f"{report.name:<10s} {report.n_passes:>5d} passes  "
            f"{report.total_cycles:>8d} cycles  {backends:<40s} "
            f"{report.wall_s:>7.2f}s  {verdict}")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.verify.conformance",
        description="Differential cosimulation over the benchmark registry.")
    parser.add_argument("--all", action="store_true",
                        help="verify every registry benchmark")
    parser.add_argument("-b", "--benchmark", action="append", default=[],
                        help="verify one benchmark (repeatable)")
    parser.add_argument("-p", "--passes", type=int, default=100,
                        help="random stimulus passes per benchmark (default 100)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--iverilog", choices=("auto", "off", "require"),
                        default="auto")
    parser.add_argument("--no-minimize", action="store_true",
                        help="skip divergent-stimulus minimization")
    parser.add_argument("--json", type=Path, default=None,
                        help="write a machine-readable summary to this path")
    args = parser.parse_args(argv)

    from repro.benchmarks import BENCHMARKS

    names = list(BENCHMARKS) if args.all or not args.benchmark else args.benchmark
    reports: list[ConformanceReport] = []
    for name in names:
        report = verify_benchmark(name, n_passes=args.passes, seed=args.seed,
                                  use_iverilog=args.iverilog,
                                  minimize=not args.no_minimize)
        reports.append(report)
        print(_format_row(report))
        for div in report.divergences:
            print(f"    {div}")

    all_ok = all(r.ok for r in reports)
    print(f"\nconformance: {sum(r.ok for r in reports)}/{len(reports)} benchmarks "
          f"agree across {'/'.join(BACKENDS)}"
          + (" + iverilog" if any(r.iverilog_ran for r in reports) else ""))
    if args.json is not None:
        payload = {
            "ok": all_ok,
            "passes": args.passes,
            "seed": args.seed,
            "benchmarks": [r.summary() for r in reports],
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                             encoding="utf-8")
    return 0 if all_ok else 1


if __name__ == "__main__":
    sys.exit(main())
