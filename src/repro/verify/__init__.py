"""Differential verification of synthesized architectures.

:mod:`repro.verify.conformance` drives identical stimulus through every
execution model this reproduction has — the behavioral CDFG interpreter,
duration-normalized STG replay, the bit-level gatesim, the emitted
Verilog's netlist simulator, and (opportunistically) iverilog on the
printed Verilog text — and asserts output-value and cycle-count
agreement, minimizing the first divergent stimulus automatically.
"""

__all__ = [
    "ConformanceReport",
    "Divergence",
    "minimize_stimulus",
    "verify_architecture",
    "verify_benchmark",
]


def __getattr__(name):
    # Lazy re-export: keeps `python -m repro.verify.conformance` free of
    # the runpy double-import warning while preserving
    # `from repro.verify import verify_benchmark`-style imports.
    if name in __all__:
        from repro.verify import conformance

        return getattr(conformance, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
