"""Two's-complement bit-width arithmetic.

The behavioral interpreter and the bit-level power simulator both evaluate
word-level values with explicit bit widths.  Values are stored as Python ints
(or numpy int64 arrays) in *signed* form; these helpers convert between the
signed view (used by arithmetic) and the unsigned bit-pattern view (used by
toggle counting).
"""

from __future__ import annotations

import numpy as np


def mask_for_width(width: int) -> int:
    """Return the all-ones mask for ``width`` bits (``width >= 1``)."""
    if width < 1:
        raise ValueError(f"bit width must be >= 1, got {width}")
    return (1 << width) - 1


def min_signed(width: int) -> int:
    """Smallest representable signed value for ``width`` bits."""
    return -(1 << (width - 1))


def max_signed(width: int) -> int:
    """Largest representable signed value for ``width`` bits."""
    return (1 << (width - 1)) - 1


def wrap_to_width(value: int, width: int) -> int:
    """Wrap an arbitrary int to signed two's complement of ``width`` bits."""
    mask = mask_for_width(width)
    value &= mask
    if value > max_signed(width):
        value -= 1 << width
    return value


def to_unsigned(value: int, width: int) -> int:
    """Bit pattern of a signed ``value`` in ``width`` bits, as a non-negative int."""
    return value & mask_for_width(width)


def width_for_range(lo: int, hi: int) -> int:
    """Smallest signed width able to hold every value in ``[lo, hi]``."""
    if lo > hi:
        raise ValueError(f"empty range [{lo}, {hi}]")
    width = 1
    while min_signed(width) > lo or max_signed(width) < hi:
        width += 1
    return width


def to_unsigned_array(values: np.ndarray, width: int) -> np.ndarray:
    """Vectorised :func:`to_unsigned` over an int64 array."""
    mask = np.int64(mask_for_width(width))
    return values.astype(np.int64) & mask
