"""Vectorised bit-toggle counting.

Switching activity — the number of bits that change between consecutive
vectors on a signal — is the basic quantity behind both the RT-level power
estimator (Section 2.3 of the paper) and the bit-level measurement proxy.
Everything here operates on numpy int64 arrays of *unsigned bit patterns*.
"""

from __future__ import annotations

import numpy as np

# Parallel-prefix popcount constants for 64-bit lanes.
_M1 = np.uint64(0x5555555555555555)
_M2 = np.uint64(0x3333333333333333)
_M4 = np.uint64(0x0F0F0F0F0F0F0F0F)
_H01 = np.uint64(0x0101010101010101)

#: numpy >= 2.0 exposes a native per-element popcount ufunc; the
#: parallel-prefix fallback keeps older installs working.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")


def popcount(values: np.ndarray) -> np.ndarray:
    """Per-element population count of an unsigned int64 array."""
    if _HAS_BITWISE_COUNT:
        return np.bitwise_count(values.astype(np.uint64)).astype(np.int64)
    v = values.astype(np.uint64)
    v = v - ((v >> np.uint64(1)) & _M1)
    v = (v & _M2) + ((v >> np.uint64(2)) & _M2)
    v = (v + (v >> np.uint64(4))) & _M4
    return ((v * _H01) >> np.uint64(56)).astype(np.int64)


def toggle_series(patterns: np.ndarray) -> np.ndarray:
    """Per-step toggle counts between consecutive bit patterns.

    ``patterns`` is a 1-D array of unsigned bit patterns; the result has
    ``len(patterns) - 1`` entries (empty input or a single vector toggles
    nothing).
    """
    if patterns.size < 2:
        return np.zeros(0, dtype=np.int64)
    unsigned = patterns.astype(np.uint64)  # one conversion, two views
    return popcount(np.bitwise_xor(unsigned[1:], unsigned[:-1]))


def toggle_count(patterns: np.ndarray) -> int:
    """Total number of bit toggles across a pattern sequence."""
    return int(toggle_series(patterns).sum())


def mean_toggle_activity(patterns: np.ndarray, width: int) -> float:
    """Mean fraction of bits toggling per step (0.0 when < 2 vectors)."""
    series = toggle_series(patterns)
    if series.size == 0:
        return 0.0
    return float(series.mean()) / float(width)
