"""Shared low-level helpers: bit-width arithmetic and toggle counting."""

from repro.utils.bitwidth import (
    mask_for_width,
    min_signed,
    max_signed,
    wrap_to_width,
    to_unsigned,
    width_for_range,
)
from repro.utils.hamming import (
    popcount,
    toggle_count,
    toggle_series,
    mean_toggle_activity,
)

__all__ = [
    "mask_for_width",
    "min_signed",
    "max_signed",
    "wrap_to_width",
    "to_unsigned",
    "width_for_range",
    "popcount",
    "toggle_count",
    "toggle_series",
    "mean_toggle_activity",
]
