"""The state transition graph (STG) and its analyses.

An STG state executes a set of scheduled operations in one clock cycle;
transitions are guarded by condition-node values (empty guard =
unconditional).  ENC — the expected number of cycles per pass, the paper's
performance metric [9] — is computed two ways:

* *analytically*: the STG plus profiled branch probabilities form an
  absorbing Markov chain; ENC is the expected absorption time (solved with
  scipy); exact when condition outcomes are independent across states;
* *empirically*: by replaying the STG against recorded condition traces
  (:mod:`repro.sched.replay`), which is exact for the profiled stimulus and
  is what drives synthesis.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ScheduleError


@dataclass
class ScheduledOp:
    """One operation instance inside a state, with its chaining window."""

    node: int
    fu: int | None
    start: float
    end: float


@dataclass
class State:
    """One STG state.

    ``duration`` is the number of clock cycles the state occupies — the
    paper's worked example has combinational paths longer than the clock
    period ("... > 15 ns and hence require two cycles"), so states whose
    critical path exceeds the clock are multi-cycled by the controller.
    """

    id: int
    ops: list[ScheduledOp] = field(default_factory=list)
    duration: int = 1

    def node_ids(self) -> list[int]:
        return [op.node for op in self.ops]

    def critical_delay(self) -> float:
        return max((op.end for op in self.ops), default=0.0)

    def slack_ratio(self, clock_ns: float) -> float:
        """window / critical path — the Vdd-scaling headroom of this state."""
        delay = self.critical_delay()
        if delay <= 0.0:
            return float("inf")
        return (self.duration * clock_ns) / delay


@dataclass(frozen=True)
class Transition:
    src: int
    dst: int
    conds: frozenset[tuple[int, bool]] = frozenset()

    def matches(self, values: dict[int, bool]) -> bool:
        return all(values.get(cond) == want for cond, want in self.conds)


class STG:
    """States + guarded transitions, with a start state and a done state."""

    def __init__(self) -> None:
        self.states: dict[int, State] = {}
        self.transitions: list[Transition] = []
        self._out: dict[int, list[Transition]] = {}
        self.start: int = -1
        self.done: int = -1
        self._next_id = 0

    # -- construction -----------------------------------------------------------

    def new_state(self) -> State:
        state = State(id=self._next_id)
        self._next_id += 1
        self.states[state.id] = state
        return state

    def add_transition(self, src: int, dst: int,
                       conds: frozenset[tuple[int, bool]] = frozenset()) -> Transition:
        if src not in self.states or dst not in self.states:
            raise ScheduleError(f"transition {src}->{dst} references unknown state")
        transition = Transition(src, dst, conds)
        self.transitions.append(transition)
        self._out.setdefault(src, []).append(transition)
        return transition

    def out_transitions(self, state_id: int) -> list[Transition]:
        return self._out.get(state_id, [])

    def ordered_transitions(self, state_id: int) -> list[Transition]:
        """Outgoing transitions in a deterministic priority order.

        Most-specific guards first (more condition terms), ties broken by
        the sorted condition terms and destination.  Because
        :meth:`validate` guarantees exactly one transition matches any
        condition assignment, evaluating these in order with a final
        else-branch realizes the STG exactly — this is the order the
        Verilog backend emits next-state logic in.
        """
        return sorted(self.out_transitions(state_id),
                      key=lambda t: (-len(t.conds), sorted(t.conds), t.dst))

    def condition_inputs(self) -> set[int]:
        """All condition nodes steering any transition (controller inputs)."""
        return {c for t in self.transitions for c, _ in t.conds}

    def __len__(self) -> int:
        return len(self.states)

    @property
    def n_states(self) -> int:
        """Number of real (non-done) states."""
        return len(self.states) - (1 if self.done in self.states else 0)

    def ops_in_state(self, state_id: int) -> list[ScheduledOp]:
        return self.states[state_id].ops

    def signature(self) -> tuple:
        """Content signature of the whole STG (hashable, memoized).

        Two STGs with equal signatures replay identically against the same
        trace store and wire identical architectures under the same
        binding; the replay and trace memo tables key on it.  Safe to
        memoize because an STG is never mutated once the scheduler returns
        it (per-design state durations live on the Architecture).
        """
        cached = getattr(self, "_signature", None)
        if cached is None:
            states = tuple(
                (sid, state.duration,
                 tuple((op.node, op.fu, op.start, op.end) for op in state.ops))
                for sid, state in sorted(self.states.items())
            )
            transitions = tuple(sorted(
                (t.src, t.dst, tuple(sorted(t.conds))) for t in self.transitions
            ))
            cached = (self.start, self.done, states, transitions)
            self._signature = cached
        return cached

    def replay_signature(self) -> tuple:
        """Signature of exactly what replay reads (hashable, memoized).

        Replay consumes state durations, each state's ops in chaining
        order (start, node), and the guarded transitions — never the unit
        assignment (``op.fu``) or the path ends — so schedules that differ
        only in those replay identically and share one result.
        """
        cached = getattr(self, "_replay_signature", None)
        if cached is None:
            states = tuple(
                (sid, state.duration,
                 tuple(sorted((op.start, op.node) for op in state.ops)))
                for sid, state in sorted(self.states.items())
            )
            transitions = tuple(sorted(
                (t.src, t.dst, tuple(sorted(t.conds))) for t in self.transitions
            ))
            cached = (self.start, self.done, states, transitions)
            self._replay_signature = cached
        return cached

    def states_of_node(self, node_id: int) -> list[int]:
        return [s.id for s in self.states.values() if node_id in s.node_ids()]

    # -- alignment ---------------------------------------------------------------

    def align_states(self, child: "STG") -> dict[int, int]:
        """Map this STG's state ids onto ``child``'s by transition structure.

        A breadth-first bisimulation walk from ``(start, start)`` and
        ``(done, done)``: at each matched pair, every outgoing transition
        of the parent state whose exact condition set also guards an
        outgoing transition of the child state propagates the match to the
        destination pair.  Unmatched transitions simply stop the walk
        along that edge, and a destination that was already mapped through
        an earlier path keeps its first image — the returned map is
        *partial*, says nothing about content equality, and is only as
        trustworthy as the per-state checks its consumers apply (the
        incremental path in :mod:`repro.sched.replay` re-verifies every
        transition of every state it reuses, so a conflicted or wrong
        mapping merely shrinks reuse, never corrupts it).
        """
        p2c = {self.start: child.start, self.done: child.done}
        queue = [self.start]
        while queue:
            p = queue.pop()
            c = p2c[p]
            by_conds = {t.conds: t for t in child.out_transitions(c)}
            for t in self.out_transitions(p):
                twin = by_conds.get(t.conds)
                if twin is None:
                    continue
                if t.dst not in p2c:
                    p2c[t.dst] = twin.dst
                    queue.append(t.dst)
        return p2c

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Check transition completeness/disjointness and reachability."""
        if self.start not in self.states or self.done not in self.states:
            raise ScheduleError("STG missing start or done state")
        for state_id in self.states:
            if state_id == self.done:
                continue
            outs = self.out_transitions(state_id)
            if not outs:
                raise ScheduleError(f"state {state_id} has no outgoing transition")
            cond_vars = sorted({c for t in outs for c, _ in t.conds})
            for values in itertools.product((False, True), repeat=len(cond_vars)):
                assignment = dict(zip(cond_vars, values))
                matching = [t for t in outs if t.matches(assignment)]
                if len(matching) != 1:
                    raise ScheduleError(
                        f"state {state_id}: {len(matching)} transitions match "
                        f"assignment {assignment} (need exactly 1)")
        reachable = self._reachable()
        unreachable = set(self.states) - reachable
        if unreachable:
            raise ScheduleError(f"unreachable states: {sorted(unreachable)}")

    def _reachable(self) -> set[int]:
        seen = {self.start}
        stack = [self.start]
        while stack:
            for transition in self.out_transitions(stack.pop()):
                if transition.dst not in seen:
                    seen.add(transition.dst)
                    stack.append(transition.dst)
        return seen

    # -- analyses -----------------------------------------------------------------

    def enc_analytic(self, branch_probs: dict[int, float]) -> float:
        """Expected cycles from start to done as an absorbing Markov chain.

        ``branch_probs`` maps condition node -> P(true).  Conditions absent
        from the map are treated as fair coins.  States' self-structure may
        be cyclic (loops); the expectation is the absorbing chain's
        fundamental-matrix row sum, solved as a linear system.
        """
        ids = [s for s in self.states if s != self.done]
        index = {s: i for i, s in enumerate(ids)}
        n = len(ids)
        q = np.zeros((n, n))
        durations = np.array([float(self.states[s].duration) for s in ids])
        for state_id in ids:
            for transition in self.out_transitions(state_id):
                prob = 1.0
                for cond, want in transition.conds:
                    p_true = branch_probs.get(cond, 0.5)
                    prob *= p_true if want else (1.0 - p_true)
                if transition.dst != self.done:
                    q[index[state_id], index[transition.dst]] += prob
        try:
            t = np.linalg.solve(np.eye(n) - q, durations)
        except np.linalg.LinAlgError as exc:
            raise ScheduleError(f"ENC system is singular (never-exiting loop?): {exc}")
        return float(t[index[self.start]])

    def min_cycles(self) -> int:
        """Shortest possible pass, in cycles (duration-weighted shortest path)."""
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.states)
        for transition in self.transitions:
            graph.add_edge(transition.src, transition.dst,
                           weight=self.states[transition.src].duration)
        try:
            return int(nx.shortest_path_length(graph, self.start, self.done,
                                               weight="weight"))
        except nx.NetworkXNoPath:
            raise ScheduleError("done state unreachable from start")

    def worst_state_delay(self) -> float:
        """Longest combinational path over all states (ns, at 5 V)."""
        return max((s.critical_delay() for s in self.states.values()), default=0.0)

    def summary(self) -> dict[str, float]:
        return {
            "states": self.n_states,
            "transitions": len(self.transitions),
            "ops": sum(len(s.ops) for s in self.states.values()),
            "worst_delay_ns": round(self.worst_state_delay(), 3),
        }
