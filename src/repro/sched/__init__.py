"""Scheduling: CDFG -> state transition graph (STG).

Three schedulers share one engine (:mod:`repro.sched.engine`) differing only
in feature flags:

* :func:`repro.sched.wavesched.wavesched` — the paper's scheduler [18]:
  branch-parallel packing, concurrent-loop fusion, and implicit loop
  unrolling (next-iteration loop-control ops hoisted into the body kernel);
* :func:`repro.sched.loop_directed.loop_directed_schedule` — a
  Bhattacharya-style baseline [9]: loop-control hoisting only;
* :func:`repro.sched.path_based.path_based_schedule` — a Camposano-style
  CFG baseline [17]: basic-block-at-a-time, no overlap.
"""

from repro.sched.stg import STG, State, Transition, ScheduledOp
from repro.sched.engine import ScheduleOptions, schedule
from repro.sched.wavesched import wavesched
from repro.sched.path_based import path_based_schedule
from repro.sched.loop_directed import loop_directed_schedule
from repro.sched.replay import replay, ReplayResult

__all__ = [
    "STG",
    "State",
    "Transition",
    "ScheduledOp",
    "ScheduleOptions",
    "schedule",
    "wavesched",
    "path_based_schedule",
    "loop_directed_schedule",
    "replay",
    "ReplayResult",
]
