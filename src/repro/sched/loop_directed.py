"""Loop-directed baseline scheduler (Bhattacharya [9] style).

Adds loop-directed optimization — the next iteration's exit test evaluates
inside the body states, removing the per-iteration test state — but keeps
conditionals sequential and loops unfused.  This models the strongest
pre-Wavesched CFI scheduler the paper compares against.
"""

from __future__ import annotations

from repro.cdfg.graph import CDFG
from repro.core.binding import Binding
from repro.sched.engine import ScheduleOptions, schedule
from repro.sched.stg import STG


def loop_directed_schedule(cdfg: CDFG, binding: Binding, clock_ns: float | None = None) -> STG:
    """Schedule with loop-control hoisting only."""
    kwargs = {} if clock_ns is None else {"clock_ns": clock_ns}
    options = ScheduleOptions(branch_parallel=False, fuse_loops=False,
                              hoist_loop_control=True, **kwargs)
    return schedule(cdfg, binding, options)
