"""STG replay against recorded behavioral traces.

Replay walks the STG once per stimulus pass, consuming each node's
occurrence stream in order and steering transitions with the recorded
condition values.  It produces:

* the exact cycle count of every pass (the empirical ENC numerator);
* a global timestamp (cycle, in-state start time) for every operation
  occurrence — the ordering information trace manipulation (Section 2.3)
  needs to merge per-unit traces without re-simulation.

Replay also *verifies* the schedule: with ``check=True`` (default) it
asserts that every occurrence stream is consumed exactly — i.e. the STG
executes every operation exactly as often as the behavior did, on every
profiled path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG
from repro.cdfg.node import OpKind
from repro.sched.stg import STG
from repro.sim.traces import TraceStore

#: Safety cap on cycles per pass during replay.
MAX_CYCLES_PER_PASS = 1_000_000


@dataclass
class ReplayResult:
    """Timing of every operation occurrence under one STG."""

    cycles: np.ndarray                       # per-pass cycle counts
    op_cycle: dict[int, np.ndarray]          # node -> global cycle per occurrence
    op_start: dict[int, np.ndarray]          # node -> in-state start (ns)
    op_state: dict[int, np.ndarray]          # node -> executing state id
    total_cycles: int
    state_visits: dict[int, int] = field(default_factory=dict)
    #: Per-pass sequence of visited state ids (excluding the done state).
    state_seq: list[np.ndarray] = field(default_factory=list)
    #: Lazy per-node {state id: occurrence count} memo (see
    #: :meth:`op_state_counts`); keyed here so every design point sharing
    #: this replay shares the counts.
    _state_count_memo: dict[int, dict[int, int]] = field(
        default_factory=dict, repr=False)

    def op_state_counts(self, node_id: int) -> dict[int, int]:
        """How often a node executed in each state, memoized.

        Replaces per-driver ``(op_state == state).sum()`` scans in the
        multiplexer statistics with one vectorized ``np.unique`` per
        node, shared across every port and every design point that
        replays this schedule.
        """
        got = self._state_count_memo.get(node_id)
        if got is None:
            states = self.op_state.get(node_id)
            if states is None:
                got = {}
            else:
                ids, counts = np.unique(states, return_counts=True)
                got = {int(i): int(c) for i, c in zip(ids, counts)}
            self._state_count_memo[node_id] = got
        return got

    @property
    def enc(self) -> float:
        """Empirical expected number of cycles per pass."""
        return float(self.cycles.mean()) if self.cycles.size else 0.0

    @property
    def max_cycles(self) -> int:
        return int(self.cycles.max()) if self.cycles.size else 0

    @property
    def min_cycles(self) -> int:
        return int(self.cycles.min()) if self.cycles.size else 0

    def cycles_under(self, durations: dict[int, int]) -> np.ndarray:
        """Per-pass cycle counts under a *different* duration assignment.

        The replayed path through the STG is schedule-determined; only the
        per-state cycle budget changes when the architecture normalizes
        durations to real critical paths.  This recosts every pass under
        ``durations`` (e.g. ``Architecture.duration_map()``) so replay
        cycle counts are comparable with gatesim and the Verilog netlist,
        which both run normalized durations.
        """
        lut = np.zeros(max(durations) + 1, dtype=np.int64)
        for sid, duration in durations.items():
            lut[sid] = duration
        return np.array([int(lut[seq].sum()) for seq in self.state_seq],
                        dtype=np.int64)


def replay(stg: STG, cdfg: CDFG, store: TraceStore, check: bool = True,
           cache=None, parent=None) -> ReplayResult:
    """Execute the STG over every profiled pass (see module docstring).

    ``cache`` is an optional :class:`~repro.core.cache.SynthesisCache`;
    when given, the result is memoized on (store id, CDFG id, replay
    signature of the STG) — replay depends only on those, not on the
    binding, so design points that re-bind without re-scheduling, and
    distinct bindings whose schedules coincide up to unit assignment,
    share one :class:`ReplayResult`.

    ``parent`` is an optional ``(parent_stg, parent_result)`` pair from a
    previously replayed schedule over the *same* store: passes whose
    visited states are untouched by the reschedule reuse the parent's
    arrays wholesale, and only passes through re-scheduled states are
    re-simulated (see :func:`_replay_incremental`).  The result is
    bit-identical to a full replay, so the memo key is unchanged.
    """
    if cache is None:
        return _replay(stg, cdfg, store, check, parent)
    key = (id(store), id(cdfg), stg.replay_signature(), check)
    return cache.replay.get_or_compute(
        key, lambda: _replay(stg, cdfg, store, check, parent))


def _replay(stg: STG, cdfg: CDFG, store: TraceStore, check: bool = True,
            parent=None) -> ReplayResult:
    from repro.core.profile import PROFILER

    with PROFILER.stage("replay") as token:
        if parent is not None:
            result = _replay_incremental(stg, cdfg, store, check,
                                         parent[0], parent[1])
            if result is not None:
                token.incremental = True
                return result
        return _replay_impl(stg, cdfg, store, check)


def _ordered_ops(stg: STG) -> dict[int, list]:
    """Per-state (node, start) pairs pre-sorted by chaining order."""
    return {
        sid: [(op.node, op.start)
              for op in sorted(state.ops, key=lambda op: (op.start, op.node))]
        for sid, state in stg.states.items()
    }


def _occ_lists(store: TraceStore) -> dict[int, tuple]:
    """Occurrence streams as plain lists: ``(pass_idx, out, length)``.

    Python-int indexing into lists is several times faster than numpy
    scalar access, and the per-visit loop of :func:`_walk_pass` touches
    every occurrence once — the one-time ``tolist`` pays for itself on
    the first pass.
    """
    return {n: (occ.pass_idx.tolist(), occ.out.tolist(), len(occ))
            for n, occ in store.occurrences.items()}


def _walk_pass(stg: STG, cdfg: CDFG, occ_lists: dict, pass_idx: int,
               global_cycle: int, pointers: dict, last_val: dict,
               ordered_ops: dict, op_cycle: dict, op_start: dict,
               op_state: dict, state_visits: dict):
    """Simulate one stimulus pass; the unit shared by full and incremental
    replay.  Mutates ``pointers``/``last_val``/the per-node output lists
    in place and returns ``(cycles, visited, global_cycle)``.
    """
    for node_id in cdfg.input_nodes:
        entry = occ_lists.get(node_id)
        if entry is None:
            continue
        occ_pass, occ_out, n_occ = entry
        ptr = pointers[node_id]
        if ptr >= n_occ or occ_pass[ptr] != pass_idx:
            raise ScheduleError(
                f"input {cdfg.node(node_id).name}: occurrence stream out of sync "
                f"at pass {pass_idx}")
        last_val[node_id] = occ_out[ptr]
        pointers[node_id] = ptr + 1
        op_cycle[node_id].append(global_cycle)
        op_start[node_id].append(0.0)
        op_state[node_id].append(stg.start)

    states = stg.states
    done = stg.done
    state_id = stg.start
    cycles = 0
    visited: list[int] = []
    while True:
        duration = states[state_id].duration
        cycles += duration
        if cycles > MAX_CYCLES_PER_PASS:
            raise ScheduleError(f"replay exceeded {MAX_CYCLES_PER_PASS} cycles "
                                f"(pass {pass_idx}) — STG does not terminate")
        state_visits[state_id] = state_visits.get(state_id, 0) + 1
        visited.append(state_id)
        for node_id, op_start_ns in ordered_ops[state_id]:
            entry = occ_lists.get(node_id)
            ptr = pointers.get(node_id, 0)
            if entry is None or ptr >= entry[2] or entry[0][ptr] != pass_idx:
                raise ScheduleError(
                    f"node {cdfg.node(node_id).name}: STG executes it more often "
                    f"than the behavior did (pass {pass_idx}, state {state_id})")
            last_val[node_id] = entry[1][ptr]
            pointers[node_id] = ptr + 1
            op_cycle[node_id].append(global_cycle)
            op_start[node_id].append(op_start_ns)
            op_state[node_id].append(state_id)
        global_cycle += duration

        match = None
        multi = False
        for t in stg.out_transitions(state_id):
            if _matches(t, last_val):
                if match is None:
                    match = t
                else:
                    multi = True
                    break
        if match is None or multi:
            transitions = stg.out_transitions(state_id)
            matching = [t for t in transitions if _matches(t, last_val)]
            raise ScheduleError(
                f"state {state_id}: {len(matching)} transitions match at "
                f"pass {pass_idx} (conditions {[sorted(t.conds) for t in transitions]})")
        state_id = match.dst
        if state_id == done:
            break
    return cycles, visited, global_cycle


def _replay_impl(stg: STG, cdfg: CDFG, store: TraceStore, check: bool = True) -> ReplayResult:
    """Full replay, in two phases.

    The state path of a pass depends only on the recorded *condition*
    values, so the walk consumes just the condition streams (plus the
    per-pass input sync).  Every other per-occurrence array — the bulk of
    the work — is then reconstructed from the visit sequence with
    vectorized numpy lookups: a node's k-th occurrence is the k-th visit
    of any state that schedules it, at that visit's cycle base, with the
    node's in-state start.  Consumption errors are detected against the
    reconstruction at the same (pass, state) the sequential walk would
    have raised them.

    The walk itself is memoized on the store: the visit sequence is a
    function of (condition placement per state, transition structure,
    recorded condition values) alone — state *durations* only shift the
    cycle bases.  STGs that differ merely in durations or in the
    non-condition ops they schedule (the common case across binding
    moves over one benchmark) share one recorded walk; only the
    duration-dependent guard against runaway passes is re-checked.
    """
    cond_nodes = stg.condition_inputs()
    states = stg.states
    done = stg.done
    start_state = stg.start
    state_conds = {sid: [op.node for op in state.ops if op.node in cond_nodes]
                   for sid, state in stg.states.items()}

    # Duration-independent path signature (see docstring).  Transition
    # lists keep their ``out_transitions`` order: first-match precedence
    # is part of the walk's semantics.
    sig = (id(cdfg), start_state, done, tuple(sorted(
        (sid, tuple(sorted(state_conds[sid])),
         tuple((t.conds, t.dst) for t in stg.out_transitions(sid)))
        for sid in states)))
    walk_cache = getattr(store, "_walk_cache", None)
    if walk_cache is None:
        walk_cache = {}
        store._walk_cache = walk_cache
    cached_walk = walk_cache.get(sig)

    max_state = max(states)
    dur_tab: list[int] = [0] * (max_state + 1)
    for sid, state in states.items():
        dur_tab[sid] = state.duration
    dur_lut = np.array(dur_tab, dtype=np.int64)

    if cached_walk is not None:
        # The first same-signature walk validated stream consumption and
        # transition steering; both are store-determined, so only the
        # duration-dependent runaway guard needs re-checking.
        visit_state, pass_bounds = cached_walk
        visit_dur = dur_lut[visit_state]
        cycles_per_pass = []
        for p in range(store.n_passes):
            c = int(visit_dur[pass_bounds[p]:pass_bounds[p + 1]].sum())
            if c > MAX_CYCLES_PER_PASS:
                raise ScheduleError(
                    f"replay exceeded {MAX_CYCLES_PER_PASS} cycles "
                    f"(pass {p}) — STG does not terminate")
            cycles_per_pass.append(c)
    else:
        # Per-state tables indexed by state id: condition nodes to
        # consume and the transition dispatch — a bare ``int``
        # destination for the dominant single-unconditional case, else
        # the guarded ``[(conds, dst), ...]`` list.
        conds_tab: list[list[int]] = [[]] * (max_state + 1)
        trans_tab: list = [None] * (max_state + 1)
        for sid in states:
            conds_tab[sid] = state_conds[sid]
            ts = stg.out_transitions(sid)
            if len(ts) == 1 and not ts[0].conds:
                trans_tab[sid] = ts[0].dst
            else:
                trans_tab[sid] = [(t.conds, t.dst) for t in ts]

        occ_lists = {n: (occ.pass_idx.tolist(), occ.out.tolist(), len(occ))
                     for n, occ in store.occurrences.items()
                     if n in cond_nodes or n in cdfg.input_nodes}
        pointers: dict[int, int] = {n: 0 for n in occ_lists}
        last_val: dict[int, int] = {}
        for node in cdfg.nodes.values():
            if node.kind is OpKind.CONST:
                last_val[node.id] = node.value

        all_states: list[int] = []
        pass_bounds_l: list[int] = [0]
        cycles_per_pass = []

        for pass_idx in range(store.n_passes):
            for node_id in cdfg.input_nodes:
                entry = occ_lists.get(node_id)
                if entry is None:
                    continue
                occ_pass, occ_out, n_occ = entry
                ptr = pointers[node_id]
                if ptr >= n_occ or occ_pass[ptr] != pass_idx:
                    raise ScheduleError(
                        f"input {cdfg.node(node_id).name}: occurrence stream "
                        f"out of sync at pass {pass_idx}")
                last_val[node_id] = occ_out[ptr]
                pointers[node_id] = ptr + 1

            state_id = start_state
            cycles = 0
            append_state = all_states.append
            while True:
                cycles += dur_tab[state_id]
                if cycles > MAX_CYCLES_PER_PASS:
                    raise ScheduleError(
                        f"replay exceeded {MAX_CYCLES_PER_PASS} cycles "
                        f"(pass {pass_idx}) — STG does not terminate")
                append_state(state_id)
                for node_id in conds_tab[state_id]:
                    entry = occ_lists.get(node_id)
                    ptr = pointers.get(node_id, 0)
                    if entry is None or ptr >= entry[2] or entry[0][ptr] != pass_idx:
                        raise ScheduleError(
                            f"node {cdfg.node(node_id).name}: STG executes it "
                            f"more often than the behavior did (pass "
                            f"{pass_idx}, state {state_id})")
                    last_val[node_id] = entry[1][ptr]
                    pointers[node_id] = ptr + 1

                tr = trans_tab[state_id]
                if type(tr) is int:
                    next_id = tr
                else:
                    match = None
                    multi = False
                    for conds, dst in tr:
                        ok = True
                        for cond, want in conds:
                            if cond not in last_val:
                                raise ScheduleError(
                                    f"transition uses condition node {cond} "
                                    f"with no value yet")
                            if bool(last_val[cond]) != want:
                                ok = False
                                break
                        if ok:
                            if match is None:
                                match = dst
                            else:
                                multi = True
                                break
                    if match is None or multi:
                        transitions = stg.out_transitions(state_id)
                        matching = [t for t in transitions
                                    if _matches(t, last_val)]
                        raise ScheduleError(
                            f"state {state_id}: {len(matching)} transitions "
                            f"match at pass {pass_idx} (conditions "
                            f"{[sorted(t.conds) for t in transitions]})")
                    next_id = match
                state_id = next_id
                if state_id == done:
                    break
            cycles_per_pass.append(cycles)
            pass_bounds_l.append(len(all_states))

        visit_state = np.array(all_states, dtype=np.int32)
        pass_bounds = np.array(pass_bounds_l, dtype=np.int64)
        visit_dur = dur_lut[visit_state]
        walk_cache[sig] = (visit_state, pass_bounds)

    # Global visit cycles follow from the durations alone: passes are
    # contiguous, so the exclusive prefix sum over every visit's duration
    # reproduces the sequential global-cycle counter exactly.
    visit_cycle = np.concatenate(
        ([0], np.cumsum(visit_dur)))[:-1] if visit_state.size else \
        np.zeros(0, dtype=np.int64)
    visit_pass = np.repeat(np.arange(store.n_passes, dtype=np.int32),
                           np.diff(pass_bounds))
    pass_start_cycles = [int(visit_cycle[pass_bounds[p]])
                         for p in range(store.n_passes)]
    global_cycle = int(visit_dur.sum())
    state_seq = [visit_state[pass_bounds[p]:pass_bounds[p + 1]]
                 for p in range(store.n_passes)]
    ids, counts = np.unique(visit_state, return_counts=True)
    state_visits = {int(i): int(c) for i, c in zip(ids, counts)}

    # -- phase 2: reconstruct per-occurrence arrays from the visit path.
    # Flatten every state's scheduled ops in chaining order; the visit
    # sequence then *emits* ops as (visit, slot) pairs, and one stable
    # sort by node groups each node's occurrences in visit order — the
    # exact stream the sequential walk would have consumed, duplicates
    # (over-active STGs) included.
    max_sid = max(states) if states else 0
    ops_count = np.zeros(max_sid + 1, dtype=np.int64)
    ops_offset = np.zeros(max_sid + 1, dtype=np.int64)
    flat_nodes_l: list[int] = []
    flat_starts_l: list[float] = []
    scheduled: set[int] = set()
    off = 0
    for sid, state in states.items():
        ops = sorted(state.ops, key=lambda op: (op.start, op.node))
        ops_offset[sid] = off
        ops_count[sid] = len(ops)
        off += len(ops)
        for op in ops:
            flat_nodes_l.append(op.node)
            flat_starts_l.append(op.start)
            scheduled.add(op.node)
    flat_nodes = np.array(flat_nodes_l, dtype=np.int64)
    flat_starts = np.array(flat_starts_l, dtype=np.float64)

    emit_counts = ops_count[visit_state]
    total = int(emit_counts.sum())
    rep_idx = np.repeat(np.arange(visit_state.size), emit_counts)
    within = np.arange(total) - np.repeat(
        np.cumsum(emit_counts) - emit_counts, emit_counts)
    slot = ops_offset[visit_state[rep_idx]] + within
    order = np.argsort(flat_nodes[slot], kind="stable")
    em_visit = rep_idx[order]
    em_node = flat_nodes[slot][order]
    em_cycle = visit_cycle[em_visit]
    em_start = flat_starts[slot[order]]
    em_state = visit_state[em_visit].astype(np.int32, copy=False)
    em_pass = visit_pass[em_visit]
    group_nodes = em_node[np.concatenate(
        ([0], np.flatnonzero(np.diff(em_node)) + 1))] if total else \
        np.zeros(0, dtype=np.int64)
    group_bounds = np.searchsorted(em_node, group_nodes)

    empty_c = np.array([], dtype=np.int64)
    empty_s = np.array([], dtype=np.float64)
    empty_t = np.array([], dtype=np.int32)
    op_cycle = {n: empty_c for n in store.occurrences}
    op_start = {n: empty_s for n in store.occurrences}
    op_state = {n: empty_t for n in store.occurrences}

    input_set = set(cdfg.input_nodes)
    n_passes = store.n_passes
    in_cycle = np.array(pass_start_cycles, dtype=np.int64)
    in_start = np.zeros(n_passes, dtype=np.float64)
    in_state = np.full(n_passes, start_state, dtype=np.int32)
    for n in store.occurrences:
        if n in input_set:
            op_cycle[n] = in_cycle
            op_start[n] = in_start
            op_state[n] = in_state

    for g, n in enumerate(group_nodes.tolist()):
        lo = int(group_bounds[g])
        hi = int(group_bounds[g + 1]) if g + 1 < group_nodes.size else total
        occ = store.occurrences.get(n)
        recon_pass = em_pass[lo:hi]
        size = hi - lo
        if occ is None:
            k = 0
        else:
            shared = min(size, len(occ))
            bad = np.flatnonzero(recon_pass[:shared] != occ.pass_idx[:shared])
            k = int(bad[0]) if bad.size else (
                shared if size > len(occ) else None)
        if k is not None:
            raise ScheduleError(
                f"node {cdfg.node(n).name}: STG executes it more often than "
                f"the behavior did (pass {int(recon_pass[k])}, "
                f"state {int(em_state[lo + k])})")
        op_cycle[n] = em_cycle[lo:hi]
        op_start[n] = em_start[lo:hi]
        op_state[n] = em_state[lo:hi]

    if check:
        for node_id in store.occurrences:
            node = cdfg.node(node_id)
            if not node.is_schedulable:
                continue
            consumed = len(op_cycle[node_id]) if node_id in scheduled else 0
            expected = store.count(node_id)
            if consumed != expected:
                raise ScheduleError(
                    f"node {node.name}: STG executed it {consumed} times but "
                    f"the behavior executed it {expected} times")

    return ReplayResult(
        cycles=np.array(cycles_per_pass, dtype=np.int64),
        op_cycle=op_cycle,
        op_start=op_start,
        op_state=op_state,
        total_cycles=global_cycle,
        state_visits=state_visits,
        state_seq=state_seq,
    )


# -------------------------------------------------------------- incremental


def _solid_states(parent: STG, child: STG, p2c: dict[int, int]) -> set[int]:
    """Parent states whose replay behavior is untouched in the child.

    A mapped parent state is *solid* when its replay content (duration +
    the (start, node) multiset of its ops) equals its image's, and every
    outgoing transition has a child twin with the same guard whose
    destination is the mapped one.  A pass visiting only solid states
    replays identically in the child: at each step the parent twin
    matches the recorded condition values, and :meth:`STG.validate`'s
    disjointness guarantee makes it the child's unique match.
    """
    solid: set[int] = set()
    for p, c in p2c.items():
        ps, cs = parent.states[p], child.states[c]
        if ps.duration != cs.duration:
            continue
        if sorted((o.start, o.node) for o in ps.ops) != \
                sorted((o.start, o.node) for o in cs.ops):
            continue
        by_conds = {t.conds: t for t in child.out_transitions(c)}
        for t in parent.out_transitions(p):
            twin = by_conds.get(t.conds)
            if twin is None or p2c.get(t.dst) != twin.dst:
                break
        else:
            solid.add(p)
    return solid


def _replay_incremental(stg: STG, cdfg: CDFG, store: TraceStore, check: bool,
                        parent_stg: STG, parent_rep: ReplayResult) -> ReplayResult | None:
    """Replay ``stg`` reusing ``parent_rep`` for untouched passes.

    Returns ``None`` (caller falls back to the full walk) when the
    parent did not consume the store exactly, no pass is clean, or a
    re-simulated pass consumes a different occurrence count than the
    recorded behavior.  Whenever a result *is* returned it
    is bit-identical to :func:`_replay_impl` on the same inputs: clean
    passes are store-determined (the condition values steering them and
    the values live at pass entry all come from the occurrence streams,
    never from other passes), so per-pass reuse and re-simulation compose
    freely.
    """
    p2c = parent_stg.align_states(stg)
    n_passes = store.n_passes
    if n_passes != len(parent_rep.state_seq):
        return None
    for n, occ in store.occurrences.items():
        arr = parent_rep.op_cycle.get(n)
        if arr is None or len(arr) != len(occ):
            return None

    solid = _solid_states(parent_stg, stg, p2c)
    max_id = max(parent_stg.states)
    solid_lut = np.zeros(max_id + 1, dtype=bool)
    for sid in solid:
        solid_lut[sid] = True
    clean = [bool(solid_lut[seq].all()) for seq in parent_rep.state_seq]
    if not any(clean):
        return None

    state_lut = np.zeros(max_id + 1, dtype=np.int32)
    for p, c in p2c.items():
        state_lut[p] = c

    bounds = {n: np.searchsorted(occ.pass_idx, np.arange(n_passes + 1))
              for n, occ in store.occurrences.items()}
    consts = {node.id: node.value for node in cdfg.nodes.values()
              if node.kind is OpKind.CONST}
    ordered_ops = _ordered_ops(stg)
    occ_lists = None  # materialized lazily, only if a dirty pass exists
    parent_prefix = np.concatenate(([0], np.cumsum(parent_rep.cycles)))

    cycles = np.empty(n_passes, dtype=np.int64)
    state_seq: list = [None] * n_passes
    state_visits: dict[int, int] = {}
    delta = np.zeros(n_passes, dtype=np.int64)
    dirty_ops: dict[int, tuple] = {}
    global_cycle = 0
    for p in range(n_passes):
        delta[p] = global_cycle - int(parent_prefix[p])
        if clean[p]:
            seq = state_lut[parent_rep.state_seq[p]]
            state_seq[p] = seq
            cycles[p] = parent_rep.cycles[p]
            ids, counts = np.unique(seq, return_counts=True)
            for sid, count in zip(ids, counts):
                sid = int(sid)
                state_visits[sid] = state_visits.get(sid, 0) + int(count)
            global_cycle += int(cycles[p])
            continue
        if occ_lists is None:
            occ_lists = _occ_lists(store)
        pointers = {n: int(bounds[n][p]) for n in store.occurrences}
        last_val = dict(consts)
        for n, entry in occ_lists.items():
            base = pointers[n]
            if base > 0:
                last_val[n] = entry[1][base - 1]
        oc: dict[int, list] = {n: [] for n in store.occurrences}
        osn: dict[int, list] = {n: [] for n in store.occurrences}
        ost: dict[int, list] = {n: [] for n in store.occurrences}
        visits: dict[int, int] = {}
        pass_cycles, visited, global_cycle = _walk_pass(
            stg, cdfg, occ_lists, p, global_cycle, pointers, last_val,
            ordered_ops, oc, osn, ost, visits)
        for n in store.occurrences:
            if pointers[n] != int(bounds[n][p + 1]):
                return None
        cycles[p] = pass_cycles
        state_seq[p] = np.array(visited, dtype=np.int32)
        for sid, count in visits.items():
            state_visits[sid] = state_visits.get(sid, 0) + count
        dirty_ops[p] = (oc, osn, ost)

    op_cycle: dict[int, np.ndarray] = {}
    op_start: dict[int, np.ndarray] = {}
    op_state: dict[int, np.ndarray] = {}
    for n in store.occurrences:
        b = bounds[n]
        parts_c, parts_s, parts_t = [], [], []
        for p in range(n_passes):
            if clean[p]:
                lo, hi = int(b[p]), int(b[p + 1])
                parts_c.append(parent_rep.op_cycle[n][lo:hi] + delta[p])
                parts_s.append(parent_rep.op_start[n][lo:hi])
                parts_t.append(state_lut[parent_rep.op_state[n][lo:hi]])
            else:
                oc, osn, ost = dirty_ops[p]
                parts_c.append(np.array(oc[n], dtype=np.int64))
                parts_s.append(np.array(osn[n], dtype=np.float64))
                parts_t.append(np.array(ost[n], dtype=np.int32))
        op_cycle[n] = np.concatenate(parts_c) if parts_c else \
            np.array([], dtype=np.int64)
        op_start[n] = np.concatenate(parts_s) if parts_s else \
            np.array([], dtype=np.float64)
        op_state[n] = np.concatenate(parts_t) if parts_t else \
            np.array([], dtype=np.int32)

    return ReplayResult(
        cycles=cycles,
        op_cycle=op_cycle,
        op_start=op_start,
        op_state=op_state,
        total_cycles=global_cycle,
        state_visits=state_visits,
        state_seq=state_seq,
    )


def _matches(transition, last_val: dict[int, int]) -> bool:
    for cond, want in transition.conds:
        if cond not in last_val:
            raise ScheduleError(f"transition uses condition node {cond} with no value yet")
        if bool(last_val[cond]) != want:
            return False
    return True
