"""STG replay against recorded behavioral traces.

Replay walks the STG once per stimulus pass, consuming each node's
occurrence stream in order and steering transitions with the recorded
condition values.  It produces:

* the exact cycle count of every pass (the empirical ENC numerator);
* a global timestamp (cycle, in-state start time) for every operation
  occurrence — the ordering information trace manipulation (Section 2.3)
  needs to merge per-unit traces without re-simulation.

Replay also *verifies* the schedule: with ``check=True`` (default) it
asserts that every occurrence stream is consumed exactly — i.e. the STG
executes every operation exactly as often as the behavior did, on every
profiled path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ScheduleError
from repro.cdfg.graph import CDFG
from repro.cdfg.node import OpKind
from repro.sched.stg import STG
from repro.sim.traces import TraceStore

#: Safety cap on cycles per pass during replay.
MAX_CYCLES_PER_PASS = 1_000_000


@dataclass
class ReplayResult:
    """Timing of every operation occurrence under one STG."""

    cycles: np.ndarray                       # per-pass cycle counts
    op_cycle: dict[int, np.ndarray]          # node -> global cycle per occurrence
    op_start: dict[int, np.ndarray]          # node -> in-state start (ns)
    op_state: dict[int, np.ndarray]          # node -> executing state id
    total_cycles: int
    state_visits: dict[int, int] = field(default_factory=dict)
    #: Per-pass sequence of visited state ids (excluding the done state).
    state_seq: list[np.ndarray] = field(default_factory=list)
    #: Lazy per-node {state id: occurrence count} memo (see
    #: :meth:`op_state_counts`); keyed here so every design point sharing
    #: this replay shares the counts.
    _state_count_memo: dict[int, dict[int, int]] = field(
        default_factory=dict, repr=False)

    def op_state_counts(self, node_id: int) -> dict[int, int]:
        """How often a node executed in each state, memoized.

        Replaces per-driver ``(op_state == state).sum()`` scans in the
        multiplexer statistics with one vectorized ``np.unique`` per
        node, shared across every port and every design point that
        replays this schedule.
        """
        got = self._state_count_memo.get(node_id)
        if got is None:
            states = self.op_state.get(node_id)
            if states is None:
                got = {}
            else:
                ids, counts = np.unique(states, return_counts=True)
                got = {int(i): int(c) for i, c in zip(ids, counts)}
            self._state_count_memo[node_id] = got
        return got

    @property
    def enc(self) -> float:
        """Empirical expected number of cycles per pass."""
        return float(self.cycles.mean()) if self.cycles.size else 0.0

    @property
    def max_cycles(self) -> int:
        return int(self.cycles.max()) if self.cycles.size else 0

    @property
    def min_cycles(self) -> int:
        return int(self.cycles.min()) if self.cycles.size else 0

    def cycles_under(self, durations: dict[int, int]) -> np.ndarray:
        """Per-pass cycle counts under a *different* duration assignment.

        The replayed path through the STG is schedule-determined; only the
        per-state cycle budget changes when the architecture normalizes
        durations to real critical paths.  This recosts every pass under
        ``durations`` (e.g. ``Architecture.duration_map()``) so replay
        cycle counts are comparable with gatesim and the Verilog netlist,
        which both run normalized durations.
        """
        lut = np.zeros(max(durations) + 1, dtype=np.int64)
        for sid, duration in durations.items():
            lut[sid] = duration
        return np.array([int(lut[seq].sum()) for seq in self.state_seq],
                        dtype=np.int64)


def replay(stg: STG, cdfg: CDFG, store: TraceStore, check: bool = True,
           cache=None) -> ReplayResult:
    """Execute the STG over every profiled pass (see module docstring).

    ``cache`` is an optional :class:`~repro.core.cache.SynthesisCache`;
    when given, the result is memoized on (store id, CDFG id, replay
    signature of the STG) — replay depends only on those, not on the
    binding, so design points that re-bind without re-scheduling, and
    distinct bindings whose schedules coincide up to unit assignment,
    share one :class:`ReplayResult`.
    """
    if cache is None:
        return _replay(stg, cdfg, store, check)
    key = (id(store), id(cdfg), stg.replay_signature(), check)
    return cache.replay.get_or_compute(
        key, lambda: _replay(stg, cdfg, store, check))


def _replay(stg: STG, cdfg: CDFG, store: TraceStore, check: bool = True) -> ReplayResult:
    from repro.core.profile import PROFILER

    with PROFILER.stage("replay"):
        return _replay_impl(stg, cdfg, store, check)


def _replay_impl(stg: STG, cdfg: CDFG, store: TraceStore, check: bool = True) -> ReplayResult:
    pointers: dict[int, int] = {n: 0 for n in store.occurrences}
    last_val: dict[int, int] = {}
    for node in cdfg.nodes.values():
        if node.kind is OpKind.CONST:
            last_val[node.id] = node.value

    op_cycle: dict[int, list[int]] = {n: [] for n in store.occurrences}
    op_start: dict[int, list[float]] = {n: [] for n in store.occurrences}
    op_state: dict[int, list[int]] = {n: [] for n in store.occurrences}
    state_visits: dict[int, int] = {}
    cycles_per_pass: list[int] = []
    state_seq: list[np.ndarray] = []
    global_cycle = 0

    # Pre-sort state op lists by chaining order once.
    ordered_ops = {
        sid: sorted(state.ops, key=lambda op: (op.start, op.node))
        for sid, state in stg.states.items()
    }

    for pass_idx in range(store.n_passes):
        for node_id in cdfg.input_nodes:
            occ = store.occurrences.get(node_id)
            if occ is None:
                continue
            ptr = pointers[node_id]
            if ptr >= len(occ) or occ.pass_idx[ptr] != pass_idx:
                raise ScheduleError(
                    f"input {cdfg.node(node_id).name}: occurrence stream out of sync "
                    f"at pass {pass_idx}")
            last_val[node_id] = int(occ.out[ptr])
            pointers[node_id] = ptr + 1
            op_cycle[node_id].append(global_cycle)
            op_start[node_id].append(0.0)
            op_state[node_id].append(stg.start)

        state_id = stg.start
        cycles = 0
        visited: list[int] = []
        while True:
            cycles += stg.states[state_id].duration
            if cycles > MAX_CYCLES_PER_PASS:
                raise ScheduleError(f"replay exceeded {MAX_CYCLES_PER_PASS} cycles "
                                    f"(pass {pass_idx}) — STG does not terminate")
            state_visits[state_id] = state_visits.get(state_id, 0) + 1
            visited.append(state_id)
            for sched_op in ordered_ops[state_id]:
                node_id = sched_op.node
                occ = store.occurrences.get(node_id)
                ptr = pointers.get(node_id, 0)
                if occ is None or ptr >= len(occ) or occ.pass_idx[ptr] != pass_idx:
                    raise ScheduleError(
                        f"node {cdfg.node(node_id).name}: STG executes it more often "
                        f"than the behavior did (pass {pass_idx}, state {state_id})")
                last_val[node_id] = int(occ.out[ptr])
                pointers[node_id] = ptr + 1
                op_cycle[node_id].append(global_cycle)
                op_start[node_id].append(sched_op.start)
                op_state[node_id].append(state_id)
            global_cycle += stg.states[state_id].duration

            transitions = stg.out_transitions(state_id)
            matching = [t for t in transitions if _matches(t, last_val)]
            if len(matching) != 1:
                raise ScheduleError(
                    f"state {state_id}: {len(matching)} transitions match at "
                    f"pass {pass_idx} (conditions {[sorted(t.conds) for t in transitions]})")
            state_id = matching[0].dst
            if state_id == stg.done:
                break
        cycles_per_pass.append(cycles)
        state_seq.append(np.array(visited, dtype=np.int32))

    if check:
        for node_id, ptr in pointers.items():
            node = cdfg.node(node_id)
            if not node.is_schedulable:
                continue
            expected = store.count(node_id)
            if ptr != expected:
                raise ScheduleError(
                    f"node {node.name}: STG executed it {ptr} times but the "
                    f"behavior executed it {expected} times")

    return ReplayResult(
        cycles=np.array(cycles_per_pass, dtype=np.int64),
        op_cycle={n: np.array(v, dtype=np.int64) for n, v in op_cycle.items()},
        op_start={n: np.array(v, dtype=np.float64) for n, v in op_start.items()},
        op_state={n: np.array(v, dtype=np.int32) for n, v in op_state.items()},
        total_cycles=global_cycle,
        state_visits=state_visits,
        state_seq=state_seq,
    )


def _matches(transition, last_val: dict[int, int]) -> bool:
    for cond, want in transition.conds:
        if cond not in last_val:
            raise ScheduleError(f"transition uses condition node {cond} with no value yet")
        if bool(last_val[cond]) != want:
            return False
    return True
