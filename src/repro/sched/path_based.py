"""Path-based / CFG baseline scheduler (Camposano [17] style).

Basic-block-at-a-time: operations never overlap conditionals or loop
control, loops keep separate test states, and independent loops run
sequentially.  Within a basic block, dataflow packing and chaining are
identical to Wavesched, so the comparison isolates the paper's
control-flow optimizations.
"""

from __future__ import annotations

from repro.cdfg.graph import CDFG
from repro.core.binding import Binding
from repro.sched.engine import ScheduleOptions, schedule
from repro.sched.stg import STG


def path_based_schedule(cdfg: CDFG, binding: Binding, clock_ns: float | None = None) -> STG:
    """Schedule with every Wavesched capability disabled."""
    kwargs = {} if clock_ns is None else {"clock_ns": clock_ns}
    options = ScheduleOptions(branch_parallel=False, fuse_loops=False,
                              hoist_loop_control=False, **kwargs)
    return schedule(cdfg, binding, options)
