"""Wavesched [18]: the paper's scheduler.

All three Wavesched capabilities are enabled: branch-parallel packing,
concurrent-loop fusion, and implicit loop unrolling (loop-control
hoisting).  See :mod:`repro.sched.engine` for the mechanics and DESIGN.md
for the one documented simplification (non-speculative unrolling).
"""

from __future__ import annotations

from repro.cdfg.graph import CDFG
from repro.core.binding import Binding
from repro.sched.engine import ScheduleOptions, schedule
from repro.sched.stg import STG


def wavesched(cdfg: CDFG, binding: Binding, clock_ns: float | None = None) -> STG:
    """Schedule with full Wavesched capabilities."""
    options = ScheduleOptions() if clock_ns is None else ScheduleOptions(clock_ns=clock_ns)
    return schedule(cdfg, binding, options)
