"""Fragment plans: recorded region schedules for incremental rescheduling.

The wavesched engine schedules the region tree top-down; every invocation
of ``_schedule_if`` / ``_schedule_loops`` is a *fragment* — a contiguous
burst of state creations, op placements and transitions whose outcome is a
deterministic function of

* the CDFG and the schedule options (fixed per engine family),
* the entry cursor (the open state's packed content, or the fork sources'
  guards and aliasing pattern),
* the binding context of every node the fragment may place (delay,
  critical-path height, functional unit, unit op-count, register), and
* the readiness bits of every outside dependency it consults.

A :class:`FragmentScript` records the fragment's effects *relative* to its
entry (created states by index, entry sources by position), keyed by a
fingerprint of exactly those inputs.  A later scheduling run — typically
the same CDFG under a binding edited by a rescheduling move — replays the
script through its own state counter whenever the fingerprint matches,
skipping the greedy packing entirely.  Because replay allocates state ids
from the engine's own sequential counter and re-adds ops and transitions
in recorded order, the resulting STG is *bit-identical* to a from-scratch
run: same state ids, same op order, same transition list order.  Regions
whose fingerprint changed (a merged unit, a slower module, a different
entry shape) re-execute genuinely — and their nested clean sub-fragments
still replay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cdfg.analysis import region_nodes, region_subtree
from repro.cdfg.regions import IfRegion
from repro.sched.stg import ScheduledOp

#: A state reference inside a script: ("new", i) — the i-th state the
#: fragment created; ("entry",) — the entry cursor's open state;
#: ("src", k) — the state of the entry cursor's k-th fork source.
Ref = tuple


@dataclass(frozen=True)
class FragmentScript:
    """One fragment's recorded effects, relative to its entry cursor."""

    n_states: int
    #: Final duration per created state, by creation index.
    durations: tuple
    #: Final duration of the entry state (None when the entry had none).
    entry_duration: int | None
    #: Per-state op lists: (ref, ((node, fu, start, end), ...)) in
    #: placement order — the order is part of the STG signature.
    state_ops: tuple
    #: (src_ref, dst_index, conds) in creation order.
    transitions: tuple
    #: Exit cursor: either an open state ref, or fork sources.
    exit_state: Ref | None
    exit_sources: tuple
    #: Nodes/regions the fragment marked done (includes vacuous markings
    #: of arm subtrees — identical under any same-fingerprint execution).
    done_nodes: frozenset
    done_regions: frozenset


class _Recording:
    """Counters captured at fragment entry, for post-hoc script extraction."""

    __slots__ = ("n0", "t0", "entry_state_id", "entry_ops0", "src_states",
                 "done_nodes0", "done_regions0")

    def __init__(self, engine, cursor):
        self.n0 = engine.stg._next_id
        self.t0 = len(engine.stg.transitions)
        if cursor.state is not None:
            self.entry_state_id = cursor.state.id
            self.entry_ops0 = len(cursor.state.ops)
            self.src_states = ()
        else:
            self.entry_state_id = None
            self.entry_ops0 = 0
            self.src_states = tuple(s for s, _ in cursor.sources)
        self.done_nodes0 = frozenset(engine.done_nodes)
        self.done_regions0 = frozenset(engine.done_regions)


# ----------------------------------------------------------------- fingerprint


def _fragment_static(engine, region_ids: tuple) -> tuple:
    """(involved static nodes sorted, dependency spec) — cached per CDFG."""
    cache = engine.analysis.fragment_static
    got = cache.get(region_ids)
    if got is not None:
        return got
    cdfg = engine.cdfg
    analysis = engine.analysis
    nodes: set[int] = set()
    regions: set[int] = set()
    for rid in region_ids:
        nodes |= set(region_nodes(cdfg, rid, recursive=True))
        regions |= region_subtree(cdfg, rid)
    spec: list[tuple[str, int]] = []
    seen: set[tuple[str, int]] = set()

    def add(kind: str, target: int) -> None:
        item = (kind, target)
        if item not in seen:
            seen.add(item)
            spec.append(item)

    for n in sorted(nodes):
        _node_dep_spec(analysis, n, add)
    for rid in sorted(regions):
        for dep in analysis.region_deps.get(rid, ()):
            add(*dep)
        region = cdfg.region(rid)
        if isinstance(region, IfRegion):
            add("node", region.cond_node)
    got = (tuple(sorted(nodes)), tuple(spec))
    cache[region_ids] = got
    return got


def _node_dep_spec(analysis, n: int, add) -> None:
    """Every (kind, target) readiness bit node ``n`` may consult."""
    for dep in analysis.strong.get(n, ()):
        add(*dep)
    for reader in sorted(analysis.weak_readers.get(n, ())):
        add("node", reader)
    for edge in analysis.carried_in.get(n, ()):
        for dep in analysis.dep_of_producer(edge.src):
            add(*dep)


def fragment_fingerprint(engine, kind: str, region_ids: tuple, cursor,
                         extra: list) -> tuple:
    """Hashable digest of everything a fragment execution can read."""
    cdfg = engine.cdfg
    binding = engine.binding
    static_nodes, spec = _fragment_static(engine, region_ids)

    if cursor.state is not None:
        state = cursor.state
        entry = ("state", state.duration,
                 tuple((op.node, op.fu, op.start, op.end) for op in state.ops),
                 tuple(_reg_of(engine, op.node) for op in state.ops))
    else:
        first: dict[int, int] = {}
        alias = tuple(first.setdefault(s, i)
                      for i, (s, _) in enumerate(cursor.sources))
        guards = tuple(tuple(sorted(g)) for _, g in cursor.sources)
        entry = ("sources", alias, guards)

    extra = tuple(extra)
    delays = engine.delays
    heights = engine.heights
    ctx = []
    for n in static_nodes + extra:
        node = cdfg.node(n)
        fu_id = None
        n_fu_ops = 0
        if node.needs_fu:
            fu = binding.fu_of(n)
            if fu is not None:
                fu_id = fu.id
                n_fu_ops = len(fu.ops)
        ctx.append((delays.get(n, 0.0), heights.get(n, 0.0), fu_id, n_fu_ops,
                    _reg_of(engine, n), _mem_port_of(engine, n)))

    done_nodes = engine.done_nodes
    done_regions = engine.done_regions
    bits = [(t in done_nodes) if k == "node" else (t in done_regions)
            for k, t in spec]
    if extra:
        extra_spec: list[tuple[str, int]] = []
        analysis = engine.analysis
        for n in extra:
            _node_dep_spec(analysis, n, lambda k, t: extra_spec.append((k, t)))
        bits.extend((t in done_nodes) if k == "node" else (t in done_regions)
                    for k, t in extra_spec)

    return (kind, region_ids, tuple(sorted(engine._kernel_ctx)), entry, extra,
            tuple(ctx), tuple(bits))


def _reg_of(engine, node_id: int) -> int | None:
    carrier = engine.cdfg.node(node_id).carrier
    if carrier is None:
        return None
    return engine.binding.reg_of(carrier).id


def _mem_port_of(engine, node_id: int) -> tuple[str, int] | None:
    """RAM-organization + port context of a memory access (None otherwise).

    Port assignment steers the same-state conflict checks in
    ``_try_place``, so it is part of what a fragment execution reads.
    """
    array = engine.cdfg.node(node_id).mem
    if array is None:
        return None
    mem = engine.binding.mems[array]
    return (mem.spec.name, mem.port_of[node_id])


# ----------------------------------------------------------- record / replay


def extract_script(engine, rec: _Recording, exit_cursor) -> FragmentScript | None:
    """Build the relative script of a just-executed fragment.

    Returns None when the effects cannot be expressed relative to the
    entry (a transition from an unknown state) — the fragment simply is
    not cached then; correctness never depends on recording succeeding.
    """
    stg = engine.stg
    created = list(range(rec.n0, stg._next_id))
    index = {sid: i for i, sid in enumerate(created)}

    # One lookup table instead of a three-way scan per reference; the
    # setdefault order preserves the created > entry > first-src
    # precedence (created ids are fresh, so only src/entry can collide).
    ref_map: dict[int, Ref] = {sid: ("new", i) for i, sid in enumerate(created)}
    if rec.entry_state_id is not None:
        ref_map.setdefault(rec.entry_state_id, ("entry",))
    for k, s in enumerate(rec.src_states):
        ref_map.setdefault(s, ("src", k))
    ref_of = ref_map.get

    state_ops = []
    for i, sid in enumerate(created):
        ops = stg.states[sid].ops
        if ops:
            state_ops.append((("new", i),
                              tuple((o.node, o.fu, o.start, o.end) for o in ops)))
    entry_duration = None
    if rec.entry_state_id is not None:
        entry_state = stg.states[rec.entry_state_id]
        entry_duration = entry_state.duration
        new_ops = entry_state.ops[rec.entry_ops0:]
        if new_ops:
            state_ops.append((("entry",),
                              tuple((o.node, o.fu, o.start, o.end) for o in new_ops)))

    transitions = []
    for t in stg.transitions[rec.t0:]:
        src = ref_of(t.src)
        dst = index.get(t.dst)
        if src is None or dst is None:
            return None
        transitions.append((src, dst, t.conds))

    if exit_cursor.state is not None:
        exit_state = ref_of(exit_cursor.state.id)
        if exit_state is None:
            return None
        exit_sources: tuple = ()
    else:
        exit_state = None
        sources = []
        for s, conds in exit_cursor.sources:
            ref = ref_of(s)
            if ref is None:
                return None
            sources.append((ref, conds))
        exit_sources = tuple(sources)

    return FragmentScript(
        n_states=len(created),
        durations=tuple(stg.states[sid].duration for sid in created),
        entry_duration=entry_duration,
        state_ops=tuple(state_ops),
        transitions=tuple(transitions),
        exit_state=exit_state,
        exit_sources=exit_sources,
        done_nodes=frozenset(engine.done_nodes) - rec.done_nodes0,
        done_regions=frozenset(engine.done_regions) - rec.done_regions0,
    )


def replay_script(engine, script: FragmentScript, cursor):
    """Re-apply a recorded fragment at the current engine position.

    Creates states through the engine's own sequential counter and
    re-adds ops/transitions in recorded order, so the resulting STG is
    bit-identical to what genuine execution would have produced under the
    matching fingerprint.  Returns ``(exit_state, exit_sources)`` for the
    engine to rebuild its cursor from.
    """
    stg = engine.stg
    created = [stg.new_state() for _ in range(script.n_states)]
    for state, duration in zip(created, script.durations):
        state.duration = duration
    if script.entry_duration is not None:
        cursor.state.duration = script.entry_duration

    def state_of(ref: Ref):
        if ref[0] == "new":
            return created[ref[1]]
        return cursor.state  # ("entry",)

    def id_of(ref: Ref) -> int:
        if ref[0] == "src":
            return cursor.sources[ref[1]][0]
        return state_of(ref).id

    cdfg = engine.cdfg
    binding = engine.binding
    for ref, ops in script.state_ops:
        state = state_of(ref)
        placed = engine._placed.setdefault(state.id, {})
        for node, fu, start, end in ops:
            state.ops.append(ScheduledOp(node=node, fu=fu, start=start, end=end))
            placed[node] = end
            if fu is not None:
                engine._fu_occupancy.setdefault(state.id, {}).setdefault(
                    fu, []).append(node)
            carrier = cdfg.node(node).carrier
            if carrier is not None:
                reg = binding.reg_of(carrier).id
                engine._carrier_writes.setdefault(state.id, {}).setdefault(
                    reg, []).append(node)
            array = cdfg.node(node).mem
            if array is not None:
                engine._mem_occupancy.setdefault(state.id, {}).setdefault(
                    array, []).append(node)

    for src_ref, dst, conds in script.transitions:
        stg.add_transition(id_of(src_ref), created[dst].id, conds)

    engine.done_nodes |= script.done_nodes
    engine.done_regions |= script.done_regions

    if script.exit_state is not None:
        return state_of(script.exit_state), ()
    return None, tuple((id_of(ref), conds) for ref, conds in script.exit_sources)
