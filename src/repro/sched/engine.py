"""The shared scheduling engine.

One engine implements all three schedulers of the reproduction; feature
flags select the paper's Wavesched behaviors:

* ``branch_parallel`` — operations that do not depend on a conditional may
  be packed into its arm states (both arms, symmetrically), instead of
  stalling until the join;
* ``hoist_loop_control`` — the loop body is scheduled as a *kernel* that
  also evaluates the next iteration's test (iterator update + exit
  condition), so the back edge branches directly — the paper's implicit
  loop unrolling, restricted to the loop-control cluster (non-speculative);
* ``fuse_loops`` — two simultaneously-ready, data-independent loops are
  merged into one product kernel whose iterations run concurrently, with
  drain kernels once either loop exits first — the paper's concurrent loop
  optimization.

Scheduling works over the region tree with a global ready model:

* strong dependencies: data edges (non-carried), region completion for
  values merged by Sel/Elp nodes, and — inside a kernel — carried edges
  into the loop's test block (the next-iteration test reads *this*
  iteration's update);
* weak anti-dependencies (write-after-read): a reader of a register value
  must be placed no later than the next writer of the same variable, since
  registers are overwritten in place.  Readers in opposite branch arms are
  exempt (mutually exclusive).

States are packed greedily by critical-path priority with operator
chaining: a chained unit incurs the paper's 10 % delay overhead, estimated
multiplexer stages add 3 ns each, and the packed path must fit the clock
period.  A functional unit accepts two operations in one state only if they
are mutually exclusive (Section 3.2.3); the same rule guards two writes of
one variable.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.errors import ScheduleError
from repro.cdfg.analysis import (
    mutually_exclusive,
    producers_outside,
    region_nodes,
    region_subtree,
)
from repro.cdfg.graph import CDFG
from repro.cdfg.node import OpKind
from repro.cdfg.regions import (
    BlockRegion,
    IfRegion,
    LoopRegion,
    OpsItem,
    SubRegionItem,
)
from repro.core.binding import Binding
from repro.library.modules_data import CHAIN_OVERHEAD, DEFAULT_CLOCK_NS, MUX_DELAY_NS
from repro.sched.stg import STG, ScheduledOp, State


@dataclass(frozen=True)
class ScheduleOptions:
    """Feature flags and timing parameters for one scheduling run."""

    clock_ns: float = DEFAULT_CLOCK_NS
    branch_parallel: bool = True
    fuse_loops: bool = True
    hoist_loop_control: bool = True
    mux_delay_ns: float = MUX_DELAY_NS
    chain_overhead: float = CHAIN_OVERHEAD


@dataclass
class _Cursor:
    """A lazily-materialized open state.

    ``sources`` are (state, guard) pairs whose transitions will target the
    state once it materializes; if nothing is ever placed and no fork needs
    a concrete state, the sources pass through to the next cursor and no
    cycle is spent.
    """

    sources: list[tuple[int, frozenset[tuple[int, bool]]]] = field(default_factory=list)
    state: State | None = None


class _SchedAnalysis:
    """The binding-independent half of the engine's setup, shared per CDFG.

    Strong/weak dependencies, write-after-write order, region entry
    dependencies and the topological skeleton depend only on the CDFG —
    not on the binding — so one instance is computed per CDFG (cached on
    the graph object) and shared read-only by every engine run.  The
    iterative-improvement search schedules the same CDFG hundreds of
    times under different bindings; sharing this analysis removes the
    dominant constant cost from each of those runs.
    """

    def __init__(self, cdfg: CDFG):
        self.cdfg = cdfg
        self._strong: dict[int, list[tuple[str, int]]] = {}
        self._weak_readers: dict[int, set[int]] = {}
        self._carried_in: dict[int, list] = {}
        self._node_region_owner: dict[int, int] = {}
        self._region_deps: dict[int, list[tuple[str, int]]] = {}
        self._writers_by_carrier: dict[str, list[int]] = {}
        self._test_nodes: dict[int, set[int]] = {}
        #: Per-region-ids static data for fragment fingerprinting
        #: (see :mod:`repro.sched.plan`).
        self.fragment_static: dict[tuple, tuple] = {}
        #: Structure-only region digests, shared across every engine run on
        #: this CDFG: task pools per block, schedulable-node sets per
        #: region subtree, loop read/write carrier sets.
        self.block_tasks: dict[int, list[tuple[str, int]]] = {}
        self.region_task_nodes: dict[int, frozenset] = {}
        self.loop_rw: dict[int, tuple[frozenset, frozenset]] = {}
        self._analyze()
        self._build_topo()
        # Public read-only views (consumed by repro.sched.plan).
        self.strong = self._strong
        self.weak_readers = self._weak_readers
        self.carried_in = self._carried_in
        self.region_deps = self._region_deps

    def dep_of_producer(self, src: int) -> list[tuple[str, int]]:
        return self._dep_of_producer(src)

    @classmethod
    def of(cls, cdfg: CDFG) -> "_SchedAnalysis":
        analysis = cdfg.__dict__.get("_sched_analysis")
        if analysis is None:
            analysis = cls(cdfg)
            cdfg._sched_analysis = analysis
        return analysis

    def _build_topo(self) -> None:
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_nodes_from(self.cdfg.nodes)
        for edge in self.cdfg.edges:
            if not edge.carried:
                graph.add_edge(edge.src, edge.dst)
        self._topo_reversed = list(reversed(list(nx.topological_sort(graph))))
        self._successors = {n: list(graph.successors(n)) for n in graph.nodes}

    def heights_for(self, delays: dict[int, float]) -> dict[int, float]:
        """Longest-path-to-sink heights under ``delays``.

        Identical numbers to :func:`~repro.cdfg.analysis.node_heights`
        (same traversal over a cached topological order), without
        rebuilding the graph per scheduling run.
        """
        heights: dict[int, float] = {}
        for node_id in self._topo_reversed:
            best = 0.0
            for succ in self._successors[node_id]:
                h = heights[succ]
                if h > best:
                    best = h
            heights[node_id] = delays.get(node_id, 0.0) + best
        return heights

    def _analyze(self) -> None:
        cdfg = self.cdfg
        for region in cdfg.regions.values():
            if isinstance(region, IfRegion):
                for sel in region.sel_nodes:
                    self._node_region_owner[sel] = region.id
            elif isinstance(region, LoopRegion):
                for elp in region.elp_nodes:
                    self._node_region_owner[elp] = region.id
                self._test_nodes[region.id] = set(
                    region_nodes(cdfg, region.test_block, recursive=True))

        for node in cdfg.nodes.values():
            if node.carrier is not None and (node.is_schedulable or node.kind is OpKind.INPUT):
                self._writers_by_carrier.setdefault(node.carrier, []).append(node.id)
        for writers in self._writers_by_carrier.values():
            writers.sort()

        for node in cdfg.op_nodes():
            strong: list[tuple[str, int]] = []
            for edge in cdfg.in_edges(node.id):
                if edge.carried:
                    self._carried_in.setdefault(node.id, []).append(edge)
                    continue
                strong.extend(self._dep_of_producer(edge.src))
            self._strong[node.id] = strong

        self._build_waw_constraints()
        self._build_memory_constraints()
        self._build_weak_constraints()
        for region in cdfg.regions.values():
            if isinstance(region, (IfRegion, LoopRegion)):
                self._region_deps[region.id] = self._build_region_deps(region)

    def _build_waw_constraints(self) -> None:
        """Write-after-write: a register's writers commit in program order.

        Every (non-mutually-exclusive) earlier writer of the same variable
        becomes a strong dependency of a later writer — even a *dead* write
        must land in an earlier state, or the register would end up holding
        the stale value (found by the random-program property test).
        """
        cdfg = self.cdfg
        for writers in self._writers_by_carrier.values():
            schedulable = [w for w in writers if cdfg.node(w).is_schedulable]
            for i, later in enumerate(schedulable):
                for earlier in schedulable[:i]:
                    if mutually_exclusive(cdfg, earlier, later):
                        continue
                    self._strong.setdefault(later, []).append(("node", earlier))

    def _build_memory_constraints(self) -> None:
        """Memory dependence: same-array accesses commit in program order
        whenever either side is a store (loads commute freely).

        Like WAW, each later access depends on *every* conflicting earlier
        access, not just the nearest — mutually-exclusive pairs are
        skipped, and exclusivity breaks transitive chains.
        """
        cdfg = self.cdfg
        by_array: dict[str, list[int]] = {}
        for node in cdfg.mem_nodes():
            by_array.setdefault(node.mem, []).append(node.id)
        for accesses in by_array.values():
            accesses.sort()
            for i, later in enumerate(accesses):
                for earlier in accesses[:i]:
                    if cdfg.node(earlier).kind is not OpKind.STORE \
                            and cdfg.node(later).kind is not OpKind.STORE:
                        continue
                    if mutually_exclusive(cdfg, earlier, later):
                        continue
                    self._strong.setdefault(later, []).append(("node", earlier))

    def _dep_of_producer(self, src: int) -> list[tuple[str, int]]:
        node = self.cdfg.node(src)
        if node.kind in (OpKind.INPUT, OpKind.CONST):
            return []
        if node.kind in (OpKind.SELECT, OpKind.ENDLOOP):
            return [("region", self._node_region_owner[src])]
        return [("node", src)]

    def _build_weak_constraints(self) -> None:
        """Write-after-read: reader <= next writer of the same variable."""
        cdfg = self.cdfg
        for edge in cdfg.edges:
            if edge.is_control:
                continue
            reader = edge.dst
            if not cdfg.node(reader).is_schedulable:
                continue
            src = cdfg.node(edge.src)
            if edge.carried:
                # Reads of the previous iteration's value must precede this
                # iteration's first (non-exclusive) writer -- except in the
                # loop's test block, where the kernel read is of the *new*
                # value (a strong dependency handled contextually).
                if reader in self._test_nodes.get(edge.loop, set()):
                    continue
                carrier = src.carrier
                loop_nodes = set(region_nodes(cdfg, edge.loop, recursive=True))
                writers = [w for w in self._writers_by_carrier.get(carrier, [])
                           if w in loop_nodes]
            else:
                carrier = src.carrier
                if carrier is None:
                    continue
                writers = [w for w in self._writers_by_carrier.get(carrier, [])
                           if w > edge.src]
            for writer in writers:
                if writer == reader or not cdfg.node(writer).is_schedulable:
                    continue
                if mutually_exclusive(cdfg, writer, reader):
                    continue
                self._weak_readers.setdefault(writer, set()).add(reader)
                break

    def _ancestor_loop_conds(self, region) -> set[int]:
        """Condition nodes of every loop region enclosing ``region``."""
        conds: set[int] = set()
        current = region.parent
        while current is not None:
            parent = self.cdfg.region(current)
            if isinstance(parent, LoopRegion):
                conds.add(parent.cond_node)
            current = parent.parent
        return conds

    def _build_region_deps(self, region) -> list[tuple[str, int]]:
        cdfg = self.cdfg
        deps: list[tuple[str, int]] = []
        # A region's ops are control-guarded by every enclosing loop's
        # condition, but that guard is never an *entry* dependency: the
        # region task is only reached once the enclosing iteration is
        # already executing (kernel entry or a scheduled test), and in a
        # hoisted kernel the in-flight cond evaluation is the *next*
        # iteration's — waiting on it deadlocks against the write-after-
        # read ordering of reads inside this region (found by the fuzz
        # generator: a while loop nested in a for, body reading the
        # iterator).
        vacuous = self._ancestor_loop_conds(region)
        for producer in producers_outside(cdfg, region.id):
            if producer in vacuous:
                continue
            deps.extend(self._dep_of_producer(producer))
        subtree = region_subtree(cdfg, region.id)
        inside = {n.id for n in cdfg.nodes.values() if n.region in subtree}
        if isinstance(region, IfRegion):
            for sel in region.sel_nodes:
                for edge in cdfg.in_edges(sel):
                    if not edge.carried and edge.src not in inside:
                        deps.extend(self._dep_of_producer(edge.src))
        # Outside readers that must run before an inside writer overwrites
        # their value (lest the arm/kernel deadlock on the weak constraint).
        for writer, readers in self._weak_readers.items():
            if writer in inside:
                for reader in readers:
                    if reader not in inside:
                        deps.append(("node", reader))
        # Synthetic strong deps (WAW order) of inside nodes on outside nodes
        # gate region entry the same way data dependencies do.
        for node_id in inside:
            for kind, target in self._strong.get(node_id, ()):
                if kind == "node" and target not in inside:
                    deps.append((kind, target))
        return deps


def _collect_block_tasks(cdfg: CDFG, block: BlockRegion) -> list[tuple[str, int]]:
    tasks: list[tuple[str, int]] = []
    for item in block.items:
        if isinstance(item, OpsItem):
            tasks.extend(("op", n) for n in item.nodes)
        elif isinstance(item, SubRegionItem):
            region = cdfg.region(item.region)
            if isinstance(region, (IfRegion, LoopRegion)):
                tasks.append(("region", region.id))
            else:
                tasks.extend(_collect_block_tasks(cdfg, cdfg.block(item.region)))
    return tasks


class _Engine:
    def __init__(self, cdfg: CDFG, binding: Binding, options: ScheduleOptions,
                 plan_in: dict | None = None):
        self.cdfg = cdfg
        self.binding = binding
        self.options = options
        self.stg = STG()
        self.done_nodes: set[int] = set()
        self.done_regions: set[int] = set()
        self.delays = binding.delays()
        self.analysis = _SchedAnalysis.of(cdfg)
        self.heights = self.analysis.heights_for(self.delays)
        # Read-only views of the shared per-CDFG analysis.
        self._strong = self.analysis._strong
        self._weak_readers = self.analysis._weak_readers
        self._carried_in = self.analysis._carried_in
        self._node_region_owner = self.analysis._node_region_owner
        self._region_deps = self.analysis._region_deps
        self._writers_by_carrier = self.analysis._writers_by_carrier
        self._test_nodes = self.analysis._test_nodes
        self._kernel_ctx: frozenset[int] = frozenset()
        self._placed: dict[int, dict[int, float]] = {}
        self._fu_occupancy: dict[int, dict[int, list[int]]] = {}
        self._carrier_writes: dict[int, dict[str, list[int]]] = {}
        self._mem_occupancy: dict[int, dict[str, list[int]]] = {}
        #: Fragment scripts of the parent schedule this run may replay
        #: (None on a from-scratch run) and the scripts this run records.
        self._plan_in = plan_in
        self._plan_out: dict = {}
        self.replayed_fragments = 0
        # Estimated mux depths are pure functions of (binding, CDFG),
        # both fixed for the engine's lifetime.
        self._in_mux_memo: dict[int, float] = {}
        self._out_mux_memo: dict[int, float] = {}

    def _dep_of_producer(self, src: int) -> list[tuple[str, int]]:
        return self.analysis._dep_of_producer(src)

    def _ancestor_loop_conds(self, region) -> set[int]:
        return self.analysis._ancestor_loop_conds(region)

    # ------------------------------------------------------------- readiness

    def _dep_satisfied(self, dep: tuple[str, int]) -> bool:
        kind, target = dep
        if kind == "node":
            return target in self.done_nodes
        return target in self.done_regions

    def _op_ready(self, node_id: int) -> bool:
        for dep in self._strong.get(node_id, ()):
            if not self._dep_satisfied(dep):
                return False
        for edge in self._carried_in.get(node_id, ()):
            # Inside a kernel, the loop's test reads *this* iteration's
            # update -- a strong dependency on the body producer (resolved
            # through Sel/Elp to region completion where needed).
            if edge.loop in self._kernel_ctx \
                    and node_id in self._test_nodes.get(edge.loop, set()):
                for dep in self._dep_of_producer(edge.src):
                    if not self._dep_satisfied(dep):
                        return False
        for reader in self._weak_readers.get(node_id, ()):
            if reader not in self.done_nodes:
                return False
        return True

    def _region_ready(self, region_id: int) -> bool:
        return all(self._dep_satisfied(d) for d in self._region_deps[region_id])

    # ------------------------------------------------------------- state/cursor

    def _materialize(self, cursor: _Cursor) -> State:
        if cursor.state is None:
            cursor.state = self.stg.new_state()
            for src, conds in cursor.sources:
                self.stg.add_transition(src, cursor.state.id, conds)
            cursor.sources = []
        return cursor.state

    def _fork_sources(self, cursor: _Cursor) -> list[tuple[int, frozenset[tuple[int, bool]]]]:
        """Concrete (state, guard) pairs a fork can branch from."""
        if cursor.state is not None:
            return [(cursor.state.id, frozenset())]
        if not cursor.sources:
            raise ScheduleError("cannot fork from a cursor with no sources")
        return list(cursor.sources)

    def _advance(self, cursor: _Cursor) -> _Cursor:
        """Close the cursor and open the sequentially-next one."""
        state = self._materialize(cursor)
        return _Cursor(sources=[(state.id, frozenset())])

    # --------------------------------------------------------------- packing

    def _est_input_mux(self, fu_id: int | None) -> float:
        if fu_id is None:
            return 0.0
        got = self._in_mux_memo.get(fu_id)
        if got is None:
            n_ops = len(self.binding.fus[fu_id].ops)
            got = 0.0 if n_ops <= 1 else \
                math.ceil(math.log2(n_ops)) * self.options.mux_delay_ns
            self._in_mux_memo[fu_id] = got
        return got

    def _est_output_mux(self, node_id: int) -> float:
        got = self._out_mux_memo.get(node_id)
        if got is not None:
            return got
        carrier = self.cdfg.node(node_id).carrier
        if carrier is None:
            got = 0.0
        else:
            writers = [w for w in self._writers_by_carrier.get(carrier, [])
                       if self.cdfg.node(w).is_schedulable or
                       self.cdfg.node(w).kind is OpKind.INPUT]
            got = 0.0 if len(writers) <= 1 else \
                math.ceil(math.log2(len(writers))) * self.options.mux_delay_ns
        self._out_mux_memo[node_id] = got
        return got

    def _try_place(self, cursor: _Cursor, node_id: int) -> bool:
        node = self.cdfg.node(node_id)
        fu = self.binding.fu_of(node_id) if node.needs_fu else None
        fu_id = fu.id if fu is not None else None

        state_id = cursor.state.id if cursor.state is not None else None
        placed_here = self._placed.get(state_id, {}) if state_id is not None else {}
        fu_occupancy = self._fu_occupancy.get(state_id, {}) if state_id is not None else {}
        carrier_writes = self._carrier_writes.get(state_id, {}) if state_id is not None else {}
        mem_occupancy = self._mem_occupancy.get(state_id, {}) if state_id is not None else {}

        if node.mem is not None:
            mem = self.binding.mems[node.mem]
            port = mem.port_of[node_id]
            is_store = node.kind is OpKind.STORE
            for other in mem_occupancy.get(node.mem, ()):
                # Gatesim executes every op of a visited state, so a store
                # may never share a state with another access of its array
                # -- even a mutually exclusive one would double-commit.
                if is_store or self.cdfg.node(other).kind is OpKind.STORE:
                    return False
                # One address bus per port: two loads share a state only on
                # different ports (exclusivity cannot split a bus).
                if mem.port_of[other] == port:
                    return False

        if fu_id is not None:
            for other in fu_occupancy.get(fu_id, ()):
                if not mutually_exclusive(self.cdfg, other, node_id):
                    return False
        if node.carrier is not None:
            # Register-granular write conflict: carriers sharing a register
            # may not commit in the same state (unless mutually exclusive).
            reg = self.binding.reg_of(node.carrier).id
            for other in carrier_writes.get(reg, ()):
                if not mutually_exclusive(self.cdfg, other, node_id):
                    return False
        # A carried read samples its variable's register; the register only
        # commits the entry value at the end of the init writer's state, so
        # the read may not share that state (caught by gatesim otherwise).
        for edge in self._carried_in.get(node_id, ()):
            if edge.loop in self._kernel_ctx:
                continue
            if edge.init_src is not None and edge.init_src in placed_here:
                return False

        start = 0.0
        for edge in self.cdfg.in_edges(node_id):
            if edge.src in placed_here:
                start = max(start, placed_here[edge.src])
        base = self.delays.get(node_id, 0.0)
        if base > 0.0 and start > 0.0:
            base *= 1.0 + self.options.chain_overhead
        end = start + base + self._est_input_mux(fu_id) + self._est_output_mux(node_id)
        clock = self.options.clock_ns
        need = max(1, math.ceil(end / clock - 1e-9))
        state_empty = cursor.state is None or not cursor.state.ops
        if not state_empty and need > cursor.state.duration:
            # Would extend the state's cycle window: postpone to a fresh
            # state (which accepts any op, multi-cycling if necessary).
            return False

        state = self._materialize(cursor)
        state.duration = max(state.duration, need)
        state.ops.append(ScheduledOp(node=node_id, fu=fu_id, start=start, end=end))
        self._placed.setdefault(state.id, {})[node_id] = end
        if fu_id is not None:
            self._fu_occupancy.setdefault(state.id, {}).setdefault(fu_id, []).append(node_id)
        if node.carrier is not None:
            reg = self.binding.reg_of(node.carrier).id
            self._carrier_writes.setdefault(state.id, {}).setdefault(
                reg, []).append(node_id)
        if node.mem is not None:
            self._mem_occupancy.setdefault(state.id, {}).setdefault(
                node.mem, []).append(node_id)
        self.done_nodes.add(node_id)
        return True

    # ------------------------------------------------------------ task pools

    def _block_tasks(self, cdfg: CDFG, block: BlockRegion) -> list[tuple[str, int]]:
        """Task pool of a block — pure CDFG structure, memoized per graph.

        Callers never mutate the returned list (they copy or iterate), so
        one shared object per block is safe.
        """
        cache = self.analysis.block_tasks
        tasks = cache.get(block.id)
        if tasks is None:
            tasks = cache[block.id] = _collect_block_tasks(cdfg, block)
        return tasks

    def _region_task_nodes(self, region_id: int) -> frozenset:
        """All schedulable nodes in a region subtree (for done-masking)."""
        cache = self.analysis.region_task_nodes
        nodes = cache.get(region_id)
        if nodes is None:
            nodes = cache[region_id] = frozenset(
                region_nodes(self.cdfg, region_id, recursive=True))
        return nodes

    # ------------------------------------------------------------- main loop

    def run(self) -> STG:
        stg = self.stg
        start = stg.new_state()
        stg.start = start.id
        cursor = _Cursor()
        cursor.state = start
        root_tasks = self._block_tasks(self.cdfg, self.cdfg.block(self.cdfg.root_region))
        cursor, _ = self._schedule_tasks(root_tasks, cursor)
        done = stg.new_state()
        stg.done = done.id
        if cursor.state is not None:
            self.stg.add_transition(cursor.state.id, done.id)
        else:
            # Nothing was placed after the last fork: route its guards
            # straight to done instead of spending an empty cycle.
            for src, conds in cursor.sources:
                self.stg.add_transition(src, done.id, conds)
        stg.validate()
        stg._plan = self._plan_out
        return stg

    def _schedule_tasks(self, tasks: list[tuple[str, int]], cursor: _Cursor,
                        optionals: list[int] = ()) -> tuple[_Cursor, list[int]]:
        """Drain ``tasks`` (required); place ``optionals`` opportunistically.

        Returns the final open cursor and the optionals actually placed.
        """
        pending_ops = [n for kind, n in tasks if kind == "op"]
        pending_regions = [r for kind, r in tasks if kind == "region"]
        optional_pool = [n for n in optionals if n not in self.done_nodes]
        placed_optionals: list[int] = []

        # Readiness is monotone within one invocation: the done sets only
        # net-grow between the points this loop observes them (nested arm
        # or kernel scheduling shrinks them temporarily, but restores a
        # superset before returning).  Once ready, always ready — so a
        # positive answer is memoized and never re-derived.
        ready: set[int] = set()
        op_ready = self._op_ready

        def is_ready(node_id: int) -> bool:
            if node_id in ready:
                return True
            if op_ready(node_id):
                ready.add(node_id)
                return True
            return False

        while pending_ops or pending_regions:
            # 1. pack ready required ops (and optionals) into the open state.
            # Placement failure is permanent while the open state lasts:
            # occupancy, register writes and chained starts only grow, and
            # the state's cycle window is fixed once it holds an op — so a
            # node that failed to place is skipped, not retried.
            progressed = True
            failed: set[int] = set()
            while progressed:
                progressed = False
                candidates = [n for n in pending_ops
                              if n not in failed and is_ready(n)]
                candidates.sort(key=lambda n: (-self.heights.get(n, 0.0), n))
                for node_id in candidates:
                    if self._try_place(cursor, node_id):
                        pending_ops.remove(node_id)
                        progressed = True
                        break
                    failed.add(node_id)
                else:
                    # No required op fit; try optionals (lower priority).
                    opt = [n for n in optional_pool
                           if n not in failed and is_ready(n)]
                    opt.sort(key=lambda n: (-self.heights.get(n, 0.0), n))
                    for node_id in opt:
                        if self._try_place(cursor, node_id):
                            optional_pool.remove(node_id)
                            placed_optionals.append(node_id)
                            progressed = True
                            break
                        failed.add(node_id)

            if not pending_ops and not pending_regions:
                break

            # 2. a ready region?
            ready_regions = [r for r in pending_regions if self._region_ready(r)]
            ready_ops_exist = any(is_ready(n) for n in pending_ops)

            enter_region = False
            if ready_regions:
                if self.options.branch_parallel:
                    enter_region = True
                else:
                    enter_region = not ready_ops_exist

            if enter_region:
                region_id = ready_regions[0]
                region = self.cdfg.region(region_id)
                extra: list[int] = []
                if self.options.branch_parallel:
                    extra = [n for n in pending_ops + optional_pool
                             if n not in self.done_nodes]
                if isinstance(region, IfRegion):
                    cursor = self._run_fragment(
                        "if", (region.id,), cursor, extra,
                        lambda c: self._schedule_if(region, c, extra))
                    scheduled_regions = [region.id]
                else:
                    fused: list[LoopRegion] = [region]
                    if self.options.fuse_loops and self.options.hoist_loop_control:
                        for other_id in ready_regions[1:]:
                            other = self.cdfg.region(other_id)
                            if (isinstance(other, LoopRegion) and len(fused) < 2
                                    and self._fusable(fused[0], other)):
                                fused.append(other)
                    cursor = self._run_fragment(
                        "loops", tuple(loop.id for loop in fused), cursor, extra,
                        lambda c: self._schedule_loops(fused, c, extra))
                    scheduled_regions = [loop.id for loop in fused]
                for rid in scheduled_regions:
                    pending_regions.remove(rid)
                pending_ops = [n for n in pending_ops if n not in self.done_nodes]
                newly = [n for n in optional_pool if n in self.done_nodes]
                placed_optionals.extend(newly)
                optional_pool = [n for n in optional_pool if n not in self.done_nodes]
                continue

            if ready_ops_exist:
                # Ready ops exist but none fit: advance to the next state.
                cursor = self._advance(cursor)
                continue

            self._raise_deadlock(pending_ops, pending_regions)

        return cursor, placed_optionals

    def _raise_deadlock(self, pending_ops, pending_regions) -> None:
        lines = ["scheduler deadlock; unready tasks:"]
        for node_id in pending_ops:
            node = self.cdfg.node(node_id)
            unmet = [d for d in self._strong.get(node_id, ()) if not self._dep_satisfied(d)]
            weak = [r for r in self._weak_readers.get(node_id, ()) if r not in self.done_nodes]
            lines.append(f"  op {node.name}: strong={unmet} weak_readers={weak}")
        for region_id in pending_regions:
            unmet = [d for d in self._region_deps[region_id] if not self._dep_satisfied(d)]
            lines.append(f"  region {region_id}: deps={unmet}")
        raise ScheduleError("\n".join(lines))

    # ------------------------------------------------------------- fragments

    def _run_fragment(self, kind: str, region_ids: tuple, cursor: _Cursor,
                      extra: list[int], execute) -> _Cursor:
        """Schedule one region fragment, replaying a recorded script if legal.

        The fingerprint digests everything the fragment execution can
        read (see :mod:`repro.sched.plan`); on a match against the parent
        plan the recorded effects are re-applied verbatim — bit-identical
        to genuine execution — and the greedy packing is skipped.  Either
        way the (new or copied) script is recorded into this run's plan
        so the *next* derivation can replay against this schedule.
        """
        from repro.sched.plan import (
            _Recording, extract_script, fragment_fingerprint, replay_script)

        fingerprint = fragment_fingerprint(self, kind, region_ids, cursor, extra)
        if self._plan_in is not None:
            script = self._plan_in.get(fingerprint)
            if script is not None:
                exit_state, exit_sources = replay_script(self, script, cursor)
                self.replayed_fragments += 1
                self._plan_out[fingerprint] = script
                out = _Cursor(sources=list(exit_sources))
                out.state = exit_state
                return out
        recording = _Recording(self, cursor)
        exit_cursor = execute(cursor)
        script = extract_script(self, recording, exit_cursor)
        if script is not None:
            self._plan_out[fingerprint] = script
        return exit_cursor

    # ------------------------------------------------------------ conditionals

    def _schedule_if(self, region: IfRegion, cursor: _Cursor,
                     extra: list[int]) -> _Cursor:
        cdfg = self.cdfg
        cond = region.cond_node
        if cdfg.node(cond).is_schedulable and cond not in self.done_nodes:
            raise ScheduleError(
                f"if-region {region.id}: condition {cdfg.node(cond).name} not scheduled")
        fork_sources = self._fork_sources(cursor)

        then_tasks = self._block_tasks(cdfg, cdfg.block(region.then_block))
        else_tasks = self._block_tasks(cdfg, cdfg.block(region.else_block))
        then_subtree = self._region_task_nodes(region.then_block)
        else_subtree = self._region_task_nodes(region.else_block)

        snapshot_nodes = set(self.done_nodes)
        snapshot_regions = set(self.done_regions)

        # While one arm is scheduled, ops in the *opposite* arm can never
        # execute on this path, so they must not gate readiness: a shared
        # outside op whose weak (write-after-read) or WAW dependency sits in
        # the other arm is vacuously ordered there.  Without this, such an
        # op placed opportunistically in the then arm deadlocks when the
        # else arm mirrors it (the then-arm reader never runs on that path).
        self.done_nodes |= else_subtree

        # Then arm (greedy on the shared external ops).
        then_cursor = _Cursor(sources=[(s, self._and_cond(c, cond, True))
                                       for s, c in fork_sources])
        then_cursor, placed_shared = self._schedule_tasks(
            then_tasks, then_cursor, optionals=list(extra))
        then_done_nodes = set(self.done_nodes)
        then_done_regions = set(self.done_regions)

        # Else arm must mirror exactly the shared ops the then arm placed.
        self.done_nodes = snapshot_nodes | then_subtree
        self.done_regions = set(snapshot_regions)
        else_required = else_tasks + [("op", n) for n in placed_shared]
        else_cursor = _Cursor(sources=[(s, self._and_cond(c, cond, False))
                                       for s, c in fork_sources])
        else_cursor, _ = self._schedule_tasks(else_required, else_cursor)

        self.done_nodes |= then_done_nodes
        self.done_regions |= then_done_regions
        self.done_regions.add(region.id)

        join = _Cursor()
        for arm_cursor in (then_cursor, else_cursor):
            if arm_cursor.state is not None:
                join.sources.append((arm_cursor.state.id, frozenset()))
            else:
                join.sources.extend(arm_cursor.sources)
        return join

    @staticmethod
    def _and_cond(conds: frozenset[tuple[int, bool]], cond: int,
                  value: bool) -> frozenset[tuple[int, bool]]:
        return conds | {(cond, value)}

    # ---------------------------------------------------------------- loops

    def _loop_rw_sets(self, loop: LoopRegion) -> tuple[frozenset, frozenset]:
        """(carriers written inside, carriers read from outside) of a loop."""
        cache = self.analysis.loop_rw
        got = cache.get(loop.id)
        if got is not None:
            return got
        cdfg = self.cdfg
        subtree = region_subtree(cdfg, loop.id)
        inside = {n.id for n in cdfg.nodes.values() if n.region in subtree}
        writes = {cdfg.node(n).carrier for n in inside
                  if cdfg.node(n).carrier is not None}
        reads: set[str] = set()
        for node_id in inside:
            for edge in cdfg.in_edges(node_id):
                src = cdfg.node(edge.src)
                if edge.src not in inside and src.carrier is not None:
                    reads.add(src.carrier)
        for cv in loop.carried:
            if cv.init_src is not None:
                src = cdfg.node(cv.init_src)
                if src.carrier is not None:
                    reads.add(src.carrier)
        got = cache[loop.id] = (frozenset(writes), frozenset(reads))
        return got

    def _fusable(self, a: LoopRegion, b: LoopRegion) -> bool:
        writes_a, reads_a = self._loop_rw_sets(a)
        writes_b, reads_b = self._loop_rw_sets(b)
        return not (writes_a & writes_b) and not (writes_a & reads_b) \
            and not (writes_b & reads_a)

    def _schedule_loops(self, loops: list[LoopRegion], cursor: _Cursor,
                        extra: list[int]) -> _Cursor:
        cdfg = self.cdfg
        hoist = self.options.hoist_loop_control

        test_tasks: list[tuple[str, int]] = []
        for loop in loops:
            test_tasks.extend(self._block_tasks(cdfg, cdfg.block(loop.test_block)))

        if not hoist:
            if len(loops) != 1:
                raise ScheduleError("loop fusion requires loop-control hoisting")
            return self._schedule_loop_nonhoist(loops[0], cursor)

        # Prologue: iteration-0 tests, packed with surrounding ready ops.
        cursor, _ = self._schedule_tasks(test_tasks, cursor, optionals=list(extra))
        fork_sources = self._fork_sources(cursor)
        conds = [loop.cond_node for loop in loops]
        exit_cursor = _Cursor()

        if len(loops) == 1:
            kernels = {(True,): [loops[0]]}
        else:
            kernels = {
                (True, True): loops,
                (True, False): [loops[0]],
                (False, True): [loops[1]],
            }

        kernel_entry: dict[tuple[bool, ...], State] = {}
        for key in kernels:
            kernel_entry[key] = self.stg.new_state()

        # Entry transitions from the prologue.
        for src, guard in fork_sources:
            for key, members in kernels.items():
                full = set(guard) | {(c, v) for c, v in zip(conds, key)}
                self.stg.add_transition(src, kernel_entry[key].id, frozenset(full))
            all_false = set(guard) | {(c, False) for c in conds}
            exit_cursor.sources.append((src, frozenset(all_false)))

        # Schedule each kernel.
        for key, members in kernels.items():
            member_ids = frozenset(l.id for l in members)
            kernel_tasks: list[tuple[str, int]] = []
            mask_nodes: set[int] = set()
            mask_regions: set[int] = set()
            for loop in members:
                kernel_tasks.extend(self._block_tasks(cdfg, cdfg.block(loop.body_block)))
                kernel_tasks.extend(self._block_tasks(cdfg, cdfg.block(loop.test_block)))
                mask_nodes |= self._region_task_nodes(loop.body_block)
                mask_nodes |= self._region_task_nodes(loop.test_block)
                for rid in region_subtree(cdfg, loop.body_block):
                    region = cdfg.region(rid)
                    if isinstance(region, (IfRegion, LoopRegion)):
                        mask_regions.add(rid)

            saved_nodes = set(self.done_nodes)
            saved_regions = set(self.done_regions)
            self.done_nodes -= mask_nodes
            self.done_regions -= mask_regions

            body_cursor = _Cursor()
            body_cursor.state = kernel_entry[key]
            saved_ctx = self._kernel_ctx
            self._kernel_ctx = saved_ctx | member_ids
            try:
                body_cursor, _ = self._schedule_tasks(kernel_tasks, body_cursor)
            finally:
                self._kernel_ctx = saved_ctx
            end_state = self._materialize(body_cursor)

            self.done_nodes |= saved_nodes | mask_nodes
            self.done_regions |= saved_regions | mask_regions

            # Back / drain / exit transitions from the kernel end.
            member_conds = [loop.cond_node for loop in members]
            if len(members) == 1:
                self.stg.add_transition(end_state.id, kernel_entry[key].id,
                                        frozenset({(member_conds[0], True)}))
                exit_cursor.sources.append(
                    (end_state.id, frozenset({(member_conds[0], False)})))
            else:
                c1, c2 = member_conds
                self.stg.add_transition(end_state.id, kernel_entry[(True, True)].id,
                                        frozenset({(c1, True), (c2, True)}))
                self.stg.add_transition(end_state.id, kernel_entry[(True, False)].id,
                                        frozenset({(c1, True), (c2, False)}))
                self.stg.add_transition(end_state.id, kernel_entry[(False, True)].id,
                                        frozenset({(c1, False), (c2, True)}))
                exit_cursor.sources.append(
                    (end_state.id, frozenset({(c1, False), (c2, False)})))

        for loop in loops:
            self.done_regions.add(loop.id)
        return exit_cursor

    def _schedule_loop_nonhoist(self, loop: LoopRegion, cursor: _Cursor) -> _Cursor:
        """Baseline loop shape: test states -> body states -> back to test."""
        cdfg = self.cdfg
        test_entry = self.stg.new_state()
        for src, guard in self._fork_sources(cursor):
            self.stg.add_transition(src, test_entry.id, guard)

        test_tasks = self._block_tasks(cdfg, cdfg.block(loop.test_block))
        test_cursor = _Cursor()
        test_cursor.state = test_entry

        mask_nodes = self._region_task_nodes(loop.test_block) \
            | self._region_task_nodes(loop.body_block)
        mask_regions = {rid for rid in region_subtree(cdfg, loop.body_block)
                        if isinstance(cdfg.region(rid), (IfRegion, LoopRegion))}
        saved_nodes = set(self.done_nodes)
        saved_regions = set(self.done_regions)
        self.done_nodes -= mask_nodes
        self.done_regions -= mask_regions

        test_cursor, _ = self._schedule_tasks(test_tasks, test_cursor)
        test_end = self._materialize(test_cursor)

        body_tasks = self._block_tasks(cdfg, cdfg.block(loop.body_block))
        exit_cursor = _Cursor()
        exit_cursor.sources.append((test_end.id, frozenset({(loop.cond_node, False)})))
        if body_tasks:
            body_entry = self.stg.new_state()
            self.stg.add_transition(test_end.id, body_entry.id,
                                    frozenset({(loop.cond_node, True)}))
            body_cursor = _Cursor()
            body_cursor.state = body_entry
            body_cursor, _ = self._schedule_tasks(body_tasks, body_cursor)
            body_end = self._materialize(body_cursor)
            self.stg.add_transition(body_end.id, test_entry.id)
        else:
            self.stg.add_transition(test_end.id, test_entry.id,
                                    frozenset({(loop.cond_node, True)}))

        self.done_nodes |= saved_nodes | mask_nodes
        self.done_regions |= saved_regions | mask_regions
        self.done_regions.add(loop.id)
        return exit_cursor


def schedule(cdfg: CDFG, binding: Binding, options: ScheduleOptions | None = None,
             cache=None, parent: STG | None = None) -> STG:
    """Schedule a CDFG under a binding; returns a validated STG.

    ``cache`` is an optional :class:`~repro.core.cache.SynthesisCache`;
    when given, the result is memoized on (CDFG id, resource-constraint
    signature, options) — the engine is deterministic in those inputs, and
    the STG is immutable once returned, so a cached STG is shared between
    the design points that would have scheduled identically (see
    :meth:`~repro.core.binding.Binding.schedule_signature`).

    ``parent`` is the STG of the design point the new binding derives
    from; its recorded fragment plan lets the engine *replay* every
    region whose scheduling inputs did not change and re-run the greedy
    packing only inside genuinely affected regions.  The result is
    bit-identical to a from-scratch run (state ids included) — the plan
    is a pure accelerator, so the memo key is unchanged.
    """
    from repro.core.profile import PROFILER

    options = options or ScheduleOptions()

    def compute() -> STG:
        plan = getattr(parent, "_plan", None) if parent is not None else None
        with PROFILER.stage("schedule") as token:
            engine = _Engine(cdfg, binding, options, plan_in=plan)
            stg = engine.run()
            token.incremental = engine.replayed_fragments > 0
            return stg

    if cache is None:
        return compute()
    key = (id(cdfg), binding.schedule_signature(), options)
    return cache.schedule.get_or_compute(key, compute)
