"""Lowering: a bound :class:`~repro.rtl.architecture.Architecture` to a
word-level netlist (:mod:`repro.hdl.netlist`).

The emitted module follows a start/done handshake:

* ``rst`` puts the FSM in an IDLE state and clears every register;
* asserting ``start`` for one cycle loads the primary-input registers from
  the input pins and enters the STG's start state;
* each STG state runs for its (normalized) duration in cycles — a dwell
  counter realizes multi-cycle states — with register writes enabled on
  the last cycle only;
* reaching the STG's done state asserts ``done`` for one cycle (outputs
  are stable in their registers) and returns to IDLE.

Structure mirrors the architecture one-to-one:

* every binding register / materialized temporary is a ``reg`` at its
  natural width, read through explicit sign/zero-extending view wires;
* every functional unit is one output wire computing the bound operation
  of whichever node it executes in the current state;
* every multiplexed datapath port is emitted as the *exact 2:1 tree* of
  ``rtl/mux.py`` — nested 2:1 muxes steered by a per-state select — so a
  Huffman-restructured tree emits a different (equivalent) netlist than a
  balanced one;
* the controller is a binary-encoded FSM over the STG's states whose
  next-state logic evaluates the guarded transitions in
  :meth:`~repro.sched.stg.STG.ordered_transitions` order.

Execution semantics deliberately mirror :mod:`repro.gatesim`: all
operations of the active state evaluate combinationally (chained through
FU output wires), register writes commit at state end, and transition
conditions read the chained value when the condition node executes in the
current state, else its stored register/temporary.  Where an FU or port
hosts several mutually-exclusive executions in one state, selection is by
the operations' branch guards (the hardware-faithful reading of
Section 3.2.3 sharing).
"""

from __future__ import annotations

from repro.errors import HDLError
from repro.cdfg.node import OpKind
from repro.rtl.architecture import Architecture
from repro.rtl.builder import edge_source, producer_signal
from repro.rtl.mux import MuxSource
from repro.hdl.netlist import (
    ECase,
    EConst,
    EMemRead,
    EMux,
    EOp,
    ERef,
    EWrap,
    Memory,
    MemoryPort,
    Netlist,
    PortDecl,
    WORD,
    Wire,
    Register,
)

#: CDFG operation kind -> netlist operator.
_KIND_OPS = {
    OpKind.ADD: "add", OpKind.SUB: "sub", OpKind.MUL: "mul",
    OpKind.SHL: "shl", OpKind.SHR: "shr",
    OpKind.LT: "lt", OpKind.GT: "gt", OpKind.LE: "le", OpKind.GE: "ge",
    OpKind.EQ: "eq", OpKind.NE: "ne",
    OpKind.LAND: "land", OpKind.LOR: "lor", OpKind.LNOT: "lnot",
    OpKind.BAND: "band", OpKind.BOR: "bor", OpKind.BXOR: "bxor",
}


def lower_architecture(arch: Architecture, name: str = "impact") -> Netlist:
    """Lower a bound architecture to a netlist (validated before return)."""
    netlist = _Lower(arch, name).run()
    netlist.validate()
    return netlist


class _Lower:
    def __init__(self, arch: Architecture, name: str):
        self.arch = arch
        self.cdfg = arch.cdfg
        self.stg = arch.stg
        self.name = name
        self.durations = arch.duration_map()
        self.sids = sorted(self.stg.states)
        if self.stg.start == self.stg.done:
            raise HDLError("cannot lower an STG whose start state is its done state")
        self.idle = max(self.sids) + 1
        self.sbits = max(1, self.idle.bit_length())
        exec_durs = [d for sid, d in self.durations.items() if sid != self.stg.done]
        self.max_dur = max(exec_durs, default=1)
        self.multi_cycle = self.max_dur > 1
        #: chaining order of ops inside each state (gatesim's order).
        self.ordered_ops = {
            sid: sorted(state.ops, key=lambda op: (op.start, op.node))
            for sid, state in self.stg.states.items()
        }
        self._used_conds: set[int] = set()
        self._reg_signed: dict[int, bool] = {}
        # Wires are built into named sections and concatenated for a
        # readable emission order; references may be forward.
        self.sections: dict[str, list[Wire]] = {
            key: [] for key in ("clocking", "views", "selects", "ports",
                                "mems", "shifts", "fus", "conds", "writes",
                                "control", "outputs")
        }

    # -- naming conventions -------------------------------------------------------

    def _reg_view(self, reg_id: int) -> str:
        return f"rv{reg_id}"

    def _state_code(self, sid: int) -> EConst:
        return EConst(sid, self.sbits)

    # -- expression helpers -------------------------------------------------------

    def _source_expr(self, source: tuple):
        kind = source[0]
        if kind == "const":
            return EConst(int(source[1]))
        if kind == "reg":
            return ERef(self._reg_view(source[1]))
        if kind == "tmp":
            return ERef(f"tv{source[1]}")
        if kind == "fu":
            return ERef(f"fu{source[1]}_out")
        if kind == "wire":
            return ERef(f"w{source[1]}")
        if kind == "pin":
            return ERef(f"pv_{source[1]}")
        raise HDLError(f"unknown datapath source {source!r}")

    def _conds_expr(self, conds) -> object:
        """Conjunction over (condition node, wanted value) terms."""
        terms = []
        for cond, want in sorted(conds):
            self._used_conds.add(cond)
            terms.append(EOp("ne" if want else "eq",
                             (ERef(f"cond{cond}"), EConst(0))))
        if not terms:
            return EConst(1)
        acc = terms[0]
        for term in terms[1:]:
            acc = EOp("land", (acc, term))
        return acc

    def _guarded(self, entries: list[tuple[int, int, object]]) -> object:
        """Resolve several same-state executions by their branch guards.

        ``entries`` is ``[(chain_order, node_id, expr)]``; mutually
        exclusive guards mean at most one applies, later chained ops take
        priority (mirrors gatesim's chaining order).
        """
        entries = sorted(entries)
        acc = entries[0][2]
        for _order, node_id, expr in entries[1:]:
            guard = self._conds_expr(self.cdfg.node(node_id).guard)
            acc = expr if guard == EConst(1) else EMux(guard, expr, acc)
        return acc

    def _state_case(self, by_state: dict[int, object], default,
                    collapse: bool = False,
                    extra_arms: dict[int, object] | None = None,
                    subject: str = "state",
                    subject_width: int | None = None):
        """A ``case (<subject>)`` expression from per-state values.

        Groups states with structurally equal expressions into one arm;
        with ``collapse`` a single distinct expression is returned bare
        (the value is don't-care in the remaining states).
        """
        arms_by_expr: dict[object, list[int]] = {}
        for sid in sorted(by_state):
            arms_by_expr.setdefault(by_state[sid], []).append(sid)
        if extra_arms:
            for code in sorted(extra_arms):
                arms_by_expr.setdefault(extra_arms[code], []).append(code)
        if not arms_by_expr:
            return default
        if collapse and len(arms_by_expr) == 1:
            return next(iter(arms_by_expr))
        arms = tuple(
            (tuple(codes), expr)
            for expr, codes in sorted(arms_by_expr.items(), key=lambda kv: kv[1])
        )
        return ECase(ERef(subject), arms, default,
                     self.sbits if subject_width is None else subject_width)

    def _state_match(self, sids: list[int]) -> object:
        terms = [EOp("eq", (ERef("state"), self._state_code(sid)))
                 for sid in sorted(sids)]
        acc = terms[0]
        for term in terms[1:]:
            acc = EOp("lor", (acc, term))
        return acc

    # -- node computation ---------------------------------------------------------

    def _op_expr(self, node, ins: list[object]) -> object:
        op = _KIND_OPS.get(node.kind)
        if op is None:
            raise HDLError(f"node {node.name}: kind {node.kind.value!r} has no "
                           f"hardware lowering")
        if op in ("shl", "shr"):
            expr = EOp(op, (ins[0], EOp("band", (ins[1], EConst(63)))))
        elif op == "lnot":
            expr = EOp(op, (ins[0],))
        else:
            expr = EOp(op, (ins[0], ins[1]))
        return EWrap(expr, node.width, node.signed)

    def _chained_value(self, node_id: int, state_id: int) -> object:
        """The combinational value a node presents while executing."""
        node = self.cdfg.node(node_id)
        if node.needs_fu:
            return ERef(f"fu{self.arch.binding.fu_of(node_id).id}_out")
        if node.kind is OpKind.COPY:
            source = edge_source(self.arch, self.cdfg.in_edge(node_id, 0), state_id)
            return EWrap(self._source_expr(source), node.width, node.signed)
        return ERef(f"w{node_id}")

    # -- phases -------------------------------------------------------------------

    def run(self) -> Netlist:
        self.netlist = Netlist(name=self.name)
        self._clocking()
        self._input_ports_and_views()
        self._register_views()
        self._shift_wires()
        self._fu_wires()
        self._memory_wires()
        self._register_writes()
        self._tmp_writes()
        self._control()
        self._outputs()
        self._cond_wires()  # last: _used_conds is complete now
        for key in ("clocking", "views", "selects", "ports", "mems",
                    "shifts", "fus", "conds", "writes", "control", "outputs"):
            self.netlist.wires.extend(self.sections[key])
        self._meta()
        return self.netlist

    def _clocking(self) -> None:
        expr = (EOp("eq", (ERef("dwell"), EConst(0)))
                if self.multi_cycle else EConst(1))
        self.sections["clocking"].append(Wire(
            "last_cycle", expr, "high on the final cycle of the current state"))

    def _input_ports_and_views(self) -> None:
        for node_id in self.cdfg.input_nodes:
            node = self.cdfg.node(node_id)
            var = node.carrier
            self.netlist.inputs.append(
                PortDecl(f"in_{var}", node.width, node.signed, label=var))
            self.sections["views"].append(Wire(
                f"pv_{var}", EWrap(ERef(f"in_{var}"), node.width, node.signed),
                f"primary input {var!r}"))

    def _register_views(self) -> None:
        var_types = self.cdfg.var_types
        for reg_id, reg in sorted(self.arch.binding.regs.items()):
            signs = {var_types[c][1] for c in reg.carriers}
            if len(signs) != 1:
                raise HDLError(
                    f"register {reg_id} mixes signed and unsigned carriers "
                    f"{sorted(reg.carriers)}; not representable as one view")
            signed = signs.pop()
            self._reg_signed[reg_id] = signed
            self.sections["views"].append(Wire(
                self._reg_view(reg_id),
                EWrap(ERef(f"r{reg_id}"), reg.width, signed),
                f"register {reg_id}: {', '.join(sorted(reg.carriers))}"))
        for node_id, width in sorted(self.arch.datapath.tmp_regs.items()):
            node = self.cdfg.node(node_id)
            self.sections["views"].append(Wire(
                f"tv{node_id}", EWrap(ERef(f"t{node_id}"), width, node.signed),
                f"temporary of {node.name}"))

    # -- datapath ----------------------------------------------------------------

    def _port_drivers(self, port) -> tuple[dict[int, list], list]:
        """Split a port's drivers into per-state executions and pin loads.

        Returns ``({state: [(chain_order, node, source)]}, [pin_sources])``.
        """
        input_nodes = set(self.cdfg.input_nodes)
        by_state: dict[int, list] = {}
        pins = []
        for (node_id, state_id), source in sorted(port.drivers.items()):
            if node_id in input_nodes:
                if source[0] != "pin":
                    raise HDLError(f"input node driver with source {source!r}")
                if source not in pins:
                    pins.append(source)
                continue
            ordered = [op.node for op in self.ordered_ops[state_id]]
            order = ordered.index(node_id)
            by_state.setdefault(state_id, []).append((order, node_id, source))
        if len(pins) > 1:
            raise HDLError(f"port {port.key!r} loaded from several input pins "
                           f"{pins}; cannot emit a single load path")
        return by_state, pins

    def _tree_expr(self, shape, sel: str, sources: list) -> object:
        """The port's 2:1 multiplexer tree, steered by source index."""
        if isinstance(shape, MuxSource):
            return self._source_expr(shape.key)
        left, right = shape
        right_keys = [s.key for s in _leaves(right)]
        membership = None
        for key in right_keys:
            term = EOp("eq", (ERef(sel), EConst(sources.index(key))))
            membership = term if membership is None else EOp("lor", (membership, term))
        return EMux(membership,
                    self._tree_expr(right, sel, sources),
                    self._tree_expr(left, sel, sources))

    def _emit_port(self, key: tuple, wire_name: str, sel_name: str,
                   extra_sel_arms: dict[int, object] | None = None) -> bool:
        """Emit the select + data wires for one multiplexed port.

        Returns False when the architecture has no such port.
        """
        port = self.arch.datapath.ports.get(key)
        if port is None:
            return False
        by_state, pins = self._port_drivers(port)
        extra = dict(extra_sel_arms or {})
        if pins:
            extra[self.idle] = EConst(port.sources.index(pins[0]))
        if port.tree is not None:
            sel_by_state = {
                sid: self._guarded([
                    (order, node, EConst(port.sources.index(source)))
                    for order, node, source in entries])
                for sid, entries in by_state.items()
            }
            self.sections["selects"].append(Wire(
                sel_name,
                self._state_case(sel_by_state, EConst(0), extra_arms=extra),
                f"source select for {key!r} ({len(port.sources)} sources)"))
            expr = self._tree_expr(port.tree.shape, sel_name, port.sources)
        else:
            expr = self._source_expr(port.sources[0])
        self.sections["ports"].append(Wire(
            wire_name, expr, f"datapath port {key!r}"))
        return True

    def _shift_wires(self) -> None:
        """Constant shifts and narrowing COPYs are wiring, not FUs; each
        still needs a value wire."""
        for node in sorted(self.cdfg.op_nodes(), key=lambda n: n.id):
            if node.needs_fu or node.mem is not None:
                continue
            if node.kind is OpKind.COPY:
                # A COPY gets its own wire only when some chained consumer
                # reads it as ("wire", id) — i.e. its re-typing is not
                # value-preserving (see rtl.builder.producer_signal).
                if not any(producer_signal(self.arch, node.id, sid)
                           == ("wire", node.id)
                           for sid in self.stg.states_of_node(node.id)):
                    continue
                by_state = {
                    sid: EWrap(self._source_expr(
                        edge_source(self.arch, self.cdfg.in_edge(node.id, 0),
                                    sid)), node.width, node.signed)
                    for sid in self.stg.states_of_node(node.id)
                }
                self.sections["shifts"].append(Wire(
                    f"w{node.id}",
                    self._state_case(by_state, EConst(0), collapse=True),
                    f"narrowing copy {node.name}"))
                continue
            by_state = {}
            for sid in self.stg.states_of_node(node.id):
                ins = [self._source_expr(edge_source(self.arch, e, sid))
                       for e in self.cdfg.in_edges(node.id)]
                by_state[sid] = self._op_expr(node, ins)
            self.sections["shifts"].append(Wire(
                f"w{node.id}",
                self._state_case(by_state, EConst(0), collapse=True),
                f"constant shift {node.name}"))

    def _fu_wires(self) -> None:
        for fu_id, fu in sorted(self.arch.binding.fus.items()):
            n_ports = max(len(self.cdfg.in_edges(op)) for op in fu.ops)
            for k in range(n_ports):
                self._emit_port(("fu_in", fu_id, k),
                                f"fu{fu_id}_in{k}", f"sel_fu{fu_id}_{k}")
            by_state: dict[int, list] = {}
            for sid in self.sids:
                for order, op in enumerate(self.ordered_ops[sid]):
                    if op.node in fu.ops:
                        node = self.cdfg.node(op.node)
                        ins = [ERef(f"fu{fu_id}_in{k}")
                               for k in range(len(self.cdfg.in_edges(op.node)))]
                        by_state.setdefault(sid, []).append(
                            (order, op.node, self._op_expr(node, ins)))
            expr_by_state = {sid: self._guarded(entries)
                             for sid, entries in by_state.items()}
            ops = ", ".join(sorted(self.cdfg.node(op).name for op in fu.ops))
            self.sections["fus"].append(Wire(
                f"fu{fu_id}_out",
                self._state_case(expr_by_state, EConst(0), collapse=True),
                f"FU {fu_id} [{fu.module.name} w{fu.width}]: {ops}"))

    def _memory_wires(self) -> None:
        """RAM blocks: per-(array, port) address/data buses through the
        standard multiplexed-port machinery, one asynchronous read wire
        per load-carrying port, and a state-matched write enable per
        store-capable port.

        Every load's value wire ``w<id>`` re-signs the raw word the read
        wire presents, so chained consumers and temporaries see exactly
        the element-typed value the interpreter computes; a store commits
        on the last cycle of its state, mirroring the register writes.
        """
        binding = self.arch.binding
        for array in sorted(binding.mems):
            mem = binding.mems[array]
            by_port: dict[int, list[int]] = {}
            for node_id, port in sorted(mem.port_of.items()):
                by_port.setdefault(port, []).append(node_id)
            ports = []
            for port in sorted(by_port):
                nodes = by_port[port]
                addr_name = f"mem_{array}_addr{port}"
                if not self._emit_port(("mem_addr", array, port),
                                       addr_name, f"sel_{addr_name}"):
                    continue
                loads = [n for n in nodes
                         if self.cdfg.node(n).kind is OpKind.LOAD]
                stores = [n for n in nodes
                          if self.cdfg.node(n).kind is OpKind.STORE]
                din_name = we_name = None
                if stores:
                    din_name = f"mem_{array}_din{port}"
                    self._emit_port(("mem_din", array, port),
                                    din_name, f"sel_{din_name}")
                    we_name = f"mem_{array}_we{port}"
                    store_states = sorted(
                        {sid for n in stores
                         for sid in self.stg.states_of_node(n)})
                    self.sections["mems"].append(Wire(
                        we_name, self._write_enable(store_states, False),
                        f"write enable, array {array!r} port {port}"))
                if loads:
                    q_name = f"mem_{array}_q{port}"
                    self.sections["mems"].append(Wire(
                        q_name, EMemRead(f"mem_{array}", ERef(addr_name)),
                        f"asynchronous read, array {array!r} port {port}"))
                    for node_id in loads:
                        node = self.cdfg.node(node_id)
                        self.sections["mems"].append(Wire(
                            f"w{node_id}",
                            EWrap(ERef(q_name), node.width, node.signed),
                            f"load {node.name}"))
                ports.append(MemoryPort(addr=addr_name, din=din_name,
                                        we=we_name))
            self.netlist.mems.append(Memory(
                name=f"mem_{array}", width=mem.width, depth=mem.depth,
                ports=ports))

    # -- storage ------------------------------------------------------------------

    def _write_enable(self, exec_states: list[int], pin_load: bool) -> object:
        terms = []
        if exec_states:
            terms.append(EOp("land",
                             (self._state_match(exec_states), ERef("last_cycle"))))
        if pin_load:
            terms.append(EOp("land",
                             (EOp("eq", (ERef("state"), EConst(self.idle, self.sbits))),
                              EOp("ne", (ERef("start"), EConst(0))))))
        if not terms:
            return EConst(0)
        acc = terms[0]
        for term in terms[1:]:
            acc = EOp("lor", (acc, term))
        return acc

    def _register_writes(self) -> None:
        for reg_id, reg in sorted(self.arch.binding.regs.items()):
            key = ("reg_in", reg_id)
            port = self.arch.datapath.ports.get(key)
            if port is None:
                # Never written: holds its reset value.
                self.sections["writes"].append(Wire(f"din_r{reg_id}", EConst(0)))
                self.sections["writes"].append(Wire(f"we_r{reg_id}", EConst(0)))
            else:
                by_state, pins = self._port_drivers(port)
                self._emit_port(key, f"din_r{reg_id}", f"sel_r{reg_id}")
                self.sections["writes"].append(Wire(
                    f"we_r{reg_id}",
                    self._write_enable(sorted(by_state), bool(pins)),
                    f"write enable, register {reg_id}"))
            self.netlist.regs.append(Register(
                f"r{reg_id}", reg.width, d=f"din_r{reg_id}", en=f"we_r{reg_id}",
                comment=f"{', '.join(sorted(reg.carriers))}"))

    def _tmp_writes(self) -> None:
        for node_id, width in sorted(self.arch.datapath.tmp_regs.items()):
            key = ("tmp_in", node_id)
            port = self.arch.datapath.ports.get(key)
            if port is None:
                self.sections["writes"].append(Wire(f"din_t{node_id}", EConst(0)))
                self.sections["writes"].append(Wire(f"we_t{node_id}", EConst(0)))
            else:
                by_state, _pins = self._port_drivers(port)
                self._emit_port(key, f"din_t{node_id}", f"sel_t{node_id}")
                self.sections["writes"].append(Wire(
                    f"we_t{node_id}",
                    self._write_enable(sorted(by_state), False),
                    f"write enable, temporary {node_id}"))
            self.netlist.regs.append(Register(
                f"t{node_id}", width, d=f"din_t{node_id}", en=f"we_t{node_id}",
                comment=f"temporary of {self.cdfg.node(node_id).name}"))

    # -- controller ---------------------------------------------------------------

    def _transition_expr(self, sid: int) -> object:
        transitions = self.stg.ordered_transitions(sid)
        if not transitions:
            raise HDLError(f"state {sid} has no outgoing transition")
        expr = self._state_code(transitions[-1].dst)
        for t in reversed(transitions[:-1]):
            expr = EMux(self._conds_expr(t.conds), self._state_code(t.dst), expr)
        return expr

    def _control(self) -> None:
        by_state: dict[int, object] = {}
        for sid in self.sids:
            if sid == self.stg.done:
                by_state[sid] = EConst(self.idle, self.sbits)
                continue
            advance = self._transition_expr(sid)
            by_state[sid] = (EMux(ERef("last_cycle"), advance, self._state_code(sid))
                             if self.multi_cycle else advance)
        idle_arm = {self.idle: EMux(EOp("ne", (ERef("start"), EConst(0))),
                                    self._state_code(self.stg.start),
                                    EConst(self.idle, self.sbits))}
        self.sections["control"].append(Wire(
            "state_next",
            self._state_case(by_state, EConst(self.idle, self.sbits),
                             extra_arms=idle_arm),
            "controller next-state logic"))
        self.netlist.regs.append(Register(
            "state", self.sbits, d="state_next", en=None, reset=self.idle,
            comment="controller state register"))
        if self.multi_cycle:
            dwell_bits = max(1, (self.max_dur - 1).bit_length())
            # The done state always exits after one cycle (it only strobes
            # ``done``), so it must never load the dwell counter — a stale
            # nonzero dwell would corrupt the next pass's first state.
            self.sections["control"].append(Wire(
                "dur_next",
                self._state_case({sid: EConst(self.durations[sid] - 1)
                                  for sid in self.sids
                                  if self.durations[sid] > 1
                                  and sid != self.stg.done},
                                 EConst(0), subject="state_next",
                                 subject_width=WORD),
                "dwell cycles of the next state"))
            self.sections["control"].append(Wire(
                "dwell_next",
                EMux(ERef("last_cycle"), ERef("dur_next"),
                     EOp("sub", (EWrap(ERef("dwell"), dwell_bits, False), EConst(1)))),
                "multi-cycle state dwell countdown"))
            self.netlist.regs.append(Register(
                "dwell", dwell_bits, d="dwell_next", en=None,
                comment="remaining cycles in the current state"))
        self.sections["control"].append(Wire(
            "done_w",
            EOp("eq", (ERef("state"), EConst(self.stg.done, self.sbits))),
            "pass-completion strobe"))
        self.netlist.outputs.append(
            PortDecl("done", 1, False, label=None, source="done_w"))

    def _cond_wires(self) -> None:
        for cond in sorted(self._used_conds):
            node = self.cdfg.node(cond)
            by_state = {}
            if node.is_schedulable:
                for sid in self.stg.states_of_node(cond):
                    by_state[sid] = self._chained_value(cond, sid)
            if node.carrier is not None:
                stored = ERef(self._reg_view(self.arch.binding.reg_of(node.carrier).id))
            elif cond in self.arch.datapath.tmp_regs:
                stored = ERef(f"tv{cond}")
            elif node.kind is OpKind.CONST:
                stored = EConst(node.value)
            else:
                raise HDLError(f"condition {node.name} has no stored location")
            self.sections["conds"].append(Wire(
                f"cond{cond}",
                self._state_case(by_state, stored),
                f"controller condition input: {node.name}"))

    # -- interface ----------------------------------------------------------------

    def _outputs(self) -> None:
        for out_id in self.cdfg.output_nodes:
            node = self.cdfg.node(out_id)
            name = node.name.removeprefix("out:")
            edge = self.cdfg.in_edge(out_id, 0)
            src = self.cdfg.node(edge.src)
            if src.kind is OpKind.CONST:
                source = f"outv_{name}"
                self.sections["outputs"].append(Wire(
                    source, EConst(src.value), f"constant output {name!r}"))
            elif src.carrier is not None:
                source = self._reg_view(self.arch.binding.reg_of(src.carrier).id)
            elif edge.src in self.arch.datapath.tmp_regs:
                source = f"tv{edge.src}"
            else:
                raise HDLError(f"output {name!r} has no registered source")
            self.netlist.outputs.append(
                PortDecl(f"out_{name}", node.width, node.signed,
                         label=name, source=source))

    def _meta(self) -> None:
        arch = self.arch
        self.netlist.meta = {
            "design": self.name,
            "clock_ns": arch.clock_ns,
            "encoding": {"state_bits": self.sbits, "idle": self.idle,
                         "start": self.stg.start, "done": self.stg.done},
            "states": [
                {"id": sid, "duration": self.durations[sid],
                 "ops": [self.cdfg.node(op.node).name
                         for op in self.ordered_ops[sid]]}
                for sid in self.sids
            ],
            "fus": [
                {"id": fid, "module": fu.module.name, "width": fu.width,
                 "ops": sorted(self.cdfg.node(op).name for op in fu.ops)}
                for fid, fu in sorted(arch.binding.fus.items())
            ],
            "registers": [
                {"id": rid, "width": reg.width,
                 "carriers": sorted(reg.carriers)}
                for rid, reg in sorted(arch.binding.regs.items())
            ],
            "memories": [
                {"array": array, "spec": mem.spec.name, "width": mem.width,
                 "depth": mem.depth,
                 "ports": {port: sorted(self.cdfg.node(n).name
                                        for n, p in mem.port_of.items()
                                        if p == port)
                           for port in sorted(set(mem.port_of.values()))}}
                for array, mem in sorted(arch.binding.mems.items())
            ],
            "temporaries": [
                {"node": nid, "width": width,
                 "of": self.cdfg.node(nid).name}
                for nid, width in sorted(arch.datapath.tmp_regs.items())
            ],
            "controller": {
                "states": arch.controller.n_states,
                "transitions": arch.controller.n_transitions,
                "condition_inputs": arch.controller.n_condition_inputs,
                "outputs": arch.controller.n_outputs,
            },
            "mux2_count": arch.datapath.total_mux_count(),
        }


def _leaves(shape) -> list[MuxSource]:
    if isinstance(shape, MuxSource):
        return [shape]
    return _leaves(shape[0]) + _leaves(shape[1])
