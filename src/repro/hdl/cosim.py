"""Opportunistic Icarus Verilog cosimulation.

When ``iverilog``/``vvp`` are installed, the emitted module and its
self-checking testbench are compiled and run, and the final ``COSIM
PASS``/``COSIM FAIL`` verdict is parsed; when they are not, callers fall
back to the pure-python netsim (the conformance harness treats iverilog
as an extra, optional oracle — never a required one).
"""

from __future__ import annotations

import shutil
import subprocess
import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.errors import HDLError

#: Wall-clock guard per tool invocation (seconds).
TOOL_TIMEOUT_S = 300


def iverilog_available() -> bool:
    """True when both the compiler and the runtime are on PATH."""
    return shutil.which("iverilog") is not None and shutil.which("vvp") is not None


@dataclass
class CosimResult:
    """Outcome of one compile-and-run of the emitted Verilog."""

    passed: bool
    log: str
    n_checks_failed: int = 0


def run_iverilog(verilog_text: str, testbench_text: str,
                 name: str = "impact", workdir: str | None = None) -> CosimResult:
    """Compile and simulate emitted Verilog + testbench with iverilog.

    Raises :class:`HDLError` when the tools are missing or the *compile*
    fails (a compile failure is an emission bug, not a conformance
    divergence); simulation check failures come back as a failed result.
    """
    if not iverilog_available():
        raise HDLError("iverilog/vvp not found on PATH")
    with tempfile.TemporaryDirectory(prefix="impact-cosim-") as tmp:
        base = Path(workdir) if workdir else Path(tmp)
        base.mkdir(parents=True, exist_ok=True)
        dut = base / f"{name}.v"
        tb = base / f"{name}_tb.v"
        out = base / f"{name}.vvp"
        dut.write_text(verilog_text, encoding="utf-8")
        tb.write_text(testbench_text, encoding="utf-8")
        compile_proc = subprocess.run(
            ["iverilog", "-g2005", "-o", str(out), str(dut), str(tb)],
            capture_output=True, text=True, timeout=TOOL_TIMEOUT_S)
        if compile_proc.returncode != 0:
            raise HDLError(f"iverilog compile failed:\n{compile_proc.stderr}")
        run_proc = subprocess.run(
            ["vvp", str(out)], capture_output=True, text=True,
            timeout=TOOL_TIMEOUT_S)
        log = run_proc.stdout + run_proc.stderr
        if run_proc.returncode != 0:
            raise HDLError(f"vvp failed:\n{log}")
    passed = "COSIM PASS" in log
    failed = 0
    for line in log.splitlines():
        if line.startswith("COSIM FAIL"):
            try:
                failed = int(line.split()[2])
            except (IndexError, ValueError):
                failed = 1
    if not passed and failed == 0:
        raise HDLError(f"testbench printed no verdict:\n{log}")
    return CosimResult(passed=passed, log=log, n_checks_failed=failed)
