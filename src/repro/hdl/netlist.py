"""Word-level netlist IR shared by the Verilog printer and the netlist
simulator.

The IR is deliberately tiny: every combinational signal (:class:`Wire`) is
conceptually a *signed 64-bit* value, registers store raw bit patterns at
their natural width, and the only expression forms are constants,
references, word-level operators, 2:1 multiplexers, explicit wrap/extend
nodes and a ``case``-on-signal selector.  Lowering
(:mod:`repro.hdl.lower`) encodes the whole synthesized architecture —
datapath, multiplexer trees and the controller FSM — into this one
vocabulary, so the Verilog printer (:mod:`repro.hdl.verilog`) and the
cycle-accurate simulator (:mod:`repro.hdl.netsim`) cannot disagree about
what the hardware does: they consume the same object.

Width discipline: wrapping is *explicit*.  An :class:`EWrap` node
truncates a 64-bit value to ``width`` bits and re-extends it (sign- or
zero-), mirroring both the interpreter's two's-complement semantics and
the Verilog idiom ``(x <<< K) >>> K`` / ``x & mask``.  Registers store
``width``-bit patterns; reads go through explicit wrap nodes, never raw
references, so signedness can never be lost between the two backends.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HDLError

#: Internal computation width (bits) of every combinational wire.
WORD = 64

#: Operator vocabulary of :class:`EOp` (word-level, signed semantics).
OPS = frozenset({
    "add", "sub", "mul", "shl", "shr",
    "lt", "gt", "le", "ge", "eq", "ne",
    "land", "lor", "lnot",
    "band", "bor", "bxor",
})

#: Operators yielding a 0/1 result.
BOOL_OPS = frozenset({"lt", "gt", "le", "ge", "eq", "ne", "land", "lor", "lnot"})


@dataclass(frozen=True)
class EConst:
    """A constant.  ``width`` affects only Verilog printing (sized literal
    for state codes); the value itself is the signed word-level value."""

    value: int
    width: int | None = None


@dataclass(frozen=True)
class ERef:
    """Reference to a named signal.

    Referencing a *wire* yields its signed 64-bit value; referencing a
    *register* or *input port* yields the raw stored bit pattern (a
    non-negative int), exactly as a Verilog identifier of an unsigned
    vector would.  Lowering therefore reads registers only through
    :class:`EWrap` view wires.
    """

    name: str


@dataclass(frozen=True)
class EOp:
    op: str
    args: tuple

    def __post_init__(self) -> None:
        if self.op not in OPS:
            raise HDLError(f"unknown netlist operator {self.op!r}")


@dataclass(frozen=True)
class EMux:
    """``cond != 0 ? a : b`` — one 2:1 multiplexer."""

    cond: object
    a: object
    b: object


@dataclass(frozen=True)
class EWrap:
    """Truncate to ``width`` bits, then sign- or zero-extend back to the
    64-bit word: the IR's only bit-width conversion."""

    expr: object
    width: int
    signed: bool

    def __post_init__(self) -> None:
        if not 1 <= self.width <= WORD:
            raise HDLError(f"wrap width {self.width} out of range")


@dataclass(frozen=True)
class EMemRead:
    """Asynchronous read of one memory word: ``mem[addr mod depth]``.

    The address expression is taken modulo the (power-of-two) depth and
    the raw stored word is yielded — a non-negative pattern at the
    memory's width, exactly like referencing a register — so consumers
    re-sign it through :class:`EWrap`.  To keep the printed Verilog
    legal (a word select cannot nest inside arbitrary expressions in
    Verilog-2001), lowering emits each memory read as the *top-level*
    expression of a dedicated wire whose address is a plain :class:`ERef`.
    """

    mem: str
    addr: object


@dataclass(frozen=True)
class ECase:
    """Select by exact match on a signal (the FSM ``case (state)`` idiom).

    ``arms`` is a tuple of ``(match_codes, expr)`` pairs where
    ``match_codes`` is a tuple of ints; the first arm containing the
    subject's value wins, else ``default``.  ``subject_width`` sizes the
    printed arm literals.
    """

    subject: ERef
    arms: tuple
    default: object
    subject_width: int = WORD


Expr = object  # EConst | ERef | EOp | EMux | EWrap | ECase


@dataclass
class Wire:
    """One combinational signal definition (signed 64-bit)."""

    name: str
    expr: Expr
    comment: str = ""


@dataclass
class Register:
    """One clocked storage element.

    ``en`` / ``d`` name wires (``en`` may be None for an always-enabled
    register such as the FSM state).  On reset the register loads
    ``reset``; on an enabled clock edge it loads the low ``width`` bits of
    ``d``.  Storage is the raw bit pattern.
    """

    name: str
    width: int
    d: str
    en: str | None = None
    reset: int = 0
    comment: str = ""


@dataclass
class MemoryPort:
    """The named buses of one RAM access port.

    ``addr`` names the address wire (always present); write-capable
    ports additionally name a data wire and a write-enable wire.  A
    port with ``we`` None never writes (a pure read port).
    """

    addr: str
    din: str | None = None
    we: str | None = None


@dataclass
class Memory:
    """One inferred on-chip RAM block.

    Semantics shared by both backends: reads are asynchronous
    (:class:`EMemRead` sees the current cycle's address), each
    write-capable port commits ``din`` to ``mem[addr]`` on the clock
    edge when its ``we`` is nonzero, and the contents power on at zero
    and persist across start/done passes (there is no reset path into
    a RAM array).  ``depth`` is a power of two; addresses wrap.
    """

    name: str
    width: int
    depth: int
    ports: list[MemoryPort] = field(default_factory=list)


@dataclass
class PortDecl:
    """A module-level data port.  ``label`` is the behavioral name the
    conformance harness uses to match stimulus/outputs (None for pure
    protocol ports such as ``done``)."""

    name: str
    width: int
    signed: bool
    label: str | None = None
    source: str | None = None  # outputs only: the signal presented


@dataclass
class Netlist:
    """A complete synthesized module: ports, wires, registers, and the
    handshake convention (``clk``/``rst``/``start``/``done``)."""

    name: str
    inputs: list[PortDecl] = field(default_factory=list)
    outputs: list[PortDecl] = field(default_factory=list)
    wires: list[Wire] = field(default_factory=list)
    regs: list[Register] = field(default_factory=list)
    mems: list[Memory] = field(default_factory=list)
    #: Rendered into the emitted Verilog header (and useful for reports).
    meta: dict = field(default_factory=dict)

    def wire_names(self) -> set[str]:
        return {w.name for w in self.wires}

    def signal_kinds(self) -> dict[str, str]:
        """name -> 'wire' | 'reg' | 'input' for diagnostics."""
        kinds = {w.name: "wire" for w in self.wires}
        kinds.update({r.name: "reg" for r in self.regs})
        kinds.update({p.name: "input" for p in self.inputs})
        return kinds

    def validate(self) -> None:
        """Every reference must resolve; names must be unique."""
        names: set[str] = set()
        for decl in (*self.inputs, *(w for w in self.wires), *self.regs,
                     *self.mems):
            name = decl.name
            if name in names:
                raise HDLError(f"duplicate netlist signal {name!r}")
            names.add(name)
        known = names | {"start", "rst", "clk"}
        mem_names = {m.name for m in self.mems}
        for wire in self.wires:
            for ref in refs_of(wire.expr):
                if ref not in known:
                    raise HDLError(f"wire {wire.name} references unknown signal {ref!r}")
            for mem in mem_refs_of(wire.expr):
                if mem not in mem_names:
                    raise HDLError(f"wire {wire.name} reads unknown memory {mem!r}")
        for reg in self.regs:
            for ref in (reg.d, reg.en):
                if ref is not None and ref not in known:
                    raise HDLError(f"register {reg.name} uses unknown signal {ref!r}")
        for mem in self.mems:
            if mem.depth & (mem.depth - 1) or mem.depth < 2:
                raise HDLError(f"memory {mem.name} depth {mem.depth} is not a "
                               f"power of two")
            for port in mem.ports:
                for ref in (port.addr, port.din, port.we):
                    if ref is not None and ref not in known:
                        raise HDLError(f"memory {mem.name} port uses unknown "
                                       f"signal {ref!r}")
                if (port.din is None) != (port.we is None):
                    raise HDLError(f"memory {mem.name}: a write port needs "
                                   f"both din and we")
        for out in self.outputs:
            if out.source is None or out.source not in known:
                raise HDLError(f"output {out.name} has unknown source {out.source!r}")


def refs_of(expr: Expr) -> set[str]:
    """All signal names referenced by an expression."""
    out: set[str] = set()

    def walk(e: Expr) -> None:
        if isinstance(e, ERef):
            out.add(e.name)
        elif isinstance(e, EOp):
            for a in e.args:
                walk(a)
        elif isinstance(e, EMux):
            walk(e.cond)
            walk(e.a)
            walk(e.b)
        elif isinstance(e, EWrap):
            walk(e.expr)
        elif isinstance(e, ECase):
            walk(e.subject)
            for _codes, arm in e.arms:
                walk(arm)
            walk(e.default)
        elif isinstance(e, EMemRead):
            walk(e.addr)

    walk(expr)
    return out


def mem_refs_of(expr: Expr) -> set[str]:
    """All memory names read by an expression."""
    out: set[str] = set()

    def walk(e: Expr) -> None:
        if isinstance(e, EMemRead):
            out.add(e.mem)
            walk(e.addr)
        elif isinstance(e, EOp):
            for a in e.args:
                walk(a)
        elif isinstance(e, EMux):
            walk(e.cond)
            walk(e.a)
            walk(e.b)
        elif isinstance(e, EWrap):
            walk(e.expr)
        elif isinstance(e, ECase):
            for _codes, arm in e.arms:
                walk(arm)
            walk(e.default)

    walk(expr)
    return out
