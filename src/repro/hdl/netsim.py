"""Pure-python cycle-accurate simulation of a lowered netlist.

This is the always-available half of the cosimulation story: the same
:class:`~repro.hdl.netlist.Netlist` the Verilog printer renders is
executed here cycle by cycle, so the emitted RTL's semantics can be
checked against the behavioral interpreter, STG replay and gatesim with
no external tools.  When ``iverilog`` is present,
:mod:`repro.hdl.cosim` additionally runs the printed text itself.

Semantics follow Verilog word rules at the IR's conventions: every wire
is a signed 64-bit value (operations wrap at 64 bits), registers store
raw bit patterns at their declared width, and an identifier reference
yields the pattern for registers/inputs and the signed value for wires.

Combinational nets are evaluated in a statically topo-sorted order with a
fixpoint sweep on top, so mux-steered false combinational cycles (a unit
feeding another in one state and the reverse in a different state) settle
exactly as an event-driven simulator would.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import HDLError
from repro.hdl.netlist import (
    ECase,
    EConst,
    EMemRead,
    EMux,
    EOp,
    ERef,
    EWrap,
    Netlist,
    WORD,
    refs_of,
)
from repro.utils.bitwidth import mask_for_width, to_unsigned, wrap_to_width

#: Safety cap on clock cycles per start/done pass.
MAX_CYCLES_PER_PASS = 1_000_000

_WORD_MASK = mask_for_width(WORD)


def _compile(expr, mems=None):
    """Compile an expression to a closure over the value environment.

    ``mems`` maps memory names to their (mutable) word lists; the
    compiled closures capture the list object, so in-place writes by the
    clocked commit are visible to every subsequent read.
    """
    if isinstance(expr, EConst):
        value = expr.value
        return lambda env: value
    if isinstance(expr, ERef):
        name = expr.name
        return lambda env: env[name]
    if isinstance(expr, EWrap):
        inner = _compile(expr.expr, mems)
        width = expr.width
        if expr.signed:
            return lambda env: wrap_to_width(inner(env), width)
        mask = mask_for_width(width)
        return lambda env: inner(env) & mask
    if isinstance(expr, EMux):
        cond = _compile(expr.cond, mems)
        a = _compile(expr.a, mems)
        b = _compile(expr.b, mems)
        return lambda env: a(env) if cond(env) else b(env)
    if isinstance(expr, ECase):
        subject = _compile(expr.subject, mems)
        table = {}
        for codes, arm in expr.arms:
            arm_fn = _compile(arm, mems)
            for code in codes:
                table[code] = arm_fn
        default = _compile(expr.default, mems)
        return lambda env: table.get(subject(env), default)(env)
    if isinstance(expr, EOp):
        args = [_compile(a, mems) for a in expr.args]
        return _compile_op(expr.op, args)
    if isinstance(expr, EMemRead):
        if mems is None or expr.mem not in mems:
            raise HDLError(f"read of undeclared memory {expr.mem!r}")
        words = mems[expr.mem]
        addr = _compile(expr.addr, mems)
        mask = len(words) - 1
        return lambda env: words[addr(env) & mask]
    raise HDLError(f"cannot compile expression {expr!r}")


def _compile_op(op: str, args):
    a = args[0]
    b = args[1] if len(args) > 1 else None
    if op == "add":
        return lambda env: wrap_to_width(a(env) + b(env), WORD)
    if op == "sub":
        return lambda env: wrap_to_width(a(env) - b(env), WORD)
    if op == "mul":
        return lambda env: wrap_to_width(a(env) * b(env), WORD)
    if op == "shl":
        return lambda env: wrap_to_width(a(env) << (b(env) & 63), WORD)
    if op == "shr":
        return lambda env: a(env) >> (b(env) & 63)
    if op == "lt":
        return lambda env: int(a(env) < b(env))
    if op == "gt":
        return lambda env: int(a(env) > b(env))
    if op == "le":
        return lambda env: int(a(env) <= b(env))
    if op == "ge":
        return lambda env: int(a(env) >= b(env))
    if op == "eq":
        return lambda env: int(a(env) == b(env))
    if op == "ne":
        return lambda env: int(a(env) != b(env))
    if op == "land":
        return lambda env: int(bool(a(env)) and bool(b(env)))
    if op == "lor":
        return lambda env: int(bool(a(env)) or bool(b(env)))
    if op == "lnot":
        return lambda env: int(not a(env))
    if op == "band":
        return lambda env: a(env) & b(env)
    if op == "bor":
        return lambda env: a(env) | b(env)
    if op == "bxor":
        return lambda env: a(env) ^ b(env)
    raise HDLError(f"cannot compile operator {op!r}")


class NetlistSimulator:
    """Two-phase clocked execution of a netlist: settle the combinational
    nets, then commit every enabled register on the clock edge."""

    def __init__(self, netlist: Netlist):
        netlist.validate()
        self.netlist = netlist
        #: Memory contents as raw word patterns (power-on zero; persist
        #: across passes).  Built before wire compilation: the compiled
        #: read closures capture these list objects.
        self.mems: dict[str, list[int]] = {
            m.name: [0] * m.depth for m in netlist.mems}
        self._wires = [(w.name, _compile(w.expr, self.mems))
                       for w in self._topo_wires()]
        self._regs = {r.name: r for r in netlist.regs}
        self._input_widths = {p.name: p.width for p in netlist.inputs}
        self.env: dict[str, int] = {}
        self.reset()

    def _topo_wires(self):
        """Static topological order (declared order breaks cycles)."""
        wires = self.netlist.wires
        wire_names = {w.name for w in wires}
        deps = {w.name: refs_of(w.expr) & wire_names for w in wires}
        order: list = []
        done: set[str] = set()
        visiting: set[str] = set()
        by_name = {w.name: w for w in wires}

        def visit(wire) -> None:
            if wire.name in done or wire.name in visiting:
                return  # cycles fall back to declared order + fixpoint
            visiting.add(wire.name)
            for dep in sorted(deps[wire.name]):
                visit(by_name[dep])
            visiting.discard(wire.name)
            done.add(wire.name)
            order.append(wire)

        for wire in wires:
            visit(wire)
        return order

    def reset(self) -> None:
        self.env = {name: 0 for name in self._input_widths}
        self.env["start"] = 0
        for reg in self.netlist.regs:
            self.env[reg.name] = to_unsigned(reg.reset, reg.width)
        for words in self.mems.values():
            # In place: compiled read closures hold these list objects.
            for i in range(len(words)):
                words[i] = 0
        for name, _fn in self._wires:
            self.env[name] = 0
        self._settle()

    def poke(self, inputs: dict[str, int]) -> None:
        """Drive input ports (values wrapped to the port width)."""
        for name, value in inputs.items():
            width = self._input_widths.get(name)
            if width is None:
                raise HDLError(f"no input port {name!r}")
            self.env[name] = to_unsigned(int(value), width)

    def _settle(self) -> None:
        env = self.env
        for _sweep in range(len(self._wires) + 2):
            changed = False
            for name, fn in self._wires:
                value = fn(env)
                if env[name] != value:
                    env[name] = value
                    changed = True
            if not changed:
                return
        raise HDLError("combinational nets did not settle (true logic cycle)")

    def step(self, start: int = 0) -> None:
        """One clock edge: settle, then commit enabled registers and
        enabled memory write ports (two-phase, like the registers: every
        din/addr is sampled before anything commits)."""
        self.env["start"] = 1 if start else 0
        self._settle()
        env = self.env
        updates = []
        for reg in self.netlist.regs:
            if reg.en is not None and not env[reg.en]:
                continue
            updates.append((reg.name, env[reg.d] & mask_for_width(reg.width)))
        mem_updates = []
        for mem in self.netlist.mems:
            data_mask = mask_for_width(mem.width)
            addr_mask = mem.depth - 1
            for port in mem.ports:
                if port.we is None or not env[port.we]:
                    continue
                mem_updates.append((self.mems[mem.name],
                                    env[port.addr] & addr_mask,
                                    env[port.din] & data_mask))
        for name, pattern in updates:
            env[name] = pattern
        for words, addr, pattern in mem_updates:
            words[addr] = pattern
        self.env["start"] = 0
        self._settle()

    # -- observation -------------------------------------------------------------

    def output(self, label: str) -> int:
        for port in self.netlist.outputs:
            if port.label == label:
                value = self.env[port.source]
                return (wrap_to_width(value, port.width) if port.signed
                        else value & mask_for_width(port.width))
        raise HDLError(f"no output labeled {label!r}")

    @property
    def done(self) -> bool:
        for port in self.netlist.outputs:
            if port.name == "done":
                return bool(self.env[port.source])
        raise HDLError("netlist has no done output")

    def state(self) -> int:
        return self.env["state"]


@dataclass
class NetSimResult:
    """One stimulus run through the netlist simulator."""

    outputs: dict[str, list[int]]
    cycles: list[int]
    state_seq: list[list[int]] = field(default_factory=list)
    #: Final memory contents as raw word patterns, keyed by the netlist
    #: memory name (``mem_<array>``); re-sign with the array's element
    #: type to compare against the behavioral image.
    mems: dict[str, list[int]] = field(default_factory=dict)

    @property
    def total_cycles(self) -> int:
        return sum(self.cycles)


def run_passes(netlist: Netlist, input_passes: list[dict[str, int]],
               max_cycles_per_pass: int = MAX_CYCLES_PER_PASS) -> NetSimResult:
    """Execute the start/done handshake once per stimulus pass.

    ``input_passes`` uses behavioral variable names (the same stimulus
    dictionaries every other execution model consumes); cycle counts are
    clock cycles between leaving IDLE and the done strobe — directly
    comparable with gatesim and duration-normalized replay.
    """
    sim = NetlistSimulator(netlist)
    labels = [p.label for p in netlist.outputs if p.label is not None]
    in_map = {p.label: p.name for p in netlist.inputs if p.label is not None}
    outputs: dict[str, list[int]] = {label: [] for label in labels}
    cycles_per_pass: list[int] = []
    state_seq: list[list[int]] = []

    for pass_idx, stimulus in enumerate(input_passes):
        try:
            sim.poke({in_map[var]: value for var, value in stimulus.items()})
        except KeyError as exc:
            raise HDLError(f"stimulus names unknown input {exc}") from None
        sim.step(start=1)
        cycles = 0
        states = [sim.state()]
        while not sim.done:
            sim.step()
            cycles += 1
            states.append(sim.state())
            if cycles > max_cycles_per_pass:
                raise HDLError(f"netsim: pass {pass_idx} exceeded "
                               f"{max_cycles_per_pass} cycles without done")
        for label in labels:
            outputs[label].append(sim.output(label))
        cycles_per_pass.append(cycles)
        state_seq.append(states[:-1])  # drop the done-state entry
        sim.step()  # done -> IDLE
    return NetSimResult(outputs=outputs, cycles=cycles_per_pass,
                        state_seq=state_seq,
                        mems={name: list(words)
                              for name, words in sim.mems.items()})
