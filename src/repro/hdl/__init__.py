"""The HDL backend: Verilog emission and netlist-level execution.

Lowering (:func:`lower_architecture`) turns a bound
:class:`~repro.rtl.architecture.Architecture` into a word-level netlist;
:func:`emit_verilog` renders that netlist as one synthesizable
Verilog-2001 module, :func:`emit_testbench` generates a self-checking
testbench for a concrete stimulus, and :func:`simulate_netlist` executes
the same netlist cycle-accurately in pure python — the always-available
oracle the conformance suite (:mod:`repro.verify.conformance`) cross
checks against the interpreter, STG replay and gatesim.
"""

from repro.hdl.cosim import CosimResult, iverilog_available, run_iverilog
from repro.hdl.lower import lower_architecture
from repro.hdl.netlist import Netlist
from repro.hdl.netsim import NetlistSimulator, NetSimResult, run_passes as simulate_netlist
from repro.hdl.testbench import emit_testbench
from repro.hdl.verilog import emit_verilog

__all__ = [
    "CosimResult",
    "Netlist",
    "NetlistSimulator",
    "NetSimResult",
    "emit_testbench",
    "emit_verilog",
    "iverilog_available",
    "lower_architecture",
    "run_iverilog",
    "simulate_netlist",
]
