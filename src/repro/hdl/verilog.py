"""Verilog-2001 emission from the lowered netlist.

The printed module is a direct rendering of the :class:`Netlist` the
netsim executes — declarations, one continuous assign per plain wire, one
``always @*`` case block per state-selected wire, and a single clocked
process for the registers — so the text and the simulated semantics can
only diverge inside this printer, which the iverilog cosimulation path
(:mod:`repro.hdl.cosim`) exists to check.

Width discipline in the text mirrors the IR: every combinational net is
``wire signed [63:0]``; registers are unsigned vectors at their natural
width read through explicit sign/zero-extension; boolean operators are
normalized back to 64-bit signed via ``$signed({63'd0, ...})`` so mixed
signedness can never silently flip a comparison to unsigned.
"""

from __future__ import annotations

from repro.errors import HDLError
from repro.hdl.netlist import (
    BOOL_OPS,
    ECase,
    EConst,
    EMemRead,
    EMux,
    EOp,
    ERef,
    EWrap,
    Netlist,
    WORD,
    Wire,
)

#: Verilog spellings of the word-level operators.
_OP_TOKENS = {
    "add": "+", "sub": "-", "mul": "*",
    "lt": "<", "gt": ">", "le": "<=", "ge": ">=", "eq": "==", "ne": "!=",
    "band": "&", "bor": "|", "bxor": "^",
}


def emit_verilog(netlist: Netlist) -> str:
    """Render a lowered netlist as one synthesizable Verilog module."""
    netlist.validate()
    return _Printer(netlist).render()


def _const(expr: EConst) -> str:
    if expr.width is not None:
        return f"{expr.width}'d{expr.value}"
    if expr.value < 0:
        return f"-{WORD}'sd{-expr.value}"
    return f"{WORD}'sd{expr.value}"


class _Printer:
    def __init__(self, netlist: Netlist):
        self.netlist = netlist
        #: signal name -> 'wire' | 'reg' | 'input', for width-aware printing.
        self.kinds = netlist.signal_kinds()
        self.mems = {m.name: m for m in netlist.mems}
        self.lines: list[str] = []

    # -- expressions --------------------------------------------------------------

    def expr(self, e) -> str:
        if isinstance(e, EConst):
            return _const(e)
        if isinstance(e, ERef):
            return e.name
        if isinstance(e, EWrap):
            return self._wrap(e)
        if isinstance(e, EMux):
            return (f"(({self.expr(e.cond)} != {WORD}'sd0) ? "
                    f"{self.expr(e.a)} : {self.expr(e.b)})")
        if isinstance(e, EOp):
            return self._op(e)
        if isinstance(e, ECase):
            raise HDLError("case expressions only occur at wire top level")
        if isinstance(e, EMemRead):
            raise HDLError("memory reads only occur at wire top level")
        raise HDLError(f"cannot print expression {e!r}")

    def _mem_read(self, e: EMemRead) -> str:
        """A word select — Verilog-2001 only allows it on an identifier
        address, so lowering guarantees the address is a plain ERef."""
        mem = self.mems.get(e.mem)
        if mem is None:
            raise HDLError(f"read of undeclared memory {e.mem!r}")
        if not isinstance(e.addr, ERef):
            raise HDLError(f"memory read address must be a wire reference, "
                           f"got {e.addr!r}")
        abits = max(1, (mem.depth - 1).bit_length())
        return f"{mem.name}[{e.addr.name}[{abits - 1}:0]]"

    def _wrap(self, e: EWrap) -> str:
        pad = WORD - e.width
        narrow = (isinstance(e.expr, ERef)
                  and self.kinds.get(e.expr.name) in ("reg", "input"))
        if narrow:
            # The identifier is an unsigned vector of exactly e.width bits:
            # extend by explicit concatenation, signed via $signed.
            name = e.expr.name
            if pad == 0:
                return f"$signed({name})"
            if e.signed:
                return f"$signed({{{{{pad}{{{name}[{e.width - 1}]}}}}, {name}}})"
            return f"$signed({{{{{pad}{{1'b0}}}}, {name}}})"
        inner = self.expr(e.expr)
        if pad == 0:
            return inner
        if e.signed:
            return f"(({inner} <<< {pad}) >>> {pad})"
        mask = (1 << e.width) - 1
        return f"({inner} & {WORD}'sh{mask:x})"

    def _op(self, e: EOp) -> str:
        op = e.op
        args = [self.expr(a) for a in e.args]
        if op in ("shl", "shr"):
            token = "<<<" if op == "shl" else ">>>"
            body = f"({args[0]} {token} {args[1]})"
        elif op == "land":
            body = f"(({args[0]} != {WORD}'sd0) && ({args[1]} != {WORD}'sd0))"
        elif op == "lor":
            body = f"(({args[0]} != {WORD}'sd0) || ({args[1]} != {WORD}'sd0))"
        elif op == "lnot":
            body = f"({args[0]} == {WORD}'sd0)"
        else:
            body = f"({args[0]} {_OP_TOKENS[op]} {args[1]})"
        if op in BOOL_OPS:
            # 1-bit results re-enter the signed 64-bit world explicitly.
            return f"$signed({{{WORD - 1}'d0, {body}}})"
        return body

    # -- module structure ---------------------------------------------------------

    def render(self) -> str:
        self._header()
        self._module_ports()
        self._declarations()
        self._combinational()
        self._sequential()
        self._emit("endmodule")
        return "\n".join(self.lines) + "\n"

    def _emit(self, text: str = "") -> None:
        self.lines.append(text)

    def _header(self) -> None:
        meta = self.netlist.meta
        self._emit("// Generated by the IMPACT reproduction Verilog backend.")
        if meta:
            enc = meta.get("encoding", {})
            self._emit(f"// design: {meta.get('design')}  "
                       f"clock: {meta.get('clock_ns')} ns  "
                       f"state encoding: {enc.get('state_bits')} bits "
                       f"(start={enc.get('start')}, done={enc.get('done')}, "
                       f"idle={enc.get('idle')})")
            for fu in meta.get("fus", []):
                self._emit(f"//   fu{fu['id']}: {fu['module']} w{fu['width']} "
                           f"<- {', '.join(fu['ops'])}")
            for reg in meta.get("registers", []):
                self._emit(f"//   r{reg['id']}: w{reg['width']} "
                           f"<- {', '.join(reg['carriers'])}")
            for mem in meta.get("memories", []):
                self._emit(f"//   mem_{mem['array']}: {mem['spec']} "
                           f"{mem['width']}x{mem['depth']}")
            for state in meta.get("states", []):
                self._emit(f"//   state {state['id']} ({state['duration']} cyc): "
                           f"{', '.join(state['ops']) or '-'}")
        self._emit("`timescale 1ns/1ps")

    def _module_ports(self) -> None:
        self._emit(f"module {self.netlist.name} (")
        self._emit("  input wire clk,")
        self._emit("  input wire rst,")
        self._emit("  input wire start,")
        for port in self.netlist.inputs:
            self._emit(f"  input wire [{port.width - 1}:0] {port.name},")
        out_lines = [f"  output wire [{port.width - 1}:0] {port.name}"
                     for port in self.netlist.outputs]
        self._emit(",\n".join(out_lines))
        self._emit(");")
        self._emit()

    def _declarations(self) -> None:
        for reg in self.netlist.regs:
            comment = f"  // {reg.comment}" if reg.comment else ""
            self._emit(f"  reg [{reg.width - 1}:0] {reg.name};{comment}")
        self._emit()
        for mem in self.netlist.mems:
            self._emit(f"  reg [{mem.width - 1}:0] {mem.name} "
                       f"[0:{mem.depth - 1}];  // inferred block RAM")
        if self.netlist.mems:
            # Power-on zero (the behavioral array semantics); there is no
            # reset path into a RAM array, so this is an initial block.
            self._emit("  integer mem_i;")
            self._emit("  initial begin")
            for mem in self.netlist.mems:
                self._emit(f"    for (mem_i = 0; mem_i < {mem.depth}; "
                           f"mem_i = mem_i + 1) {mem.name}[mem_i] = "
                           f"{mem.width}'d0;")
            self._emit("  end")
            self._emit()
        for wire in self.netlist.wires:
            kind = "reg" if isinstance(wire.expr, ECase) else "wire"
            comment = f"  // {wire.comment}" if wire.comment else ""
            self._emit(f"  {kind} signed [{WORD - 1}:0] {wire.name};{comment}")
        self._emit()

    def _combinational(self) -> None:
        for wire in self.netlist.wires:
            if isinstance(wire.expr, ECase):
                self._case_block(wire)
            elif isinstance(wire.expr, EMemRead):
                # Unsigned W-bit word onto a signed 64-bit wire: the
                # continuous assign zero-extends, yielding the raw
                # pattern — the same convention as a register reference.
                self._emit(f"  assign {wire.name} = "
                           f"{self._mem_read(wire.expr)};")
            else:
                self._emit(f"  assign {wire.name} = {self.expr(wire.expr)};")
        self._emit()
        for port in self.netlist.outputs:
            if port.width >= WORD:
                self._emit(f"  assign {port.name} = {port.source};")
            else:
                self._emit(f"  assign {port.name} = "
                           f"{port.source}[{port.width - 1}:0];")
        self._emit()

    def _case_block(self, wire: Wire) -> None:
        case: ECase = wire.expr
        self._emit("  always @* begin")
        self._emit(f"    case ({case.subject.name})")
        for codes, arm in case.arms:
            labels = ", ".join(f"{case.subject_width}'d{c}" for c in codes)
            self._emit(f"      {labels}: {wire.name} = {self.expr(arm)};")
        self._emit(f"      default: {wire.name} = {self.expr(case.default)};")
        self._emit("    endcase")
        self._emit("  end")

    def _sequential(self) -> None:
        self._emit("  always @(posedge clk) begin")
        self._emit("    if (rst) begin")
        for reg in self.netlist.regs:
            self._emit(f"      {reg.name} <= {reg.width}'d{reg.reset};")
        self._emit("    end else begin")
        for reg in self.netlist.regs:
            target = f"{reg.name} <= {reg.d}[{reg.width - 1}:0];"
            if reg.en is None:
                self._emit(f"      {target}")
            else:
                self._emit(f"      if ({reg.en} != {WORD}'sd0) {target}")
        for mem in self.netlist.mems:
            abits = max(1, (mem.depth - 1).bit_length())
            for port in mem.ports:
                if port.we is None:
                    continue
                self._emit(f"      if ({port.we} != {WORD}'sd0) "
                           f"{mem.name}[{port.addr}[{abits - 1}:0]] <= "
                           f"{port.din}[{mem.width - 1}:0];")
        self._emit("    end")
        self._emit("  end")
