"""The fuzz pipeline: generate -> synthesize -> conformance -> shrink.

:func:`fuzz_run` drives ``count`` generated programs through the whole
stack: each is compiled by the real frontend, cross-checked against the
AST evaluator over the fuzz stimulus, synthesized at every requested
laxity, and every synthesized design is pushed through the differential
conformance oracle chain (interpreter <-> replay <-> gatesim <-> netsim,
plus iverilog when enabled).  Any failure — generation invariant,
evaluator disagreement, synthesis error, or conformance divergence — is
shrunk to a minimal reproducer program that still fails the same stage,
and the reproducer source is written next to the report.

Everything is deterministic in ``(seed, knobs)``: program seeds derive
from the run seed, searches are seeded, and the report rows carry no
wall-clock data — ``results/fuzz.json`` is bit-identical across runs
with the same arguments (a CI-enforced property).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import GenerationError, ReproError
from repro.genprog.config import GenConfig
from repro.genprog.emit import emit_source
from repro.genprog.generator import (
    GeneratedProgram,
    check_roundtrip,
    generate_program,
)
from repro.genprog.shrink import shrink_process

#: Laxity factors each program is synthesized at (ISSUE: 2-3 points).
DEFAULT_LAXITIES: tuple[float, ...] = (1.0, 2.0)

#: Multiplier deriving per-program seeds from the run seed (a large odd
#: constant so nearby run seeds produce disjoint program families).
SEED_STRIDE = 1_000_003


@dataclass
class ProgramVerdict:
    """Per-program fuzz outcome (JSON-serializable via :meth:`row`)."""

    name: str
    seed: int
    status: str                      # "ok" | "generate" | "semantic" |
    #                                  "synthesis" | "divergence"
    n_statements: int = 0
    detail: str = ""
    #: laxity -> "ok" | "diverged(N)" | "error: ..." per synthesis run.
    laxities: dict[float, str] = field(default_factory=dict)
    #: Repo-relative path of the shrunk reproducer source, if any.
    reproducer: str | None = None

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def row(self) -> dict:
        return {
            "name": self.name,
            "seed": self.seed,
            "status": self.status,
            "statements": self.n_statements,
            "laxities": ",".join(f"{lax:g}:{verdict}"
                                 for lax, verdict in
                                 sorted(self.laxities.items())),
            "detail": self.detail,
            "reproducer": self.reproducer or "",
        }


@dataclass
class FuzzReport:
    """Outcome of one fuzz run."""

    count: int
    seed: int
    laxities: tuple[float, ...]
    n_passes: int
    verdicts: list[ProgramVerdict]

    @property
    def ok(self) -> bool:
        return all(v.ok for v in self.verdicts)

    @property
    def n_ok(self) -> int:
        return sum(v.ok for v in self.verdicts)

    def rows(self) -> list[dict]:
        return [v.row() for v in self.verdicts]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "seed": self.seed,
            "laxities": list(self.laxities),
            "n_passes": self.n_passes,
            "ok": self.ok,
            "n_ok": self.n_ok,
            "reproducers": [v.reproducer for v in self.verdicts
                            if v.reproducer],
        }


def _search_config(args_search):
    from repro.core.search import SearchConfig

    if args_search is not None:
        return args_search
    return SearchConfig(max_depth=3, max_candidates=8, max_iterations=4,
                        seed=0)


def _chain_failure(program: GeneratedProgram, laxities, n_passes: int,
                   search, use_iverilog: str, *,
                   stop_on_failure: bool = False, store_dir=None,
                   cdfg=None, observer=None,
                   ) -> tuple[dict[float, str], str | None, str]:
    """Run synth+conformance at every laxity; returns (verdicts, stage, detail).

    ``stage`` is None when everything agreed, else "synthesis" or
    "divergence"; ``detail`` describes the first failure.
    ``stop_on_failure`` skips the remaining laxities once a failure is
    recorded — the shrinker's predicate only needs the first one.

    ``cdfg`` is the already-built CDFG when the caller ran
    :func:`check_roundtrip` (which compiles the source as part of its
    invariant) — passing it through saves a second frontend pass per
    program.  ``observer(laxity, result)`` is called with every
    successful :class:`SynthesisResult` (the fleet's coverage tap).
    """
    from repro.core.engine import SynthesisEngine
    from repro.lang import parse
    from repro.sched.engine import ScheduleOptions
    from repro.store import attached_cache

    verdicts: dict[float, str] = {}
    stage: str | None = None
    detail = ""
    if cdfg is None:
        cdfg = parse(program.source)
    stimulus = program.stimulus(n_passes, seed=0)
    engine = SynthesisEngine(cdfg, stimulus,
                             options=ScheduleOptions(clock_ns=10.0),
                             cache=attached_cache(store_dir=store_dir))
    for laxity in laxities:
        try:
            result = engine.run(mode="power", laxity=laxity, search=search)
            report = engine.verify(design=result.design,
                                   use_iverilog=use_iverilog)
        except ReproError as exc:
            verdicts[laxity] = f"error: {type(exc).__name__}"
            if stage is None:
                stage, detail = "synthesis", f"laxity {laxity:g}: {exc}"
            continue
        if observer is not None:
            observer(laxity, result)
        if report.ok:
            verdicts[laxity] = "ok"
        else:
            verdicts[laxity] = f"diverged({len(report.divergences)})"
            if stage is None:
                stage = "divergence"
                detail = f"laxity {laxity:g}: {report.divergences[0]}"
        if stage is not None and stop_on_failure:
            break
    return verdicts, stage, detail


def _still_fails(process, config: GenConfig, laxities, n_passes: int,
                 search, use_iverilog: str, store_dir=None) -> bool:
    """Shrink predicate: the candidate still fails somewhere in the chain.

    The round-trip check runs over the *same* stimulus (n_passes, seed
    0) that detected the original failure — a drift that only manifests
    on specific input vectors must stay visible while shrinking.
    """
    candidate = GeneratedProgram(name=process.name, config=config,
                                 process=process,
                                 source=emit_source(process))
    try:
        cdfg = check_roundtrip(candidate, n_passes=n_passes, seed=0)
    except GenerationError:
        return True  # still a frontend-semantics failure: keep it
    except ReproError:
        return False
    try:
        _verdicts, stage, _detail = _chain_failure(
            candidate, laxities, n_passes, search, use_iverilog,
            stop_on_failure=True, store_dir=store_dir, cdfg=cdfg)
    except ReproError:
        return False
    return stage is not None


def _shrink_reproducer(program: GeneratedProgram, laxities, n_passes: int,
                       search, use_iverilog: str, results_dir: Path,
                       max_trials: int, store_dir=None) -> str:
    """Minimize a failing program and write its source; returns the path."""
    small = shrink_process(
        program.process,
        lambda proc: _still_fails(proc, program.config, laxities, n_passes,
                                  search, use_iverilog, store_dir=store_dir),
        max_trials=max_trials)
    path = results_dir / f"fuzz_repro_{program.name}.src"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(emit_source(small), encoding="utf-8")
    return str(path)


def fuzz_program(program: GeneratedProgram, *,
                 laxities=DEFAULT_LAXITIES, n_passes: int = 10,
                 search=None, use_iverilog: str = "off",
                 store_dir=None, observer=None) -> ProgramVerdict:
    """Fuzz one already-generated program (also the --replay entry point)."""
    search = _search_config(search)
    verdict = ProgramVerdict(name=program.name, seed=program.config.seed,
                             status="ok", n_statements=program.n_statements)
    try:
        # check_roundtrip compiles the source as part of its invariant;
        # reuse that CDFG so the synthesis chain does not re-parse.
        cdfg = check_roundtrip(program, n_passes=n_passes, seed=0)
    except GenerationError as exc:
        verdict.status, verdict.detail = "semantic", str(exc)
        return verdict
    verdicts, stage, detail = _chain_failure(program, laxities, n_passes,
                                             search, use_iverilog,
                                             store_dir=store_dir, cdfg=cdfg,
                                             observer=observer)
    verdict.laxities = verdicts
    if stage is not None:
        verdict.status, verdict.detail = stage, detail
    return verdict


def fuzz_run(count: int, seed: int, *, laxities=DEFAULT_LAXITIES,
             n_passes: int = 10, gen: GenConfig | None = None,
             search=None, use_iverilog: str = "off",
             results_dir: Path | str = "results",
             shrink_trials: int = 200, store_dir=None) -> FuzzReport:
    """Generate and fuzz ``count`` programs; shrink and save any failure.

    Deterministic in all arguments: the i-th program's generator seed is
    ``seed * SEED_STRIDE + i`` and every downstream stage is seeded.
    ``store_dir`` attaches the persistent artifact store (``None``
    consults ``$REPRO_STORE_DIR``) so repeated runs over the same seeds
    replay synthesis work from disk; verdicts are identical either way.
    """
    results_dir = Path(results_dir)
    template = (gen or GenConfig()).validated()
    search = _search_config(search)
    verdicts: list[ProgramVerdict] = []
    for index in range(count):
        program_seed = seed * SEED_STRIDE + index
        config = dataclasses.replace(template, seed=program_seed)
        name = f"fuzz{index}"
        try:
            program = generate_program(config, name=name)
        except GenerationError as exc:
            # The generator's own invariant tripped: the emitted source
            # is itself the bug reproducer — shrink and record it.
            program = generate_program(config, name=name, check=False)
            verdict = ProgramVerdict(
                name=name, seed=program_seed, status="generate",
                n_statements=program.n_statements, detail=str(exc))
            verdict.reproducer = _shrink_reproducer(
                program, laxities, n_passes, search, use_iverilog,
                results_dir, shrink_trials, store_dir=store_dir)
            verdicts.append(verdict)
            continue
        verdict = fuzz_program(program, laxities=laxities,
                               n_passes=n_passes, search=search,
                               use_iverilog=use_iverilog,
                               store_dir=store_dir)
        if not verdict.ok:
            verdict.reproducer = _shrink_reproducer(
                program, laxities, n_passes, search, use_iverilog,
                results_dir, shrink_trials, store_dir=store_dir)
        verdicts.append(verdict)
    return FuzzReport(count=count, seed=seed, laxities=tuple(laxities),
                      n_passes=n_passes, verdicts=verdicts)
