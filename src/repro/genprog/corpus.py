"""The pinned-seed synthetic benchmark corpus (``synth_N`` family).

Four generated control-flow-intensive programs with committed seeds and
shape configs, registered into :data:`repro.benchmarks.BENCHMARKS` next
to the paper's six — so ``get_benchmark``, ``python -m repro
synth/explore/verify/bench`` and the conformance CLI all work on them
unchanged.  Each entry's reference model is the generator's direct AST
evaluator, giving the differential tests an oracle that never touched
the CDFG pipeline.

The seeds are pinned, not arbitrary: changing one changes the program,
its reference traces and every report that names it, so treat a seed
bump like deleting and adding a benchmark.  ``docs/fuzzing.md``
documents how these were chosen (diverse region shapes, full oracle
chain green at 100 stimulus passes).
"""

from __future__ import annotations

from functools import lru_cache

from repro.genprog.config import GenConfig

#: name -> (config, clock_ns, short shape description).  Shapes are
#: deliberately spread: branch-heavy, loop-heavy, wide/flat, and deep.
SYNTH_SPECS: dict[str, tuple[GenConfig, float, str]] = {
    "synth_0": (
        GenConfig(seed=7, branch_density=0.45, loop_density=0.15,
                  ops_budget=20),
        10.0, "generated: branch-heavy nested conditionals"),
    "synth_1": (
        GenConfig(seed=11, branch_density=0.15, loop_density=0.45,
                  ops_budget=20, max_for_bound=5),
        10.0, "generated: loop-heavy (nested for/while countdowns)"),
    "synth_2": (
        GenConfig(seed=5, n_inputs=4, n_outputs=3, ops_budget=26,
                  max_depth=2),
        12.0, "generated: wide multi-output, mixed signed/unsigned"),
    "synth_3": (
        GenConfig(seed=8, max_depth=4, ops_budget=24,
                  branch_density=0.35, loop_density=0.30),
        10.0, "generated: deep region nesting"),
}


@lru_cache(maxsize=None)
def _program(name: str):
    from repro.genprog.generator import generate_program

    config, _clock, _desc = SYNTH_SPECS[name]
    # check=False: the corpus is registered at `import repro` time, so
    # generation must stay sub-millisecond and must never raise — the
    # round-trip invariant for these pinned programs is enforced by the
    # test suite (tests/test_genprog.py::TestCorpus) instead, where a
    # frontend regression fails one test rather than poisoning every
    # import of the package.
    return generate_program(config, name=name, check=False)


def synthetic_benchmarks() -> dict:
    """Build the ``synth_N`` registry entries (generated on first use)."""
    from repro.benchmarks.registry import Benchmark

    entries = {}
    for name, (_config, clock_ns, description) in SYNTH_SPECS.items():
        program = _program(name)
        entries[name] = Benchmark(
            name=name,
            source=program.source,
            stimulus=program.stimulus,
            reference=program.reference,
            description=description,
            clock_ns=clock_ns,
        )
    return entries
