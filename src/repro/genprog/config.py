"""Size/shape configuration for the random CFI program generator.

A :class:`GenConfig` pins every knob that shapes a generated program —
operation budget, region nesting depth, branch/loop density, the width
pool inputs and variables draw from — plus the seed.  Generation is a
pure function of the config (see :func:`repro.genprog.generate_program`),
so a committed config is a committed program: the synthetic benchmark
corpus (``repro.genprog.corpus``) and the nightly fuzz CI job both rely
on that to make failures reproducible from a single integer.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.errors import ExperimentError

#: Default pool of (width, signed) variable/port types.  Deliberately
#: mixed: the signed/unsigned interaction is where lowering hazards live
#: (e.g. the ``ShareRegisters`` mixed-carrier bug found before PR 4).
DEFAULT_WIDTHS: tuple[tuple[int, bool], ...] = (
    (4, False), (6, True), (8, True), (8, False), (10, True),
    (12, False), (16, True),
)


@dataclass(frozen=True)
class GenConfig:
    """Shape knobs for one generated program (all deterministic per seed)."""

    #: RNG seed; the program is a pure function of the whole config.
    seed: int = 0
    #: Number of input ports (>= 1).
    n_inputs: int = 3
    #: Number of output ports (>= 1) — multi-output by default.
    n_outputs: int = 2
    #: Approximate statement budget for the body (the generator stops
    #: opening new statements once spent; nested bodies share it).
    ops_budget: int = 22
    #: Maximum region nesting depth (if/for/while inside if/for/while).
    max_depth: int = 3
    #: Probability a statement slot becomes an ``if``/``else`` region.
    branch_density: float = 0.30
    #: Probability a statement slot becomes a loop region.
    loop_density: float = 0.25
    #: Constant ``for`` bounds are drawn from [2, max_for_bound].
    max_for_bound: int = 6
    #: ``while`` countdown counters are uintN with N in [2, max_while_bits],
    #: bounding any single while entry to 2**N - 1 iterations.
    max_while_bits: int = 3
    #: Maximum expression tree depth.
    expr_depth: int = 2
    #: Pool of (width, signed) types for ports and variables.
    widths: tuple[tuple[int, bool], ...] = DEFAULT_WIDTHS
    #: Probability a statement slot becomes an array access (an indexed
    #: store, or a scalar assignment reading the array).  0 disables
    #: arrays entirely, keeping pre-array corpora byte-identical.
    array_density: float = 0.0
    #: Number of process-scoped arrays declared when arrays are enabled.
    #: Each is zero-filled by a generated loop before any dynamic access,
    #: so the per-pass-stateless reference stays valid despite arrays
    #: persisting across passes in the real pipeline.
    n_arrays: int = 1
    #: Pool of array sizes (each must be a power of two in [2, 1024]).
    array_sizes: tuple[int, ...] = (4, 8, 16)
    #: Stimulus passes used by the generation-time semantic invariant
    #: check (emitted source is re-parsed, compiled and interpreted, then
    #: diffed against the generator's own AST evaluator).
    validate_passes: int = 6

    def validated(self) -> "GenConfig":
        """Range-check every knob; returns self (raises on nonsense)."""
        checks = (
            (self.n_inputs >= 1, "n_inputs must be >= 1"),
            (self.n_outputs >= 1, "n_outputs must be >= 1"),
            (self.ops_budget >= 1, "ops_budget must be >= 1"),
            (self.max_depth >= 0, "max_depth must be >= 0"),
            (0.0 <= self.branch_density <= 1.0,
             "branch_density must be in [0, 1]"),
            (0.0 <= self.loop_density <= 1.0,
             "loop_density must be in [0, 1]"),
            (self.max_for_bound >= 2, "max_for_bound must be >= 2"),
            (2 <= self.max_while_bits <= 8,
             "max_while_bits must be in [2, 8]"),
            (self.expr_depth >= 1, "expr_depth must be >= 1"),
            (bool(self.widths), "widths pool must not be empty"),
            (0.0 <= self.array_density <= 1.0,
             "array_density must be in [0, 1]"),
            (self.n_arrays >= 1, "n_arrays must be >= 1"),
            (bool(self.array_sizes), "array_sizes pool must not be empty"),
            (self.validate_passes >= 1, "validate_passes must be >= 1"),
        )
        for ok, message in checks:
            if not ok:
                raise ExperimentError(f"GenConfig: {message}")
        for width, _signed in self.widths:
            if not 1 <= width <= 32:
                raise ExperimentError(
                    f"GenConfig: width {width} outside [1, 32]")
        for size in self.array_sizes:
            if size < 2 or size > 1024 or size & (size - 1):
                raise ExperimentError(
                    f"GenConfig: array size {size} is not a power of two "
                    f"in [2, 1024]")
        return self

    def with_seed(self, seed: int) -> "GenConfig":
        return replace(self, seed=seed)
