"""Coverage-guided fuzzing fleet: corpus scheduling over structural bins.

The blind fuzzer (:mod:`repro.genprog.fuzz`) samples independent programs
from the generator; every program exercises roughly the same slice of the
pipeline.  The fleet closes the loop: each program's run is folded into a
set of **structural coverage bins** (:mod:`repro.genprog.coverage`), and
programs that lit up bins nobody had hit before are kept in a corpus.
Subsequent programs are *mutants* of rare corpus entries — spliced,
grafted, widened and nested by :mod:`repro.genprog.mutate`, with the
mutator choice biased toward bin families the corpus is short on — so the
fleet climbs toward region shapes, STG patterns and conformance paths
the generator alone would take far longer to reach.

Failures ride the existing shrink machinery, but are filed under a
**triage digest** — a stable hash of ``(failure stage, shrunk AST)`` — so
two programs that shrink to the same minimal reproducer land in one
``results/fuzz_repro_<digest>.src`` file instead of two copies.

Everything is deterministic in ``(seed, knobs)``: the per-program RNG is
``random.Random(f"fleet:{seed}:{index}")``, corpus evolution is a pure
function of the verdict stream, and the report carries no wall-clock
data — ``results/fleet.json`` is bit-identical across runs and across
cache on/off and store warm/cold (a CI-enforced property).
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import ReproError
from repro.genprog.config import GenConfig
from repro.genprog.coverage import bin_families, coverage_digest, extract_coverage
from repro.genprog.emit import emit_source, strip_positions
from repro.genprog.fuzz import (
    DEFAULT_LAXITIES,
    SEED_STRIDE,
    ProgramVerdict,
    _search_config,
    _still_fails,
    fuzz_program,
)
from repro.genprog.generator import GeneratedProgram, check_roundtrip, generate_program
from repro.genprog.mutate import MUTATORS, mutate
from repro.genprog.shrink import shrink_process

#: How many mutation attempts (validation failures) before falling back
#: to a fresh generated program for the slot.
MUTATION_RETRIES = 8

#: Consecutive *fresh* programs that discovered no new bin before the
#: scheduler switches from sampling the generator to breeding mutants.
#: Fresh programs are cheap diversity early on; mutants only beat them
#: once the generator's own bin space is close to saturated.
FRESH_PATIENCE = 2

#: Bin-family -> mutators most likely to light up new bins in it.  The
#: scheduler weights each mutator by the families it serves, scaled by
#: how *few* bins that family has so far (deficit bias).
_FAMILY_MUTATORS: dict[str, tuple[str, ...]] = {
    "shape": ("nest", "graft"),
    "depth": ("nest",),
    "stg": ("nest", "widen", "splice"),
    "move": ("widen", "graft"),
    "commit": ("graft", "splice"),
    "path": ("nest", "splice"),
}


@dataclass
class CorpusEntry:
    """One kept program: it discovered bins nobody had hit before."""

    program: GeneratedProgram
    bins: frozenset[str]
    new_bins: frozenset[str]
    origin: str  # "fresh" | "mutant:<op>:<parent>"


class Corpus:
    """The fleet's seed pool plus the global covered-bin set.

    ``consider`` keeps a program iff it contributed at least one new
    bin; ``pick`` samples an entry weighted by *rarity* — the summed
    inverse frequency of its bins across the corpus — so programs whose
    structure few others share get mutated more often.
    """

    def __init__(self) -> None:
        self.entries: list[CorpusEntry] = []
        self.covered: set[str] = set()
        self._bin_counts: dict[str, int] = {}

    def consider(self, program: GeneratedProgram, bins: frozenset[str],
                 origin: str) -> frozenset[str]:
        """Fold one run's bins in; returns the newly-discovered bins."""
        new = frozenset(bins - self.covered)
        self.covered |= bins
        if new:
            self.entries.append(CorpusEntry(program=program, bins=bins,
                                            new_bins=new, origin=origin))
            for name in bins:
                self._bin_counts[name] = self._bin_counts.get(name, 0) + 1
        return new

    def pick(self, rng) -> CorpusEntry:
        weights = []
        for entry in self.entries:
            weights.append(sum(1.0 / self._bin_counts[name]
                               for name in entry.bins))
        return rng.choices(self.entries, weights=weights, k=1)[0]

    def mutator_weights(self) -> dict[str, float]:
        """Deficit-biased mutator weights from the covered-bin families."""
        families = bin_families(self.covered)
        weights = {op: 1.0 for op in MUTATORS}
        most = max(families.values(), default=0)
        for family, ops in _FAMILY_MUTATORS.items():
            deficit = most - families.get(family, 0)
            for op in ops:
                weights[op] += deficit
        return weights


@dataclass
class FleetVerdict:
    """Per-program fleet outcome: fuzz verdict plus coverage accounting."""

    verdict: ProgramVerdict
    origin: str
    bins: frozenset[str] = frozenset()
    new_bins: frozenset[str] = frozenset()
    kept: bool = False

    def row(self) -> dict:
        row = self.verdict.row()
        row.update({
            "origin": self.origin,
            "bins": len(self.bins),
            "new_bins": sorted(self.new_bins),
            "kept": self.kept,
        })
        return row


@dataclass
class FleetReport:
    """Outcome of one fleet run (JSON-stable: no ids, no wall clock)."""

    count: int
    seed: int
    guided: bool
    laxities: tuple[float, ...]
    n_passes: int
    verdicts: list[FleetVerdict] = field(default_factory=list)
    covered: set[str] = field(default_factory=set)
    #: triage digest -> sorted program names that shrank to it.
    triage: dict[str, list[str]] = field(default_factory=dict)
    corpus_size: int = 0

    @property
    def ok(self) -> bool:
        return all(v.verdict.ok for v in self.verdicts)

    @property
    def n_bins(self) -> int:
        return len(self.covered)

    def rows(self) -> list[dict]:
        return [v.row() for v in self.verdicts]

    def summary(self) -> dict:
        return {
            "count": self.count,
            "seed": self.seed,
            "guided": self.guided,
            "laxities": list(self.laxities),
            "n_passes": self.n_passes,
            "ok": self.ok,
            "bins": self.n_bins,
            "bin_families": bin_families(self.covered),
            "coverage_digest": coverage_digest(frozenset(self.covered)),
            "corpus_size": self.corpus_size,
            "triage": {digest: sorted(names)
                       for digest, names in sorted(self.triage.items())},
        }


def triage_digest(stage: str, process) -> str:
    """Stable short digest of (failure stage, shrunk AST) for dedup."""
    from repro.store import digest_key

    return digest_key((stage, strip_positions(process)))[:12]


def _file_reproducer(program: GeneratedProgram, stage: str, laxities,
                     n_passes: int, search, use_iverilog: str,
                     results_dir: Path, max_trials: int,
                     store_dir=None) -> tuple[str, str]:
    """Shrink a failure and file it under its triage digest.

    Returns ``(digest, path)``.  Two failures that shrink to the same
    minimal program at the same stage share a digest — the second filing
    is a no-op (the bytes are identical by construction).
    """
    small = shrink_process(
        program.process,
        lambda proc: _still_fails(proc, program.config, laxities, n_passes,
                                  search, use_iverilog, store_dir=store_dir),
        max_trials=max_trials)
    digest = triage_digest(stage, small)
    path = results_dir / f"fuzz_repro_{digest}.src"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(emit_source(small), encoding="utf-8")
    # The row records the digest-named file, not the absolute path --
    # reports must stay byte-identical across checkout locations.
    return digest, path.name


def _mutant_program(corpus: Corpus, rng, name: str, program_seed: int,
                    template: GenConfig, n_passes: int):
    """Try to breed a validated mutant from the corpus; None on give-up.

    Mutator choice is deficit-biased toward under-covered bin families;
    a mutant must survive the full round-trip check (compile + AST/
    interpreter agreement over the fuzz stimulus) to be scheduled — the
    check *executes* the program, so accepted mutants also terminate.
    """
    weights = corpus.mutator_weights()
    ops = list(MUTATORS)
    for _ in range(MUTATION_RETRIES):
        parent = corpus.pick(rng)
        donor = corpus.pick(rng)
        op = rng.choices(ops, weights=[weights[o] for o in ops], k=1)[0]
        mutant = mutate(parent.program.process, op, rng,
                        donor=donor.program.process)
        if mutant is None:
            continue
        mutant = dataclasses.replace(mutant, name=name)
        config = dataclasses.replace(template, seed=program_seed)
        candidate = GeneratedProgram(name=name, config=config,
                                     process=mutant,
                                     source=emit_source(mutant))
        try:
            cdfg = check_roundtrip(candidate, n_passes=n_passes, seed=0)
        except ReproError:
            continue
        origin = f"mutant:{op}:{parent.program.name}"
        return candidate, cdfg, origin
    return None


def fleet_run(count: int, seed: int, *, guided: bool = True,
              laxities=DEFAULT_LAXITIES, n_passes: int = 10,
              gen: GenConfig | None = None, search=None,
              use_iverilog: str = "off",
              results_dir: Path | str = "results",
              corpus_dir: Path | str | None = None,
              shrink_trials: int = 200, store_dir=None) -> FleetReport:
    """Run ``count`` programs with structural-coverage feedback.

    ``guided=False`` is the blind baseline: the exact generator family
    ``fuzz_run`` samples (seed * SEED_STRIDE + index), with coverage
    *measured* but never steering — the control arm the acceptance test
    compares against.  ``guided=True`` breeds mutants of rare corpus
    entries once the corpus is non-empty.

    ``corpus_dir`` (default ``<results_dir>/fleet_corpus``) receives the
    source of every kept entry, so a nightly fleet's corpus can seed the
    next run or be attached to a bug report.
    """
    results_dir = Path(results_dir)
    corpus_dir = Path(corpus_dir) if corpus_dir is not None else (
        results_dir / "fleet_corpus")
    template = (gen or GenConfig()).validated()
    search = _search_config(search)
    report = FleetReport(count=count, seed=seed, guided=guided,
                         laxities=tuple(laxities), n_passes=n_passes)
    corpus = Corpus()
    fresh_dry = 0  # consecutive fresh programs with zero new bins

    for index in range(count):
        rng = random.Random(f"fleet:{seed}:{index}")
        program_seed = seed * SEED_STRIDE + index
        name = f"fleet{index}"
        bred = None
        if guided and corpus.entries and fresh_dry >= FRESH_PATIENCE:
            bred = _mutant_program(corpus, rng, name, program_seed,
                                   template, n_passes)
        if bred is not None:
            program, _cdfg, origin = bred
        else:
            config = dataclasses.replace(template, seed=program_seed)
            program = generate_program(config, name=name)
            origin = "fresh"

        bins: set[str] = set()

        def observe(_laxity, result):
            bins.update(extract_coverage(cdfg=result.design.cdfg,
                                         history=result.history,
                                         stg=result.design.stg,
                                         replay=result.design.rep))

        verdict = fuzz_program(program, laxities=laxities,
                               n_passes=n_passes, search=search,
                               use_iverilog=use_iverilog,
                               store_dir=store_dir, observer=observe)
        if not bins:
            # Failed before any laxity synthesized: the region shape is
            # still coverage (and often the interesting part).
            from repro.lang import parse
            try:
                bins.update(extract_coverage(cdfg=parse(program.source)))
            except ReproError:
                pass

        entry = FleetVerdict(verdict=verdict, origin=origin,
                             bins=frozenset(bins))
        entry.new_bins = corpus.consider(program, entry.bins, origin)
        entry.kept = bool(entry.new_bins)
        if origin == "fresh":
            fresh_dry = 0 if entry.new_bins else fresh_dry + 1
        if entry.kept:
            corpus_dir.mkdir(parents=True, exist_ok=True)
            (corpus_dir / f"{name}.src").write_text(program.source,
                                                    encoding="utf-8")
        if not verdict.ok:
            digest, path = _file_reproducer(
                program, verdict.status, laxities, n_passes, search,
                use_iverilog, results_dir, shrink_trials,
                store_dir=store_dir)
            verdict.reproducer = path
            report.triage.setdefault(digest, []).append(name)
        report.verdicts.append(entry)

    report.covered = set(corpus.covered)
    report.corpus_size = len(corpus.entries)
    return report
