"""Greedy structural shrinker for failing generated programs.

Given a process AST and a predicate ("this program still fails"),
:func:`shrink_process` repeatedly applies semantics-shrinking edits —
delete a statement, replace an ``if`` by one arm, unroll a loop to its
body, clamp a loop bound to 1, halve an array, replace an expression
(array reads included) by one operand or a small literal — keeping an
edit only when the edited program is still
*valid* (parses, type-checks and compiles) **and** still satisfies the
predicate.  The result is the smallest reproducer the trial budget
finds, in a deterministic order, which is what the fuzz driver attaches
to a failing verdict instead of a 20-statement random blob.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Iterator

from repro.errors import ReproError
from repro.genprog.emit import emit_source
from repro.lang import ast_nodes as ast
from repro.lang.frontend import parse_process

#: Default cap on predicate evaluations per shrink run.
MAX_TRIALS = 300


def is_valid(process: ast.Process) -> bool:
    """A candidate must still parse, type-check and compile to a CDFG."""
    from repro.cdfg.builder import build_cdfg

    try:
        parsed = parse_process(emit_source(process))
        build_cdfg(parsed).validate()
    except ReproError:
        return False
    return True


def _replace_body(stmts: tuple[ast.Stmt, ...], index: int,
                  replacement: tuple[ast.Stmt, ...]) -> tuple[ast.Stmt, ...]:
    return stmts[:index] + replacement + stmts[index + 1:]


def _with_body(stmt: ast.Stmt, field_name: str,
               body: tuple[ast.Stmt, ...]) -> ast.Stmt:
    return dataclasses.replace(stmt, **{field_name: body})


def _statement_edits(stmts: tuple[ast.Stmt, ...],
                     ) -> Iterator[tuple[ast.Stmt, ...]]:
    """Every single-edit variant of one statement tuple (outermost first)."""
    for idx, stmt in enumerate(stmts):
        # 1. Drop the statement entirely.
        yield _replace_body(stmts, idx, ())
        if isinstance(stmt, ast.If):
            # 2. Replace the conditional by either arm.
            yield _replace_body(stmts, idx, stmt.then_body)
            if stmt.else_body:
                yield _replace_body(stmts, idx, stmt.else_body)
                yield _replace_body(
                    stmts, idx, (_with_body(stmt, "else_body", ()),))
        elif isinstance(stmt, ast.For):
            # 3. Unroll to init + one body copy, or clamp the bound to 1.
            yield _replace_body(stmts, idx, (stmt.init,) + stmt.body)
            if (isinstance(stmt.cond, ast.BinaryOp)
                    and isinstance(stmt.cond.right, ast.IntLit)
                    and stmt.cond.right.value > 1):
                clamped = dataclasses.replace(
                    stmt, cond=dataclasses.replace(
                        stmt.cond, right=ast.IntLit(line=0, value=1)))
                yield _replace_body(stmts, idx, (clamped,))
        elif isinstance(stmt, ast.While):
            yield _replace_body(stmts, idx, stmt.body)
        elif isinstance(stmt, ast.VarDecl) and stmt.init is not None:
            for init in _expr_edits(stmt.init):
                yield _replace_body(
                    stmts, idx, (dataclasses.replace(stmt, init=init),))
        elif isinstance(stmt, ast.Assign):
            for value in _expr_edits(stmt.value):
                yield _replace_body(
                    stmts, idx, (dataclasses.replace(stmt, value=value),))
        elif isinstance(stmt, ast.ArrayDecl) and stmt.size > 2:
            # Halve the RAM (stays a power of two, indices still wrap).
            yield _replace_body(
                stmts, idx, (dataclasses.replace(stmt, size=stmt.size // 2),))
        elif isinstance(stmt, ast.ArrayAssign):
            for index in _expr_edits(stmt.index):
                yield _replace_body(
                    stmts, idx, (dataclasses.replace(stmt, index=index),))
            for value in _expr_edits(stmt.value):
                yield _replace_body(
                    stmts, idx, (dataclasses.replace(stmt, value=value),))
        # 4. Recurse into compound bodies.
        if isinstance(stmt, ast.If):
            for body in _statement_edits(stmt.then_body):
                yield _replace_body(
                    stmts, idx, (_with_body(stmt, "then_body", body),))
            for body in _statement_edits(stmt.else_body):
                yield _replace_body(
                    stmts, idx, (_with_body(stmt, "else_body", body),))
        elif isinstance(stmt, (ast.For, ast.While)):
            for body in _statement_edits(stmt.body):
                yield _replace_body(stmts, idx, (_with_body(stmt, "body", body),))


def _expr_edits(expr: ast.Expr) -> Iterator[ast.Expr]:
    """Smaller variants of one expression (operands first, then literals)."""
    if isinstance(expr, ast.BinaryOp):
        yield expr.left
        yield expr.right
        for left in _expr_edits(expr.left):
            yield dataclasses.replace(expr, left=left)
        for right in _expr_edits(expr.right):
            yield dataclasses.replace(expr, right=right)
    elif isinstance(expr, ast.IndexExpr):
        yield ast.IntLit(line=0, value=0)  # drop the memory read outright
        for index in _expr_edits(expr.index):
            yield dataclasses.replace(expr, index=index)
    elif isinstance(expr, ast.UnaryOp):
        yield expr.operand
    elif isinstance(expr, ast.IntLit) and expr.value > 1:
        yield ast.IntLit(line=0, value=1)
        yield ast.IntLit(line=0, value=0)


def shrink_process(process: ast.Process,
                   predicate: Callable[[ast.Process], bool], *,
                   max_trials: int = MAX_TRIALS) -> ast.Process:
    """Minimize ``process`` while ``predicate`` holds.

    ``predicate`` receives a *valid* candidate process and returns True
    when the failure of interest still reproduces.  The original process
    is returned unchanged when the predicate does not hold for it (the
    failure is not standalone-reproducible) or the budget is exhausted
    immediately.  Deterministic: candidates are enumerated in a fixed
    order and the first accepted edit restarts the pass.
    """
    trials = 0

    def holds(candidate: ast.Process) -> bool:
        nonlocal trials
        if trials >= max_trials:
            return False
        trials += 1
        return is_valid(candidate) and bool(predicate(candidate))

    if not holds(process):
        return process
    current = process
    improved = True
    while improved and trials < max_trials:
        improved = False
        for body in _statement_edits(current.body):
            candidate = dataclasses.replace(current, body=body)
            if holds(candidate):
                current = candidate
                improved = True
                break
    return current
