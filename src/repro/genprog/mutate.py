"""AST-level mutators for the coverage-guided fuzzing fleet.

Four structural mutations over :class:`~repro.lang.ast_nodes.Process`
values, used by :mod:`repro.genprog.fleet` to grow corpus programs
toward uncovered structure:

* ``widen``  — re-type one declared variable (or one array's element
  type, perturbing RAM geometry) to a different width/sign;
* ``nest``   — wrap a span of statements in a fresh ``if`` / bounded
  ``for`` / countdown ``while`` (grows region-nesting depth and shape);
* ``graft``  — insert a renamed copy of a donor subtree at a new site;
* ``splice`` — replace one statement by a renamed donor subtree.

Safety is by construction, not by checking: the fleet validates every
mutant (parse, type-check, CDFG build) and *executes* it through the
interpreter and the AST evaluator, so a non-terminating mutant would
hang the validator.  The generator's termination discipline is
therefore preserved structurally:

* loop-control names (``for`` iterators, ``while`` countdown counters)
  are never assignment targets for new code, and the trailing decrement
  of a ``while`` body is never dropped, replaced or wrapped;
* donor fragments keep their internal structure; names they *declare*
  are renamed fresh, free names they *write* are bound to fresh local
  declarations prepended to the fragment (so a fragment's countdown
  loops stay decrement-only), and free names they only *read* are
  remapped to variables readable at the insertion site;
* ``nest`` never wraps a declaration whose variable is referenced after
  the wrapped span, and its new loops use fresh counters with constant
  bounds;
* array declarations are protected like scalar declarations while
  referenced later, and donor fragments never reference an array they
  do not themselves declare (a free array read cannot be remapped onto
  a scalar, and a fresh scalar cannot stand in for a RAM).

Mutations that are structurally inapplicable return ``None``; mutants
the CDFG builder soundly rejects (e.g. a loop-carried read with no
pre-loop value) are discarded by the fleet's rejection sampling.  All
randomness flows through the caller's ``rng`` — mutation is
deterministic per seed.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

from repro.genprog.config import DEFAULT_WIDTHS
from repro.lang import ast_nodes as ast

#: The mutation vocabulary, in the fleet's canonical order.
MUTATORS = ("splice", "graft", "widen", "nest")

_COMPARES = ("<", ">", "<=", ">=", "==", "!=")


# -- program facts --------------------------------------------------------------------


def loop_control_names(process: ast.Process) -> set[str]:
    """Names that steer loop termination: for-iterators, while-counters."""
    names: set[str] = set()
    for stmt in ast.walk_statements(process.body):
        if isinstance(stmt, ast.For):
            names.add(stmt.init.name)
        elif isinstance(stmt, ast.While):
            names |= ast.used_names(stmt.cond)
    return names


def _names_read(stmts) -> set[str]:
    """Every name read by any expression anywhere under ``stmts``."""
    out: set[str] = set()
    for stmt in ast.walk_statements(tuple(stmts)):
        for expr in ast.exprs_of(stmt):
            out |= ast.used_names(expr)
    return out


def _array_refs(stmts) -> set[str]:
    """Array names accessed (read or written) anywhere under ``stmts``."""

    def walk_expr(expr) -> set[str]:
        if isinstance(expr, ast.IndexExpr):
            return {expr.name} | walk_expr(expr.index)
        if isinstance(expr, ast.UnaryOp):
            return walk_expr(expr.operand)
        if isinstance(expr, ast.BinaryOp):
            return walk_expr(expr.left) | walk_expr(expr.right)
        return set()

    out: set[str] = set()
    for stmt in ast.walk_statements(tuple(stmts)):
        if isinstance(stmt, ast.ArrayAssign):
            out.add(stmt.name)
        for expr in ast.exprs_of(stmt):
            out |= walk_expr(expr)
    return out


class _Names:
    """Fresh-name supply avoiding every name in the involved processes."""

    def __init__(self, *processes: ast.Process):
        self.taken: set[str] = set()
        for process in processes:
            self.taken |= {p.name for p in process.inputs}
            self.taken |= {p.name for p in process.outputs}
            self.taken |= ast.assigned_names(process.body)
            self.taken |= _names_read(process.body)
        self._k = 0

    def fresh(self) -> str:
        while True:
            self._k += 1
            name = f"g{self._k}"
            if name not in self.taken:
                self.taken.add(name)
                return name


# -- block addressing -----------------------------------------------------------------


@dataclass
class _Block:
    """One statement tuple plus its address and per-position scopes."""

    path: tuple            # ((stmt index, body field), ...) from process.body
    stmts: tuple
    #: scopes[i] = tuple of (name, Type) readable before statement i;
    #: length is len(stmts) + 1 (the last entry is the block's end).
    scopes: list
    kind: str              # "top" | "if" | "for" | "while"


def _collect_blocks(process: ast.Process) -> list[_Block]:
    blocks: list[_Block] = []

    def walk(stmts: tuple, path: tuple, readable: tuple, kind: str) -> None:
        scopes = []
        cur = list(readable)
        for idx, stmt in enumerate(stmts):
            scopes.append(tuple(cur))
            if isinstance(stmt, ast.If):
                walk(stmt.then_body, path + ((idx, "then_body"),),
                     tuple(cur), "if")
                walk(stmt.else_body, path + ((idx, "else_body"),),
                     tuple(cur), "if")
            elif isinstance(stmt, (ast.For, ast.While)):
                walk(stmt.body, path + ((idx, "body"),), tuple(cur),
                     "for" if isinstance(stmt, ast.For) else "while")
            elif isinstance(stmt, ast.VarDecl):
                cur.append((stmt.name, stmt.declared_type))
        scopes.append(tuple(cur))
        blocks.append(_Block(path, stmts, scopes, kind))

    walk(process.body, (), tuple((p.name, p.type) for p in process.inputs),
         "top")
    blocks.sort(key=lambda b: b.path)
    return blocks


def _set_block(body: tuple, path: tuple, new_block: tuple) -> tuple:
    if not path:
        return new_block
    (idx, field), rest = path[0], path[1:]
    stmt = body[idx]
    inner = _set_block(getattr(stmt, field), rest, new_block)
    return body[:idx] + (dataclasses.replace(stmt, **{field: inner}),) + body[idx + 1:]


def _rebuild(process: ast.Process, block: _Block, new_stmts: tuple) -> ast.Process:
    return dataclasses.replace(
        process, body=_set_block(process.body, block.path, new_stmts))


# -- shared statement predicates ------------------------------------------------------


def _protected_indices(block: _Block, outputs: set[str]) -> set[int]:
    """Statement indices that must not be dropped, replaced or wrapped.

    The trailing decrement of a ``while`` body (termination), any
    assignment to an output (conformance reads them), and any
    declaration (scalar or array) whose name is referenced later in the
    block.
    """
    protected: set[int] = set()
    if block.kind == "while" and block.stmts:
        protected.add(len(block.stmts) - 1)
    for idx, stmt in enumerate(block.stmts):
        if outputs & ast.assigned_names((stmt,)):
            protected.add(idx)
        elif isinstance(stmt, ast.VarDecl):
            suffix = block.stmts[idx + 1:]
            if stmt.name in (_names_read(suffix) | ast.assigned_names(suffix)):
                protected.add(idx)
        elif isinstance(stmt, ast.ArrayDecl):
            suffix = block.stmts[idx + 1:]
            if stmt.name in (_names_read(suffix) | _array_refs(suffix)):
                protected.add(idx)
    return protected


def _compare(rng: random.Random, scope: tuple) -> ast.Expr:
    """A 1-bit condition over one in-scope variable (scope is never empty)."""
    name, _vtype = rng.choice(list(scope))
    return ast.BinaryOp(line=0, op=rng.choice(_COMPARES),
                        left=ast.VarRef(line=0, name=name),
                        right=ast.IntLit(line=0, value=rng.randrange(0, 8)))


# -- donor fragments ------------------------------------------------------------------


def _donor_type(donor: ast.Process, name: str) -> ast.Type:
    for stmt in ast.walk_statements(donor.body):
        if isinstance(stmt, ast.VarDecl) and stmt.name == name:
            return stmt.declared_type
    for param in (*donor.inputs, *donor.outputs):
        if param.name == name:
            return param.type
    return ast.Type(8, signed=True)


def _rename_expr(expr: ast.Expr, mapping: dict[str, str]) -> ast.Expr:
    if isinstance(expr, ast.VarRef):
        return dataclasses.replace(expr, name=mapping.get(expr.name, expr.name))
    if isinstance(expr, ast.IndexExpr):
        return dataclasses.replace(expr, name=mapping.get(expr.name, expr.name),
                                   index=_rename_expr(expr.index, mapping))
    if isinstance(expr, ast.UnaryOp):
        return dataclasses.replace(expr, operand=_rename_expr(expr.operand, mapping))
    if isinstance(expr, ast.BinaryOp):
        return dataclasses.replace(expr,
                                   left=_rename_expr(expr.left, mapping),
                                   right=_rename_expr(expr.right, mapping))
    return expr


def _rename_stmt(stmt: ast.Stmt, mapping: dict[str, str]) -> ast.Stmt:
    if isinstance(stmt, ast.VarDecl):
        init = None if stmt.init is None else _rename_expr(stmt.init, mapping)
        return dataclasses.replace(stmt, name=mapping.get(stmt.name, stmt.name),
                                   init=init)
    if isinstance(stmt, ast.ArrayDecl):
        return dataclasses.replace(stmt, name=mapping.get(stmt.name, stmt.name))
    if isinstance(stmt, ast.ArrayAssign):
        return dataclasses.replace(stmt, name=mapping.get(stmt.name, stmt.name),
                                   index=_rename_expr(stmt.index, mapping),
                                   value=_rename_expr(stmt.value, mapping))
    if isinstance(stmt, ast.Assign):
        return dataclasses.replace(stmt, name=mapping.get(stmt.name, stmt.name),
                                   value=_rename_expr(stmt.value, mapping))
    if isinstance(stmt, ast.If):
        return dataclasses.replace(
            stmt, cond=_rename_expr(stmt.cond, mapping),
            then_body=tuple(_rename_stmt(s, mapping) for s in stmt.then_body),
            else_body=tuple(_rename_stmt(s, mapping) for s in stmt.else_body))
    if isinstance(stmt, ast.For):
        return dataclasses.replace(
            stmt, init=_rename_stmt(stmt.init, mapping),
            cond=_rename_expr(stmt.cond, mapping),
            update=_rename_stmt(stmt.update, mapping),
            body=tuple(_rename_stmt(s, mapping) for s in stmt.body))
    if isinstance(stmt, ast.While):
        return dataclasses.replace(
            stmt, cond=_rename_expr(stmt.cond, mapping),
            body=tuple(_rename_stmt(s, mapping) for s in stmt.body))
    return stmt


def _remapped_fragment(frag: tuple, donor: ast.Process, scope: tuple,
                       rng: random.Random, names: _Names) -> tuple:
    """A renamed copy of ``frag`` safe to drop in where ``scope`` holds.

    Declared names become fresh; free written names get fresh local
    declarations (typed from the donor, initialized to a small literal)
    prepended so the fragment never writes site state — which also
    keeps donor countdown loops decrement-only; remaining free reads
    are remapped onto site-readable variables.
    """
    declared = {s.name for s in ast.walk_statements(frag)
                if isinstance(s, (ast.VarDecl, ast.ArrayDecl))}
    free_writes = ast.assigned_names(frag) - declared
    free_reads = _names_read(frag) - declared - free_writes
    mapping: dict[str, str] = {}
    prelude: list[ast.Stmt] = []
    for name in sorted(declared):
        mapping[name] = names.fresh()
    for name in sorted(free_writes):
        fresh = names.fresh()
        mapping[name] = fresh
        prelude.append(ast.VarDecl(
            line=0, name=fresh, declared_type=_donor_type(donor, name),
            init=ast.IntLit(line=0, value=rng.randrange(0, 8))))
    readable = [name for name, _vtype in scope]
    for name in sorted(free_reads):
        if readable:
            mapping[name] = rng.choice(readable)
        else:  # inputless site: bind the read to a fresh local instead
            fresh = names.fresh()
            mapping[name] = fresh
            prelude.append(ast.VarDecl(
                line=0, name=fresh, declared_type=_donor_type(donor, name),
                init=ast.IntLit(line=0, value=rng.randrange(0, 8))))
    return tuple(prelude) + tuple(_rename_stmt(s, mapping) for s in frag)


def _pick_fragment(donor: ast.Process, rng: random.Random) -> tuple | None:
    """One donor statement (possibly compound) as a 1-tuple fragment.

    Fragments that access an array they do not themselves declare are
    excluded: a free array reference cannot be remapped onto a scalar at
    the insertion site, and fresh scalar declarations cannot stand in
    for a RAM.
    """
    pool = []
    for block in _collect_blocks(donor):
        for stmt in block.stmts:
            frag = (stmt,)
            declared = {s.name for s in ast.walk_statements(frag)
                        if isinstance(s, ast.ArrayDecl)}
            if _array_refs(frag) - declared:
                continue
            pool.append(stmt)
    if not pool:
        return None
    return (rng.choice(pool),)


# -- the four mutators ----------------------------------------------------------------


def _widen(process: ast.Process, rng: random.Random,
           blocks: list[_Block], control: set[str]) -> ast.Process | None:
    decls = [(block, idx, stmt)
             for block in blocks
             for idx, stmt in enumerate(block.stmts)
             if (isinstance(stmt, ast.VarDecl) and stmt.name not in control)
             or isinstance(stmt, ast.ArrayDecl)]
    if not decls:
        return None
    block, idx, stmt = rng.choice(decls)
    old_type = (stmt.elem_type if isinstance(stmt, ast.ArrayDecl)
                else stmt.declared_type)
    current = (old_type.width, old_type.signed)
    pool = [spec for spec in DEFAULT_WIDTHS if spec != current]
    width, signed = rng.choice(pool)
    if isinstance(stmt, ast.ArrayDecl):
        # Re-typing an array's elements perturbs RAM geometry (and with
        # it port delay, area and the memory power term).
        new_stmt = dataclasses.replace(stmt, elem_type=ast.Type(width, signed))
    else:
        new_stmt = dataclasses.replace(stmt, declared_type=ast.Type(width, signed))
    return _rebuild(process, block,
                    block.stmts[:idx] + (new_stmt,) + block.stmts[idx + 1:])


def _nest(process: ast.Process, rng: random.Random, blocks: list[_Block],
          outputs: set[str], names: _Names) -> ast.Process | None:
    spans = []
    for block in blocks:
        protected = _protected_indices(block, outputs)
        for i in range(len(block.stmts)):
            for j in range(i + 1, len(block.stmts) + 1):
                if any(k in protected for k in range(i, j)):
                    break
                spans.append((block, i, j))
    if not spans:
        return None
    block, i, j = rng.choice(spans)
    span = block.stmts[i:j]
    scope = block.scopes[i]
    kind = rng.choice(("if", "for", "while"))
    if kind == "if":
        wrapped: tuple = (ast.If(line=0, cond=_compare(rng, scope),
                                 then_body=span, else_body=()),)
    elif kind == "for":
        it = names.fresh()
        decl = ast.VarDecl(line=0, name=it,
                           declared_type=ast.Type(8, signed=True),
                           init=ast.IntLit(line=0, value=0))
        loop = ast.For(
            line=0,
            init=ast.Assign(line=0, name=it, value=ast.IntLit(line=0, value=0)),
            cond=ast.BinaryOp(line=0, op="<",
                              left=ast.VarRef(line=0, name=it),
                              right=ast.IntLit(line=0,
                                               value=rng.randrange(2, 5))),
            update=ast.Assign(line=0, name=it, value=ast.BinaryOp(
                line=0, op="+", left=ast.VarRef(line=0, name=it),
                right=ast.IntLit(line=0, value=1))),
            body=span)
        wrapped = (decl, loop)
    else:
        counter = names.fresh()
        ctype = ast.Type(rng.randrange(2, 4), signed=False)
        decl = ast.VarDecl(line=0, name=counter, declared_type=ctype,
                           init=ast.IntLit(line=0, value=rng.randrange(1, 8)))
        loop = ast.While(
            line=0,
            cond=ast.BinaryOp(line=0, op=">",
                              left=ast.VarRef(line=0, name=counter),
                              right=ast.IntLit(line=0, value=0)),
            body=span + (ast.Assign(line=0, name=counter, value=ast.BinaryOp(
                line=0, op="-", left=ast.VarRef(line=0, name=counter),
                right=ast.IntLit(line=0, value=1))),))
        wrapped = (decl, loop)
    return _rebuild(process, block, block.stmts[:i] + wrapped + block.stmts[j:])


def _graft(process: ast.Process, rng: random.Random, blocks: list[_Block],
           donor: ast.Process, names: _Names,
           link_into: list[str]) -> ast.Process | None:
    sites = []
    for block in blocks:
        stop = len(block.stmts) if block.kind == "while" \
            else len(block.stmts) + 1
        sites.extend((block, pos) for pos in range(stop))
    if not sites:
        return None
    block, pos = rng.choice(sites)
    picked = _pick_fragment(donor, rng)
    if picked is None:
        return None
    frag = _remapped_fragment(picked, donor, block.scopes[pos], rng, names)
    # Optionally tie a fragment-declared variable into live dataflow so
    # the mutant is not pure dead code for the semantic oracles.
    fresh = [s.name for s in frag if isinstance(s, ast.VarDecl)]
    live = [name for name, _vtype in block.scopes[pos] if name in link_into]
    if fresh and live and rng.random() < 0.6:
        target = rng.choice(live)
        frag = frag + (ast.Assign(line=0, name=target, value=ast.BinaryOp(
            line=0, op="^", left=ast.VarRef(line=0, name=target),
            right=ast.VarRef(line=0, name=rng.choice(fresh)))),)
    return _rebuild(process, block,
                    block.stmts[:pos] + frag + block.stmts[pos:])


def _splice(process: ast.Process, rng: random.Random, blocks: list[_Block],
            donor: ast.Process, outputs: set[str],
            names: _Names) -> ast.Process | None:
    targets = []
    for block in blocks:
        protected = _protected_indices(block, outputs)
        targets.extend((block, idx) for idx in range(len(block.stmts))
                       if idx not in protected)
    if not targets:
        return None
    block, idx = rng.choice(targets)
    picked = _pick_fragment(donor, rng)
    if picked is None:
        return None
    frag = _remapped_fragment(picked, donor, block.scopes[idx], rng, names)
    return _rebuild(process, block,
                    block.stmts[:idx] + frag + block.stmts[idx + 1:])


def mutate(process: ast.Process, op: str, rng: random.Random, *,
           donor: ast.Process | None = None) -> ast.Process | None:
    """Apply mutator ``op`` to ``process``; ``None`` if inapplicable.

    ``donor`` supplies the subtree for ``graft``/``splice`` (defaults to
    the process itself).  The result preserves the generator's
    termination discipline by construction but may still be rejected by
    the CDFG builder — callers validate and resample.
    """
    donor = donor if donor is not None else process
    names = _Names(process, donor)
    control = loop_control_names(process)
    inputs = {p.name for p in process.inputs}
    outputs = {p.name for p in process.outputs}
    blocks = _collect_blocks(process)
    if op == "widen":
        return _widen(process, rng, blocks, control)
    if op == "nest":
        return _nest(process, rng, blocks, outputs, names)
    if op == "graft":
        link_into = sorted(ast.assigned_names(process.body)
                           - control - inputs - outputs)
        return _graft(process, rng, blocks, donor, names, link_into)
    if op == "splice":
        return _splice(process, rng, blocks, donor, outputs, names)
    raise ValueError(f"unknown mutator {op!r} (expected one of {MUTATORS})")
