"""Direct AST evaluation — the generator's independent semantic oracle.

:func:`evaluate_process` executes a process AST with a plain variable
environment, mirroring the *composed* semantics of the real pipeline
(``typecheck`` width rules + ``cdfg.builder`` node typing + the
interpreter's per-node wrapping) without ever building a CDFG.  Diffing
its outputs against :func:`repro.cdfg.interpreter.simulate` on the same
stimulus checks the whole emission → parse → CDFG-build → interpret
chain for semantic drift; the generator runs that diff on every program
it produces (the round-trip invariant), and the fuzz driver re-runs it
over the full fuzz stimulus.

The three wrapping rules being mirrored (see ``cdfg/builder.py``):

* every operator node wraps its raw result to ``result_type`` /
  ``unary_result_type`` of its operand types;
* **except** the top-level operator of an assignment, which the builder
  re-types to the target variable's declared (width, signed) — the raw
  result wraps straight to the variable type, with no intermediate
  ``result_type`` wrap;
* constant-constant subtrees fold *exactly* (no intermediate wrap) and
  carry ``literal_type`` of the folded value.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InterpreterError
from repro.lang import ast_nodes as ast
from repro.lang.typecheck import (
    check_process,
    literal_type,
    result_type,
    unary_result_type,
)
from repro.utils.bitwidth import mask_for_width, wrap_to_width

#: Safety cap on iterations of a single loop entry (mirrors the CDFG
#: interpreter's cap; generated loops are bounded far below either).
MAX_LOOP_ITERATIONS = 100_000


def _wrap(value: int, vtype: ast.Type) -> int:
    if vtype.signed:
        return wrap_to_width(value, vtype.width)
    return value & mask_for_width(vtype.width)


def _compute(op: str, a: int, b: int) -> int:
    """Raw (unwrapped) binary-operator result, as the interpreter computes it."""
    if op == "+":
        return a + b
    if op == "-":
        return a - b
    if op == "*":
        return a * b
    if op == "<<":
        return a << (b & 63)
    if op == ">>":
        return a >> (b & 63)
    if op == "<":
        return int(a < b)
    if op == ">":
        return int(a > b)
    if op == "<=":
        return int(a <= b)
    if op == ">=":
        return int(a >= b)
    if op == "==":
        return int(a == b)
    if op == "!=":
        return int(a != b)
    if op == "&&":
        return int(bool(a) and bool(b))
    if op == "||":
        return int(bool(a) or bool(b))
    if op == "&":
        return a & b
    if op == "|":
        return a | b
    if op == "^":
        return a ^ b
    raise InterpreterError(f"unknown binary operator {op!r}")


@dataclass(frozen=True)
class _Val:
    """One evaluated expression: wrapped value, type, const-foldedness,
    and the raw pre-wrap result (what an assignment would re-wrap)."""

    value: int
    type: ast.Type
    const: bool
    raw: int


class _Evaluator:
    def __init__(self, process: ast.Process,
                 max_loop_iterations: int = MAX_LOOP_ITERATIONS):
        self._process = process
        checked = check_process(process)
        self._types = checked.var_types
        self._array_types = checked.array_types
        self._max_iter = max_loop_iterations
        self._env: dict[str, int] = {}
        # Arrays persist across run() calls on the same evaluator, mirroring
        # the powered-up circuit: zero at construction, then whatever the
        # previous pass stored.
        self._mem: dict[str, list[int]] = {
            name: [0] * size for name, (_t, size) in self._array_types.items()}

    def run(self, inputs: dict[str, int]) -> dict[str, int]:
        self._env = {}
        for param in self._process.inputs:
            if param.name not in inputs:
                raise InterpreterError(f"missing input {param.name!r}")
            self._env[param.name] = _wrap(inputs[param.name], param.type)
        self._exec_body(self._process.body)
        outputs: dict[str, int] = {}
        for param in self._process.outputs:
            outputs[param.name] = _wrap(self._env[param.name], param.type)
        return outputs

    # -- statements -----------------------------------------------------------

    def _exec_body(self, body: tuple[ast.Stmt, ...]) -> None:
        for stmt in body:
            self._exec_stmt(stmt)

    def _exec_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._assign(stmt.name, stmt.init)
        elif isinstance(stmt, ast.ArrayDecl):
            pass  # storage was created at evaluator construction
        elif isinstance(stmt, ast.ArrayAssign):
            etype, _size = self._array_types[stmt.name]
            contents = self._mem[stmt.name]
            addr = self._eval(stmt.index).value & (len(contents) - 1)
            # Unlike scalar assignment, the builder does NOT re-type the top
            # op of a stored value: the value node wraps to its natural
            # result type, then the STORE wraps again to the element type.
            contents[addr] = _wrap(self._eval(stmt.value).value, etype)
        elif isinstance(stmt, ast.Assign):
            self._assign(stmt.name, stmt.value)
        elif isinstance(stmt, ast.If):
            if self._eval(stmt.cond).value:
                self._exec_body(stmt.then_body)
            else:
                self._exec_body(stmt.else_body)
        elif isinstance(stmt, ast.For):
            self._exec_stmt(stmt.init)
            iterations = 0
            while self._eval(stmt.cond).value:
                iterations += 1
                if iterations > self._max_iter:
                    raise InterpreterError(
                        f"for loop at line {stmt.line} exceeded "
                        f"{self._max_iter} iterations")
                self._exec_body(stmt.body)
                self._exec_stmt(stmt.update)
        elif isinstance(stmt, ast.While):
            iterations = 0
            while self._eval(stmt.cond).value:
                iterations += 1
                if iterations > self._max_iter:
                    raise InterpreterError(
                        f"while loop at line {stmt.line} exceeded "
                        f"{self._max_iter} iterations")
                self._exec_body(stmt.body)
        else:
            raise InterpreterError(f"unknown statement {type(stmt).__name__}")

    def _assign(self, name: str, value: ast.Expr) -> None:
        vtype = self._types[name]
        result = self._eval(value)
        if isinstance(value, (ast.BinaryOp, ast.UnaryOp)) and not result.const:
            # The builder re-types the top op node to the variable's type:
            # its raw result wraps straight to (width, signed).
            self._env[name] = _wrap(result.raw, vtype)
        else:
            self._env[name] = _wrap(result.value, vtype)

    # -- expressions ----------------------------------------------------------

    def _eval(self, expr: ast.Expr) -> _Val:
        if isinstance(expr, ast.IntLit):
            return _Val(expr.value, literal_type(expr.value), True, expr.value)
        if isinstance(expr, ast.BoolLit):
            value = int(expr.value)
            return _Val(value, ast.Type(1, signed=False), True, value)
        if isinstance(expr, ast.VarRef):
            if expr.name not in self._env:
                raise InterpreterError(
                    f"read of unassigned variable {expr.name!r}")
            value = self._env[expr.name]
            return _Val(value, self._types[expr.name], False, value)
        if isinstance(expr, ast.IndexExpr):
            etype, _size = self._array_types[expr.name]
            contents = self._mem[expr.name]
            addr = self._eval(expr.index).value & (len(contents) - 1)
            value = contents[addr]
            return _Val(value, etype, False, value)
        if isinstance(expr, ast.UnaryOp):
            return self._eval_unary(expr)
        if isinstance(expr, ast.BinaryOp):
            return self._eval_binary(expr)
        raise InterpreterError(f"unknown expression {type(expr).__name__}")

    def _eval_unary(self, expr: ast.UnaryOp) -> _Val:
        operand = self._eval(expr.operand)
        if expr.op == "-":
            if operand.const:
                value = -operand.value
                return _Val(value, literal_type(value), True, value)
            rtype = unary_result_type("-", operand.type)
            raw = 0 - operand.value
            return _Val(_wrap(raw, rtype), rtype, False, raw)
        if expr.op == "!":
            # The builder always materializes a 1-bit LNOT node (no fold).
            raw = int(not operand.value)
            return _Val(raw, ast.Type(1, signed=False), False, raw)
        raise InterpreterError(f"unknown unary operator {expr.op!r}")

    def _eval_binary(self, expr: ast.BinaryOp) -> _Val:
        left = self._eval(expr.left)
        right = self._eval(expr.right)
        if left.const and right.const:
            foldable = expr.op not in ("<<", ">>") or 0 <= right.value < 64
            if foldable:
                value = _compute(expr.op, left.value, right.value)
                return _Val(value, literal_type(value), True, value)
        rtype = result_type(expr.op, left.type, right.type)
        raw = _compute(expr.op, left.value, right.value)
        return _Val(_wrap(raw, rtype), rtype, False, raw)


def evaluate_process(process: ast.Process, inputs: dict[str, int], *,
                     max_loop_iterations: int = MAX_LOOP_ITERATIONS,
                     ) -> dict[str, int]:
    """Execute one pass of a process AST; returns its output values.

    Arrays start from zero on every call (power-on state).  Programs that
    zero-initialize their arrays before any data-dependent read — the
    discipline the generator enforces — behave identically under this
    per-pass-stateless evaluation and the persistent-memory semantics of
    the real pipeline.

    Raises :class:`InterpreterError` on missing inputs, reads of
    never-assigned variables, or a loop exceeding the iteration cap.
    """
    return _Evaluator(process, max_loop_iterations).run(inputs)


def evaluate_passes(process: ast.Process, input_passes: list[dict[str, int]], *,
                    max_loop_iterations: int = MAX_LOOP_ITERATIONS,
                    ) -> list[dict[str, int]]:
    """Execute several passes on ONE evaluator: arrays persist across
    passes, exactly like the CDFG interpreter and the hardware backends."""
    evaluator = _Evaluator(process, max_loop_iterations)
    return [evaluator.run(inputs) for inputs in input_passes]
