"""Seeded random generator of control-flow-intensive behavioral programs.

:func:`generate_program` turns a :class:`~repro.genprog.config.GenConfig`
into a :class:`GeneratedProgram`: a well-typed process AST plus its
emitted source text, a seeded stimulus generator over the program's own
input types, and a reference model (the direct AST evaluator).  The
output is **accepted by the real frontend by construction** and
**terminating by construction**:

* every variable is declared (with an explicit type) and initialized
  before any use, names are globally unique (the CDFG builder rejects
  shadowing), and block-local variables are only referenced inside their
  block;
* ``for`` loops run to small constant bounds with untouched iterators;
  ``while`` loops are countdowns over a fresh unsigned counter that is
  decremented exactly once per iteration, bounding every entry to
  ``2**width - 1`` trips;
* conditions are always 1-bit expressions (comparisons / logical
  connectives), never bare multi-bit variables — the CDFG builder's
  1-bit condition funnel makes wider conditions structurally ambiguous;
* loops carry dependencies: each loop body starts with an accumulation
  into a variable declared outside the loop.

Every generated program passes the **round-trip invariant** before it is
returned: the emitted source is re-parsed (structural equality with the
generated AST), compiled to a CDFG, interpreted over a seeded stimulus,
and diffed against :func:`repro.genprog.evaluate.evaluate_process`.  Any
disagreement raises :class:`~repro.errors.GenerationError` — the
generator never hands out a program whose frontend round-trip changed
its semantics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.genprog.config import GenConfig
from repro.genprog.emit import emit_source, strip_positions
from repro.genprog.evaluate import evaluate_passes, evaluate_process
from repro.lang import ast_nodes as ast
from repro.lang.frontend import parse_process

#: Binary operators available to value expressions, with draw weights
#: (control-flow-intensive mix: cheap ALU ops dominate, multiplies rare).
_VALUE_OPS: tuple[tuple[str, int], ...] = (
    ("+", 5), ("-", 5), ("&", 2), ("|", 2), ("^", 2),
    ("*", 1), ("<<", 1), (">>", 1),
)

_COMPARE_OPS: tuple[str, ...] = ("<", ">", "<=", ">=", "==", "!=")


def _weighted(rng: random.Random, table: tuple[tuple[str, int], ...]) -> str:
    total = sum(weight for _, weight in table)
    pick = rng.randrange(total)
    for item, weight in table:
        pick -= weight
        if pick < 0:
            return item
    raise AssertionError("unreachable")


def _has_var(expr: ast.Expr) -> bool:
    return bool(ast.used_names(expr))


@dataclass(frozen=True)
class GeneratedProgram:
    """One generated benchmark-shaped program.

    ``stimulus``/``reference`` mirror the registry :class:`Benchmark`
    protocol so generated programs can ride the same synthesis,
    exploration and conformance machinery as the paper's six.
    """

    name: str
    config: GenConfig
    process: ast.Process
    source: str

    def stimulus(self, n_passes: int, seed: int = 0) -> list[dict[str, int]]:
        """Seeded uniform stimulus over the program's own input types."""
        rng = random.Random(f"stim:{self.config.seed}:{seed}")
        passes = []
        for _ in range(n_passes):
            inputs = {}
            for param in self.process.inputs:
                if param.type.signed:
                    lo, hi = -(1 << (param.type.width - 1)), 1 << (param.type.width - 1)
                else:
                    lo, hi = 0, 1 << param.type.width
                inputs[param.name] = rng.randrange(lo, hi)
            passes.append(inputs)
        return passes

    def reference(self, **inputs: int) -> dict[str, int]:
        """Reference outputs for one pass (the direct AST evaluator)."""
        return evaluate_process(self.process, inputs)

    @property
    def n_statements(self) -> int:
        return sum(1 for _ in ast.walk_statements(self.process.body))

    def cdfg(self):
        from repro.lang import parse

        return parse(self.source)


@dataclass
class _Scope:
    """What a block may read and write while being generated."""

    #: (name, type) pairs readable here (inputs + initialized variables).
    readable: list[tuple[str, ast.Type]] = field(default_factory=list)
    #: Names assignable here (excludes inputs and active loop counters).
    assignable: list[str] = field(default_factory=list)

    def child(self) -> "_Scope":
        return _Scope(list(self.readable), list(self.assignable))

    def type_of(self, name: str) -> ast.Type:
        for var, vtype in self.readable:
            if var == name:
                return vtype
        raise KeyError(name)


class _Generator:
    def __init__(self, config: GenConfig, name: str):
        self._cfg = config.validated()
        # String seeding hashes with sha512 — stable across platforms
        # and python versions, which the pinned corpus relies on.
        self._rng = random.Random(f"genprog:{config.seed}")
        self._name = name
        self._counter = 0
        self._budget = config.ops_budget
        #: (name, element type, size) of every declared array.  Empty when
        #: array_density is 0 — and every array-related rng draw below is
        #: short-circuited on this list, so disabling arrays reproduces
        #: pre-array programs byte-identically.
        self._arrays: list[tuple[str, ast.Type, int]] = []

    def _fresh(self, prefix: str) -> str:
        self._counter += 1
        return f"{prefix}{self._counter}"

    def _type(self) -> ast.Type:
        width, signed = self._rng.choice(self._cfg.widths)
        return ast.Type(width, signed)

    # -- expressions --------------------------------------------------------

    def _literal(self) -> ast.IntLit:
        return ast.IntLit(line=0, value=self._rng.randrange(0, 16))

    def _var_ref(self, scope: _Scope) -> ast.VarRef:
        name, _vtype = self._rng.choice(scope.readable)
        return ast.VarRef(line=0, name=name)

    def _expr(self, scope: _Scope, depth: int, *, loads: bool = True) -> ast.Expr:
        """A value expression (binary ops always read >= 1 variable).

        ``loads=False`` keeps array reads out of the tree — conditions use
        it, because the frontend rejects loads in loop tests (the kernel
        scheduler hoists tests past body stores).
        """
        rng = self._rng
        if depth <= 0 or rng.random() < 0.35:
            if loads and self._arrays and rng.random() < 0.30:
                return self._load(scope)
            if rng.random() < 0.25:
                return self._literal()
            return self._var_ref(scope)
        op = _weighted(rng, _VALUE_OPS)
        if op in ("<<", ">>"):
            left = self._expr(scope, depth - 1, loads=loads)
            if rng.random() < 0.25:
                # Variable shift amount, masked small: a >> (b & 3).
                right: ast.Expr = ast.BinaryOp(
                    line=0, op="&", left=self._var_ref(scope),
                    right=ast.IntLit(line=0, value=3))
            else:
                right = ast.IntLit(line=0, value=rng.randrange(1, 4))
            return ast.BinaryOp(line=0, op=op, left=left, right=right)
        left = self._expr(scope, depth - 1, loads=loads)
        if rng.random() < 0.3:
            right = self._literal()
        else:
            right = self._expr(scope, depth - 1, loads=loads)
        if not _has_var(left) and not _has_var(right):
            right = self._var_ref(scope)
        expr = ast.BinaryOp(line=0, op=op, left=left, right=right)
        if rng.random() < 0.08:
            return ast.UnaryOp(line=0, op="-", operand=expr)
        return expr

    def _compare(self, scope: _Scope) -> ast.Expr:
        rng = self._rng
        op = rng.choice(_COMPARE_OPS)
        left = self._expr(scope, 1, loads=False)
        right = (self._literal() if rng.random() < 0.5
                 else self._expr(scope, 1, loads=False))
        if not _has_var(left) and not _has_var(right):
            right = self._var_ref(scope)
        return ast.BinaryOp(line=0, op=op, left=left, right=right)

    # -- array accesses -----------------------------------------------------

    def _index(self, scope: _Scope) -> ast.Expr:
        """A small index expression; any value works (indices wrap)."""
        if self._rng.random() < 0.6:
            return self._var_ref(scope)
        return self._literal()

    def _load(self, scope: _Scope) -> ast.IndexExpr:
        name, _etype, _size = self._rng.choice(self._arrays)
        return ast.IndexExpr(line=0, name=name, index=self._index(scope))

    def _store(self, scope: _Scope) -> ast.ArrayAssign:
        name, _etype, _size = self._rng.choice(self._arrays)
        return ast.ArrayAssign(line=0, name=name, index=self._index(scope),
                               value=self._expr(scope, self._cfg.expr_depth))

    def _load_assign(self, scope: _Scope) -> ast.Assign:
        """A scalar assignment guaranteed to read an array."""
        name = self._rng.choice(scope.assignable)
        load = self._load(scope)
        if self._rng.random() < 0.5:
            value: ast.Expr = load
        else:
            value = ast.BinaryOp(line=0, op=self._rng.choice(("+", "-", "^")),
                                 left=load, right=self._var_ref(scope))
        return ast.Assign(line=0, name=name, value=value)

    def _array_prelude(self) -> tuple[ast.Stmt, ...]:
        """Declare one array and zero-fill it with a generated loop.

        The fill runs before any dynamic access, so every later load sees
        only values stored this pass — which is what keeps the per-pass
        stateless AST-evaluator reference valid even though arrays persist
        across passes in the real pipeline.
        """
        name = self._fresh("m")
        etype = self._type()
        size = self._rng.choice(self._cfg.array_sizes)
        self._arrays.append((name, etype, size))
        iterator = self._fresh("z")
        itype = ast.Type(max(8, size.bit_length() + 1), signed=True)
        self._budget -= 2
        return (
            ast.ArrayDecl(line=0, name=name, elem_type=etype, size=size),
            ast.VarDecl(line=0, name=iterator, declared_type=itype,
                        init=ast.IntLit(line=0, value=0)),
            ast.For(
                line=0,
                init=ast.Assign(line=0, name=iterator,
                                value=ast.IntLit(line=0, value=0)),
                cond=ast.BinaryOp(line=0, op="<",
                                  left=ast.VarRef(line=0, name=iterator),
                                  right=ast.IntLit(line=0, value=size)),
                update=ast.Assign(line=0, name=iterator, value=ast.BinaryOp(
                    line=0, op="+", left=ast.VarRef(line=0, name=iterator),
                    right=ast.IntLit(line=0, value=1))),
                body=(ast.ArrayAssign(line=0, name=name,
                                      index=ast.VarRef(line=0, name=iterator),
                                      value=ast.IntLit(line=0, value=0)),)),
        )

    def _condition(self, scope: _Scope) -> ast.Expr:
        """A 1-bit condition: comparisons joined by logical connectives."""
        rng = self._rng
        cond = self._compare(scope)
        if rng.random() < 0.25:
            cond = ast.BinaryOp(line=0, op=rng.choice(("&&", "||")),
                                left=cond, right=self._compare(scope))
        if rng.random() < 0.10:
            cond = ast.UnaryOp(line=0, op="!", operand=cond)
        return cond

    # -- statements ---------------------------------------------------------

    def _assign(self, scope: _Scope) -> ast.Assign:
        name = self._rng.choice(scope.assignable)
        return ast.Assign(line=0, name=name, value=self._expr(
            scope, self._cfg.expr_depth))

    def _decl(self, scope: _Scope) -> ast.VarDecl:
        name = self._fresh("v")
        vtype = self._type()
        decl = ast.VarDecl(line=0, name=name, declared_type=vtype,
                           init=self._expr(scope, self._cfg.expr_depth))
        scope.readable.append((name, vtype))
        scope.assignable.append(name)
        return decl

    def _accumulation(self, scope: _Scope, extra: ast.Expr | None = None,
                      ) -> ast.Assign:
        """A loop-carried dependency: acc = acc op expr."""
        name = self._rng.choice(scope.assignable)
        op = self._rng.choice(("+", "-", "^", "+", "|"))
        operand = extra if extra is not None else self._expr(scope, 1)
        return ast.Assign(line=0, name=name, value=ast.BinaryOp(
            line=0, op=op, left=ast.VarRef(line=0, name=name), right=operand))

    def _if(self, scope: _Scope, depth: int) -> ast.If:
        cond = self._condition(scope)
        then_body = self._block(scope.child(), depth + 1, min_stmts=1)
        else_body: tuple[ast.Stmt, ...] = ()
        if self._rng.random() < 0.7:
            else_body = self._block(scope.child(), depth + 1, min_stmts=1)
        return ast.If(line=0, cond=cond, then_body=then_body,
                      else_body=else_body)

    def _for(self, scope: _Scope, depth: int) -> tuple[ast.Stmt, ...]:
        """A bounded for loop (plus a hoisted iterator declaration).

        The declaration makes the iterator block-scoped: a bare
        header-init assignment would be the variable's first definition,
        and inside an ``if`` arm under an enclosing loop the CDFG
        builder (soundly) rejects that as a loop-carried read with no
        pre-branch value.  Declared variables are arm-local instead.
        """
        iterator = self._fresh("i")
        bound = self._rng.randrange(2, self._cfg.max_for_bound + 1)
        body_scope = scope.child()
        # The iterator is readable inside the body but never assignable.
        body_scope.readable.append((iterator, ast.Type(8, signed=True)))
        body = (self._accumulation(body_scope,
                                   extra=ast.VarRef(line=0, name=iterator)),
                *self._block(body_scope, depth + 1, min_stmts=0))
        self._budget -= 2
        decl = ast.VarDecl(line=0, name=iterator,
                           declared_type=ast.Type(8, signed=True),
                           init=ast.IntLit(line=0, value=0))
        loop = ast.For(
            line=0,
            init=ast.Assign(line=0, name=iterator,
                            value=ast.IntLit(line=0, value=0)),
            cond=ast.BinaryOp(line=0, op="<",
                              left=ast.VarRef(line=0, name=iterator),
                              right=ast.IntLit(line=0, value=bound)),
            update=ast.Assign(line=0, name=iterator, value=ast.BinaryOp(
                line=0, op="+", left=ast.VarRef(line=0, name=iterator),
                right=ast.IntLit(line=0, value=1))),
            body=body)
        return decl, loop

    def _while(self, scope: _Scope, depth: int) -> tuple[ast.Stmt, ...]:
        """A countdown while loop (plus its counter declaration)."""
        counter = self._fresh("t")
        bits = self._rng.randrange(2, self._cfg.max_while_bits + 1)
        ctype = ast.Type(bits, signed=False)
        decl = ast.VarDecl(line=0, name=counter, declared_type=ctype,
                           init=self._expr(scope, 1))
        body_scope = scope.child()
        # Counter readable but not assignable: the trailing decrement is
        # the only write, so every entry terminates in < 2**bits trips.
        body_scope.readable.append((counter, ctype))
        body = (self._accumulation(body_scope),
                *self._block(body_scope, depth + 1, min_stmts=0),
                ast.Assign(line=0, name=counter, value=ast.BinaryOp(
                    line=0, op="-", left=ast.VarRef(line=0, name=counter),
                    right=ast.IntLit(line=0, value=1))))
        loop = ast.While(line=0, cond=ast.BinaryOp(
            line=0, op=">", left=ast.VarRef(line=0, name=counter),
            right=ast.IntLit(line=0, value=0)), body=body)
        self._budget -= 2
        return decl, loop

    def _block(self, scope: _Scope, depth: int, *,
               min_stmts: int) -> tuple[ast.Stmt, ...]:
        cfg = self._cfg
        rng = self._rng
        stmts: list[ast.Stmt] = []
        n_slots = max(min_stmts, rng.randrange(1, 4))
        while len(stmts) < n_slots and (self._budget > 0
                                        or len(stmts) < min_stmts):
            self._budget -= 1
            roll = rng.random()
            if depth < cfg.max_depth and roll < cfg.branch_density:
                stmts.append(self._if(scope, depth))
            elif depth < cfg.max_depth and roll < (cfg.branch_density
                                                   + cfg.loop_density):
                if rng.random() < 0.5:
                    stmts.extend(self._for(scope, depth))
                else:
                    stmts.extend(self._while(scope, depth))
            elif self._arrays and roll < (cfg.branch_density + cfg.loop_density
                                          + cfg.array_density):
                if rng.random() < 0.5:
                    stmts.append(self._store(scope))
                else:
                    stmts.append(self._load_assign(scope))
            elif roll < cfg.branch_density + cfg.loop_density + 0.15:
                stmts.append(self._decl(scope))
            else:
                stmts.append(self._assign(scope))
        return tuple(stmts)

    # -- top level ----------------------------------------------------------

    def run(self) -> ast.Process:
        cfg = self._cfg
        rng = self._rng
        inputs = []
        for idx in range(cfg.n_inputs):
            inputs.append(ast.Param(f"a{idx}", self._type()))
        if cfg.n_inputs >= 2 and len({p.type.signed for p in inputs}) == 1:
            # Guarantee a signed/unsigned mix among the inputs.
            want = not inputs[0].type.signed
            pool = [w for w in cfg.widths if w[1] is want]
            width, signed = rng.choice(pool or [(8, want)])
            inputs[1] = ast.Param(inputs[1].name, ast.Type(width, signed))
        outputs = [ast.Param(f"o{idx}", self._type())
                   for idx in range(cfg.n_outputs)]

        scope = _Scope(readable=[(p.name, p.type) for p in inputs],
                       assignable=[])
        body: list[ast.Stmt] = []
        for _ in range(max(2, cfg.n_outputs)):
            body.append(self._decl(scope))
        if cfg.array_density > 0:
            for _ in range(cfg.n_arrays):
                body.extend(self._array_prelude())
        body.extend(self._block(scope, 0, min_stmts=2))
        for param in outputs:
            body.append(ast.Assign(line=0, name=param.name,
                                   value=self._expr(scope, cfg.expr_depth)))
        return ast.Process(name=self._name, inputs=tuple(inputs),
                           outputs=tuple(outputs), body=tuple(body), line=1)


def check_roundtrip(program: GeneratedProgram, *, n_passes: int | None = None,
                    seed: int = 1):
    """The generator-level semantic invariant (satellite of the fuzz loop).

    Re-parses the program's own emission, asserts the parsed AST is
    structurally identical to the generated one, compiles it to a CDFG
    and diffs the interpreter's outputs against the direct AST evaluator
    over a seeded stimulus.  Raises :class:`GenerationError` on any
    drift — a program that fails this check is itself a shrunken-down
    frontend bug reproducer, never a valid corpus entry.

    Returns the validated CDFG so callers (the fuzz chain) can hand it
    straight to synthesis instead of re-parsing the same source.
    """
    from repro.cdfg.builder import build_cdfg
    from repro.cdfg.interpreter import simulate

    try:
        parsed = parse_process(program.source)
    except Exception as exc:
        raise GenerationError(
            f"{program.name}: emitted source does not re-parse: {exc}") from exc
    if strip_positions(parsed) != strip_positions(program.process):
        raise GenerationError(
            f"{program.name}: parse(emit(ast)) is not the emitted AST")
    cdfg = build_cdfg(parsed)
    cdfg.validate()
    n = n_passes if n_passes is not None else program.config.validate_passes
    stimulus = program.stimulus(n, seed=seed)
    store = simulate(cdfg, stimulus)
    # One evaluator across all passes: arrays persist, like the pipeline.
    expected_passes = evaluate_passes(program.process, stimulus)
    for idx, (inputs, expected) in enumerate(zip(stimulus, expected_passes)):
        for name, value in expected.items():
            got = int(store.outputs[name][idx])
            if got != value:
                raise GenerationError(
                    f"{program.name}: frontend round-trip changed semantics: "
                    f"pass {idx} output {name} = {got} (interpreter) but the "
                    f"AST evaluator says {value} for inputs {inputs}")
    return cdfg


def generate_program(config: GenConfig | None = None, *,
                     name: str | None = None,
                     check: bool = True) -> GeneratedProgram:
    """Generate one program from ``config`` (bit-reproducible per config).

    ``check=True`` (the default) runs :func:`check_roundtrip` before
    returning; disable it only inside the shrinker, which re-validates
    candidates itself.
    """
    config = (config or GenConfig()).validated()
    safe_seed = str(config.seed).replace("-", "m")
    process_name = name or f"gen{safe_seed}"
    process = _Generator(config, process_name).run()
    program = GeneratedProgram(name=process_name, config=config,
                               process=process, source=emit_source(process))
    if check:
        check_roundtrip(program)
    return program


def program_from_source(source: str, *, config: GenConfig | None = None,
                        ) -> GeneratedProgram:
    """Wrap externally-supplied source (e.g. a saved fuzz reproducer).

    Parses and type-checks ``source`` and returns a
    :class:`GeneratedProgram` whose stimulus/reference are derived from
    the parsed AST — the hook behind ``repro fuzz --replay``.
    """
    process = parse_process(source)
    return GeneratedProgram(name=process.name,
                            config=(config or GenConfig()).validated(),
                            process=process, source=source)
