"""Random CFI program generation, shrinking, and the fuzz harness.

The subsystem behind ``python -m repro fuzz`` and the ``synth_*``
benchmark corpus:

* :class:`GenConfig` / :func:`generate_program` — seeded random
  control-flow-intensive programs, well-typed and terminating by
  construction, semantically round-trip-checked against the frontend;
* :func:`evaluate_process` — the direct AST evaluator used as the
  generator's independent reference model;
* :func:`shrink_process` — greedy minimizer turning any failing program
  into a small reproducer;
* :mod:`repro.genprog.corpus` — the pinned-seed ``synth_N`` benchmark
  family registered into ``repro.benchmarks``;
* :mod:`repro.genprog.fuzz` — the generate → synthesize → conformance
  pipeline driven by the CLI and the nightly CI job.

See ``docs/fuzzing.md``.
"""

from repro.genprog.config import DEFAULT_WIDTHS, GenConfig
from repro.genprog.emit import emit_source, strip_positions
from repro.genprog.evaluate import evaluate_process
from repro.genprog.generator import (
    GeneratedProgram,
    check_roundtrip,
    generate_program,
    program_from_source,
)
from repro.genprog.shrink import shrink_process

__all__ = [
    "DEFAULT_WIDTHS",
    "GenConfig",
    "GeneratedProgram",
    "check_roundtrip",
    "emit_source",
    "evaluate_process",
    "generate_program",
    "program_from_source",
    "shrink_process",
    "strip_positions",
]
