"""Random CFI program generation, shrinking, and the fuzz harness.

The subsystem behind ``python -m repro fuzz`` and the ``synth_*``
benchmark corpus:

* :class:`GenConfig` / :func:`generate_program` — seeded random
  control-flow-intensive programs, well-typed and terminating by
  construction, semantically round-trip-checked against the frontend;
* :func:`evaluate_process` — the direct AST evaluator used as the
  generator's independent reference model;
* :func:`shrink_process` — greedy minimizer turning any failing program
  into a small reproducer;
* :mod:`repro.genprog.corpus` — the pinned-seed ``synth_N`` benchmark
  family registered into ``repro.benchmarks``;
* :mod:`repro.genprog.fuzz` — the generate → synthesize → conformance
  pipeline driven by the CLI and the nightly CI job;
* :mod:`repro.genprog.coverage` / :func:`extract_coverage` — structural
  coverage bins read off the pipeline's own artifacts;
* :mod:`repro.genprog.mutate` / :func:`mutate` — AST-level splice /
  graft / widen / nest mutators over generated programs;
* :mod:`repro.genprog.fleet` / :func:`fleet_run` — the coverage-guided
  fuzzing fleet behind ``python -m repro fuzz --coverage``.

See ``docs/fuzzing.md``.
"""

from repro.genprog.config import DEFAULT_WIDTHS, GenConfig
from repro.genprog.coverage import bin_families, coverage_digest, extract_coverage
from repro.genprog.emit import emit_source, strip_positions
from repro.genprog.evaluate import evaluate_process
from repro.genprog.fleet import Corpus, FleetReport, fleet_run, triage_digest
from repro.genprog.generator import (
    GeneratedProgram,
    check_roundtrip,
    generate_program,
    program_from_source,
)
from repro.genprog.mutate import MUTATORS, mutate
from repro.genprog.shrink import shrink_process

__all__ = [
    "Corpus",
    "DEFAULT_WIDTHS",
    "FleetReport",
    "GenConfig",
    "GeneratedProgram",
    "MUTATORS",
    "bin_families",
    "check_roundtrip",
    "coverage_digest",
    "emit_source",
    "evaluate_process",
    "extract_coverage",
    "fleet_run",
    "generate_program",
    "mutate",
    "program_from_source",
    "shrink_process",
    "strip_positions",
    "triage_digest",
]
