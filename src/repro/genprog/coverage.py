"""Structural coverage bins for the coverage-guided fuzzing fleet.

The fleet (:mod:`repro.genprog.fleet`) steers generation toward program
*structure* the pipeline has not exercised yet.  "Structure" is read off
the artifacts the pipeline already computes — never off ids, timings or
anything else that varies run to run:

* ``shape:*`` / ``depth:*`` — region-nesting shapes from the CDFG region
  tree (the same tree wavesched schedules);
* ``move:*`` / ``commit:*`` — move kinds fired during the
  iterative-improvement search, from
  :class:`~repro.core.search.SearchHistory`;
* ``stg:*`` — transition patterns of the scheduled STG (state-count
  bucket, branch fan-out, guard arity, multi-cycle states), from the
  same content the store's :func:`~repro.store.codec.digest_key`
  signatures hash;
* ``path:*`` — conformance-path depth: how many states a stimulus pass
  actually walks during replay, and whether that depth is
  data-dependent;
* ``mem:*`` — array/RAM structure (array count, total words, access
  kinds, read-modify-write) from the CDFG's memory nodes.

Every bin is a short string, every extractor is a pure function of
bit-reproducible inputs, so a program's coverage is **deterministic per
seed and identical across cache on/off and store warm/cold** — the
property test in ``tests/test_coverage.py`` enforces exactly that.
"""

from __future__ import annotations

from repro.cdfg.node import OpKind
from repro.cdfg.regions import BlockRegion, IfRegion, LoopRegion
from repro.core.profile import PROFILER

#: Branch fan-out and guard-arity bins are capped here: beyond this the
#: exact value stops being interesting and would fragment the corpus.
_CAP = 6


def _bucket(value: int) -> int:
    """Log2 bucket of a non-negative count (0->0, 1->1, 2-3->2, 4-7->3...)."""
    bucket = 0
    while value > 0:
        value >>= 1
        bucket += 1
    return bucket


def region_bins(cdfg) -> frozenset[str]:
    """``shape:`` and ``depth:`` bins from the CDFG region tree.

    Each control region (if / for / while) contributes the bin
    ``shape:<path>`` where the path is its chain of enclosing control
    kinds, e.g. ``shape:if/while`` for a while loop inside an if arm.
    ``depth:<n>`` records the deepest control nesting seen.
    """
    bins: set[str] = set()
    max_depth = 0

    def block_of(region_id: int):
        region = cdfg.regions.get(region_id)
        return region if isinstance(region, BlockRegion) else None

    def walk_block(region_id: int, path: tuple[str, ...]) -> None:
        nonlocal max_depth
        block = block_of(region_id)
        if block is None:
            return
        for item in block.items:
            sub = getattr(item, "region", None)
            if sub is None:
                continue
            region = cdfg.regions.get(sub)
            if isinstance(region, IfRegion):
                here = path + ("if",)
            elif isinstance(region, LoopRegion):
                here = path + (region.loop_kind,)
            else:
                walk_block(sub, path)
                continue
            bins.add("shape:" + "/".join(here))
            max_depth = max(max_depth, len(here))
            if isinstance(region, IfRegion):
                walk_block(region.then_block, here)
                walk_block(region.else_block, here)
            else:
                walk_block(region.test_block, here)
                walk_block(region.body_block, here)

    walk_block(cdfg.root_region, ())
    bins.add(f"depth:{max_depth}")
    return frozenset(bins)


def mem_bins(cdfg) -> frozenset[str]:
    """``mem:`` bins: array/RAM structure of one CDFG.

    Array-free programs contribute no ``mem:`` bins at all, so the mere
    presence of the family marks the corpus slice that exercises RAM
    binding, port-conflict scheduling and the memory power term:

    * ``mem:arrays:<n>`` — array count (capped);
    * ``mem:words:<b>`` — log2 bucket of total declared words;
    * ``mem:load`` / ``mem:store`` — access kinds present;
    * ``mem:rmw`` — some store's value data-depends on a load of the
      same array (the read-modify-write port-pressure case).
    """
    if not cdfg.array_types:
        return frozenset()
    bins = {f"mem:arrays:{min(len(cdfg.array_types), _CAP)}"}
    bins.add(f"mem:words:{_bucket(sum(size for _w, _s, size in cdfg.array_types.values()))}")
    loads = [n for n in cdfg.nodes.values() if n.kind is OpKind.LOAD]
    stores = [n for n in cdfg.nodes.values() if n.kind is OpKind.STORE]
    if loads:
        bins.add("mem:load")
    if stores:
        bins.add("mem:store")

    def depends_on_load(store) -> bool:
        seen: set[int] = set()
        frontier = [edge.src for edge in cdfg.in_edges(store.id)
                    if edge.dst_port == 1]
        while frontier:
            nid = frontier.pop()
            if nid in seen:
                continue
            seen.add(nid)
            node = cdfg.node(nid)
            if node.kind is OpKind.LOAD and node.mem == store.mem:
                return True
            frontier.extend(edge.src for edge in cdfg.in_edges(nid))
        return False

    if any(depends_on_load(store) for store in stores):
        bins.add("mem:rmw")
    return frozenset(bins)


def search_bins(history) -> frozenset[str]:
    """``move:`` and ``commit:`` bins from one search's history.

    A ``move:<kind>`` bin is added for every move kind that fired (was
    evaluated) anywhere in the search; ``commit:<n>`` buckets how many
    moves the search actually committed.
    """
    bins: set[str] = set()
    for iteration in history.iterations:
        for step in iteration:
            bins.add(f"move:{step.move_signature[0]}")
    bins.add(f"commit:{_bucket(len(history.committed))}")
    return frozenset(bins)


def stg_bins(stg) -> frozenset[str]:
    """``stg:`` bins: transition patterns of one scheduled STG."""
    bins: set[str] = set()
    bins.add(f"stg:states:{_bucket(stg.n_states)}")
    fanout = max((len(stg.out_transitions(sid)) for sid in stg.states), default=0)
    bins.add(f"stg:fanout:{min(fanout, _CAP)}")
    guard = max((len(t.conds) for t in stg.transitions), default=0)
    bins.add(f"stg:guard:{min(guard, _CAP)}")
    if any(state.duration > 1 for state in stg.states.values()):
        bins.add("stg:multicycle")
    return frozenset(bins)


def replay_bins(replay) -> frozenset[str]:
    """``path:`` bins: conformance-path depth under the fuzz stimulus.

    ``path:<b>`` buckets the deepest state walk any pass took;
    ``path:data`` marks data-dependent control flow (different passes
    walked different-length paths) — the control-flow-intensive case the
    paper's machinery exists for.
    """
    lengths = [len(seq) for seq in replay.state_seq]
    if not lengths:
        return frozenset({"path:0"})
    bins = {f"path:{_bucket(max(lengths))}"}
    if len(set(lengths)) > 1:
        bins.add("path:data")
    return frozenset(bins)


def extract_coverage(*, cdfg=None, history=None, stg=None,
                     replay=None) -> frozenset[str]:
    """Union of all bins derivable from whatever artifacts are at hand.

    Any argument may be ``None`` (a program that failed before synthesis
    still contributes its region shape).  Counted under the profiler's
    ``coverage`` stage so fleet reports show extraction traffic.
    """
    bins: frozenset[str] = frozenset()
    if cdfg is not None:
        bins |= region_bins(cdfg)
        bins |= mem_bins(cdfg)
    if history is not None:
        bins |= search_bins(history)
    if stg is not None:
        bins |= stg_bins(stg)
    if replay is not None:
        bins |= replay_bins(replay)
    PROFILER.record("coverage")
    return bins


def coverage_digest(bins: frozenset[str]) -> str:
    """Stable short digest of a coverage set (corpus/report bookkeeping)."""
    from repro.store import digest_key

    return digest_key(tuple(sorted(bins)))[:12]


def bin_families(bins) -> dict[str, int]:
    """Distinct-bin counts per family prefix (``shape``, ``move``, ...)."""
    families: dict[str, int] = {}
    for name in bins:
        family = name.split(":", 1)[0]
        families[family] = families.get(family, 0) + 1
    return dict(sorted(families.items()))
