"""Pretty-printer from the behavioral AST back to source text.

The inverse of :func:`repro.lang.parser.parse_source` up to line numbers
and redundant parentheses: ``parse_source(emit_source(p))`` is
structurally identical to ``p`` (enforced by
:func:`strip_positions` equality in the generator's round-trip check).
Sub-expressions are fully parenthesized so emission never has to reason
about precedence.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.lang import ast_nodes as ast

INDENT = "  "


def emit_expr(expr: ast.Expr) -> str:
    if isinstance(expr, ast.IntLit):
        if expr.value < 0:
            # The grammar has no negative literals; generators must use
            # UnaryOp("-", IntLit(n)) so the text round-trips structurally.
            raise ExperimentError(
                f"cannot emit negative literal {expr.value}; wrap in UnaryOp")
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.VarRef):
        return expr.name
    if isinstance(expr, ast.IndexExpr):
        return f"{expr.name}[{emit_expr(expr.index)}]"
    if isinstance(expr, ast.UnaryOp):
        return f"({expr.op}{emit_expr(expr.operand)})"
    if isinstance(expr, ast.BinaryOp):
        return f"({emit_expr(expr.left)} {expr.op} {emit_expr(expr.right)})"
    raise ExperimentError(f"cannot emit expression {type(expr).__name__}")


def _emit_stmt(stmt: ast.Stmt, depth: int, lines: list[str]) -> None:
    pad = INDENT * depth
    if isinstance(stmt, ast.VarDecl):
        text = f"{pad}var {stmt.name}"
        if stmt.declared_type is not None:
            text += f": {stmt.declared_type}"
        if stmt.init is not None:
            text += f" = {emit_expr(stmt.init)}"
        lines.append(text + ";")
    elif isinstance(stmt, ast.ArrayDecl):
        lines.append(f"{pad}var {stmt.name}: {stmt.elem_type}[{stmt.size}];")
    elif isinstance(stmt, ast.ArrayAssign):
        lines.append(
            f"{pad}{stmt.name}[{emit_expr(stmt.index)}] = {emit_expr(stmt.value)};")
    elif isinstance(stmt, ast.Assign):
        lines.append(f"{pad}{stmt.name} = {emit_expr(stmt.value)};")
    elif isinstance(stmt, ast.If):
        lines.append(f"{pad}if ({emit_expr(stmt.cond)}) {{")
        _emit_body(stmt.then_body, depth + 1, lines)
        if stmt.else_body:
            lines.append(f"{pad}}} else {{")
            _emit_body(stmt.else_body, depth + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ast.For):
        init = f"{stmt.init.name} = {emit_expr(stmt.init.value)}"
        update = _emit_for_update(stmt.update)
        lines.append(f"{pad}for ({init}; {emit_expr(stmt.cond)}; {update}) {{")
        _emit_body(stmt.body, depth + 1, lines)
        lines.append(f"{pad}}}")
    elif isinstance(stmt, ast.While):
        lines.append(f"{pad}while ({emit_expr(stmt.cond)}) {{")
        _emit_body(stmt.body, depth + 1, lines)
        lines.append(f"{pad}}}")
    else:
        raise ExperimentError(f"cannot emit statement {type(stmt).__name__}")


def _emit_for_update(update: ast.Assign) -> str:
    """``i = i + 1`` prints as ``i++`` (what the parser sugar produces)."""
    value = update.value
    if (isinstance(value, ast.BinaryOp) and value.op in ("+", "-")
            and isinstance(value.left, ast.VarRef)
            and value.left.name == update.name
            and isinstance(value.right, ast.IntLit) and value.right.value == 1):
        return update.name + ("++" if value.op == "+" else "--")
    return f"{update.name} = {emit_expr(value)}"


def _emit_body(body: tuple[ast.Stmt, ...], depth: int, lines: list[str]) -> None:
    for stmt in body:
        _emit_stmt(stmt, depth, lines)


def emit_source(process: ast.Process) -> str:
    """Render a process AST as parseable behavioral source text."""
    params = ", ".join(f"{p.name}: {p.type}" for p in process.inputs)
    outs = ", ".join(f"{p.name}: {p.type}" for p in process.outputs)
    lines = [f"process {process.name}({params}) -> ({outs}) {{"]
    _emit_body(process.body, 1, lines)
    lines.append("}")
    return "\n".join(lines) + "\n"


def strip_positions(node):
    """A line-number-free structural key for AST comparison.

    Two ASTs are semantically the same program iff their stripped keys
    are equal; the generator uses this to assert that parsing its own
    emission reproduces the AST it emitted.
    """
    if isinstance(node, (ast.Expr, ast.Stmt, ast.Process, ast.Param, ast.Type)):
        items = [(type(node).__name__,)]
        for name in node.__dataclass_fields__:
            if name == "line":
                continue
            items.append((name, strip_positions(getattr(node, name))))
        return tuple(items)
    if isinstance(node, tuple):
        return tuple(strip_positions(item) for item in node)
    return node
