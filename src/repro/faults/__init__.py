"""Deterministic fault injection for the fault-tolerant service core.

Two halves:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, a seeded script of
  failures (worker kill, injected hang, store read/write ``OSError``,
  connection drop) keyed by job id and consumed at most once, parsed
  from the ``REPRO_FAULTS`` env var or ``repro serve --faults``;
* :mod:`repro.faults.inject` — :func:`activate`, the worker-side
  context manager that turns plan payloads into real failures (SIGKILL,
  sleeps, a counting :class:`OSError` hook threaded through
  :mod:`repro.store.artifacts`).

``tests/test_faults.py`` and the ``chaos-smoke`` CI job drive every
server recovery path through pinned plans; see ``docs/service.md``.
"""

from repro.faults.inject import activate
from repro.faults.plan import (
    DEFAULT_HANG_S,
    FAULTS_ENV,
    SERVER_KINDS,
    VALID_KINDS,
    WORKER_KINDS,
    FaultAction,
    FaultPlan,
    plan_from_env,
)

__all__ = [
    "DEFAULT_HANG_S",
    "FAULTS_ENV",
    "FaultAction",
    "FaultPlan",
    "SERVER_KINDS",
    "VALID_KINDS",
    "WORKER_KINDS",
    "activate",
    "plan_from_env",
]
