"""Seeded, deterministic fault plans for the service chaos harness.

A :class:`FaultPlan` is a small, explicit script of failures keyed by
server-assigned job id — *when* each fault fires is part of the plan,
never of the wall clock — so a recovery path can be exercised by an
ordinary pytest with a pinned plan, and two runs under the same plan and
seed journal identically (modulo timestamps).

The textual spec (``REPRO_FAULTS`` env var or ``repro serve --faults``)
is a ``;``-separated list of actions plus an optional seed::

    seed=7;kill_worker@1;store_write@2:1;hang@3:30;drop_conn@4

| action | meaning |
|---|---|
| ``kill_worker@N``   | SIGKILL the worker as it starts job ``N`` |
| ``hang@N[:S]``      | job ``N`` hangs ``S`` seconds (default 3600) before running |
| ``store_read@N[:K]``  | the ``K``-th store read during job ``N`` raises ``OSError`` |
| ``store_write@N[:K]`` | the ``K``-th store write during job ``N`` raises ``OSError`` |
| ``drop_conn@N``     | the server severs the submitting client right after job ``N`` starts |

Every action fires **at most once** (consumed when delivered), so a
retried job runs its later attempts clean — which is exactly what the
recovery tests need: fault on attempt one, success on attempt two.  The
plan ``seed`` feeds the server's backoff jitter, keeping retry timing
reproducible under a pinned plan.
"""

from __future__ import annotations

import dataclasses
import os

#: Environment variable activating a fault plan (see also ``--faults``).
FAULTS_ENV = "REPRO_FAULTS"

#: Action kinds delivered into the worker process with the job.
WORKER_KINDS = ("kill_worker", "hang", "store_read", "store_write")

#: Action kinds the server applies itself.
SERVER_KINDS = ("drop_conn",)

VALID_KINDS = WORKER_KINDS + SERVER_KINDS

#: Default injected-hang duration: longer than any sane job timeout.
DEFAULT_HANG_S = 3600.0


@dataclasses.dataclass(frozen=True)
class FaultAction:
    """One scripted failure: ``kind`` fired at job ``job``, detail ``arg``."""

    kind: str
    job: int
    arg: float | None = None

    def spec(self) -> str:
        if self.arg is None:
            return f"{self.kind}@{self.job}"
        return f"{self.kind}@{self.job}:{self.arg:g}"

    def payload(self) -> dict:
        """The worker-side JSON-plain form (see :func:`repro.faults.activate`)."""
        return {"kind": self.kind, "arg": self.arg}


class FaultPlan:
    """A consumable script of :class:`FaultAction`\\ s plus a jitter seed."""

    def __init__(self, actions: tuple[FaultAction, ...] | list = (),
                 seed: int = 0):
        for action in actions:
            if action.kind not in VALID_KINDS:
                raise ValueError(f"unknown fault kind {action.kind!r} "
                                 f"(expected one of: {', '.join(VALID_KINDS)})")
        self.actions = tuple(actions)
        self.seed = int(seed)
        self._unfired = list(self.actions)

    # -- parsing -----------------------------------------------------------------

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        """Parse the ``REPRO_FAULTS`` spec syntax; raises ``ValueError``."""
        actions: list[FaultAction] = []
        seed = 0
        for item in (part.strip() for part in spec.split(";")):
            if not item:
                continue
            if item.startswith("seed="):
                seed = int(item[len("seed="):])
                continue
            if "@" not in item:
                raise ValueError(
                    f"fault action {item!r} is not of the form kind@job[:arg]")
            kind, _, target = item.partition("@")
            kind = kind.strip()
            if kind not in VALID_KINDS:
                raise ValueError(f"unknown fault kind {kind!r} "
                                 f"(expected one of: {', '.join(VALID_KINDS)})")
            job_text, sep, arg_text = target.partition(":")
            try:
                job = int(job_text)
            except ValueError:
                raise ValueError(f"fault action {item!r}: job id "
                                 f"{job_text!r} is not an integer")
            arg = None
            if sep:
                try:
                    arg = float(arg_text)
                except ValueError:
                    raise ValueError(f"fault action {item!r}: argument "
                                     f"{arg_text!r} is not a number")
            actions.append(FaultAction(kind, job, arg))
        return cls(tuple(actions), seed=seed)

    def spec(self) -> str:
        """The canonical round-trippable spec string of the *whole* plan."""
        parts = [f"seed={self.seed}"]
        parts.extend(action.spec() for action in self.actions)
        return ";".join(parts)

    # -- consumption -------------------------------------------------------------

    def take_worker_faults(self, job_id: int) -> list[dict]:
        """Unfired worker-side fault payloads for ``job_id`` (consumed)."""
        taken, keep = [], []
        for action in self._unfired:
            if action.job == job_id and action.kind in WORKER_KINDS:
                taken.append(action.payload())
            else:
                keep.append(action)
        self._unfired = keep
        return taken

    def take_drop_conn(self, job_id: int) -> bool:
        """Whether the plan severs ``job_id``'s client now (consumed)."""
        for action in self._unfired:
            if action.job == job_id and action.kind == "drop_conn":
                self._unfired.remove(action)
                return True
        return False

    def pending(self) -> tuple[FaultAction, ...]:
        """Actions not yet consumed (introspection / test assertions)."""
        return tuple(self._unfired)


def plan_from_env(environ=None) -> FaultPlan | None:
    """The :data:`FAULTS_ENV` plan, or ``None`` when unset/empty."""
    spec = (environ if environ is not None else os.environ).get(FAULTS_ENV)
    if not spec:
        return None
    return FaultPlan.parse(spec)
