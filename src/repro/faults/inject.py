"""Worker-side fault application: turn plan payloads into real failures.

:func:`activate` wraps one job execution (see
:func:`repro.service.jobs.execute_job`).  Immediate faults fire on
entry — ``kill_worker`` SIGKILLs the current process (the supervised
pool must notice the death and recover), ``hang`` sleeps so the per-job
timeout and hard-kill path is exercised — while ``store_read`` /
``store_write`` install a counting hook into
:mod:`repro.store.artifacts` that raises :class:`OSError` on the K-th
matching disk access, simulating a hard I/O error (EIO-style), which is
deliberately distinct from the cold-miss path a missing blob takes.

Everything here is deterministic: which call raises is a plan constant,
never a race.
"""

from __future__ import annotations

import contextlib
import os
import signal
import time

from repro.faults.plan import DEFAULT_HANG_S
from repro.store import artifacts


@contextlib.contextmanager
def activate(faults):
    """Apply fault payloads (``FaultAction.payload()`` dicts) around a job.

    ``faults`` may be ``None``/empty (the common case: no-op).  The
    store hook is installed for the duration of the ``with`` body only,
    so a worker running a later, clean job is unaffected.
    """
    if not faults:
        yield
        return
    for fault in faults:
        kind = fault.get("kind")
        if kind == "kill_worker":
            os.kill(os.getpid(), signal.SIGKILL)
        elif kind == "hang":
            time.sleep(float(fault.get("arg") or DEFAULT_HANG_S))

    targets: dict[str, set[int]] = {}
    for fault in faults:
        kind = fault.get("kind")
        if kind in ("store_read", "store_write"):
            op = kind[len("store_"):]
            targets.setdefault(op, set()).add(int(fault.get("arg") or 1))
    if not targets:
        yield
        return

    counts = {"read": 0, "write": 0}

    def hook(op: str, kind: str, digest: str) -> None:
        if op not in targets:
            return
        counts[op] += 1
        if counts[op] in targets[op]:
            raise OSError(f"injected store {op} fault (call {counts[op]})")

    artifacts.set_io_fault_hook(hook)
    try:
        yield
    finally:
        artifacts.set_io_fault_hook(None)
