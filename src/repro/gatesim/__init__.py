"""Bit-level architecture simulation — the measurement proxy.

The paper measures power with IRSIM-CAP on extracted layouts; offline we
substitute a cycle-accurate, bit-level simulator of the synthesized
architecture (DESIGN.md, Section 2).  It recomputes every value from the
controller + datapath semantics (independently of the behavioral
interpreter, so output equality is an end-to-end verification of the whole
synthesis chain), counts weighted bit toggles per unit — including
carry-chain and partial-product internal activity, per-node multiplexer
propagation, controller state bits, clock load, and arrival-skew glitches —
and reports power with a per-component breakdown.
"""

from repro.gatesim.simulator import (
    GateSimResult,
    rescale_result,
    simulate_architecture,
)

__all__ = ["GateSimResult", "rescale_result", "simulate_architecture"]
