"""Cycle-accurate bit-level simulation of a synthesized architecture.

Execution model: registers hold values across states; within a state,
operations execute in chaining order reading operands from registers,
constants, or chained unit outputs exactly as the datapath routes them;
register writes commit at the end of the state window; the controller then
selects the next state from the just-computed condition bits.

Energy accounting (all capacitances in pF, energies in pJ, power in mW):

* functional units — port toggles plus an internal-activity model (carry
  vector toggles for add/sub, operand population for multiply), scaled by
  the module's characterized capacitance and an arrival-skew glitch factor;
* registers — data toggles on writes plus clock load on every cycle;
* multiplexer trees — per-2:1-node output toggles, propagating the selected
  source's value along its root path (off-path nodes hold state);
* controller — measured state-register bit toggles plus output decode load.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ArchitectureError
from repro.cdfg.interpreter import Interpreter, _wrap
from repro.cdfg.node import OpKind
from repro.library.memory import ram_access_cap
from repro.library.module import scale_capacitance
from repro.library.modules_data import (
    MUX_CAP_PER_BIT,
    REGISTER_CAP_PER_BIT,
    REGISTER_CLOCK_CAP_PER_BIT,
)
from repro.library.voltage import NOMINAL_VDD
from repro.power.glitch import skew_glitch_factor
from repro.rtl.architecture import Architecture
from repro.rtl.builder import edge_source
from repro.rtl.controller import CAP_PER_OUTPUT, CAP_PER_STATE_BIT
from repro.rtl.mux import MuxSource
from repro.utils.bitwidth import to_unsigned

#: Weight of port-level vs internal toggles in FU energy.
FU_PORT_WEIGHT = 1.0
FU_INTERNAL_WEIGHT = 0.8

#: Fixed fraction of a RAM access's switched capacitance (word-line
#: select and bit-line precharge fire regardless of the data) — the same
#: split the RT-level estimator applies.
MEM_STATIC_WEIGHT = 0.6

#: Safety cap on cycles per pass.
MAX_CYCLES_PER_PASS = 1_000_000


@dataclass
class GateSimResult:
    """Measured power and verification outcome."""

    power_mw: float
    breakdown: dict[str, float]
    cycles: np.ndarray
    total_cycles: int
    output_mismatches: int
    outputs: dict[str, np.ndarray]
    #: Per-pass visited state ids (populated with ``record_states=True``);
    #: the conformance harness diffs this against the HDL netlist's FSM
    #: trace when cycle counts diverge.
    state_seq: list[list[int]] | None = None
    #: Switched capacitance per component, before the ``Vdd^2`` scaling —
    #: the Vdd-independent half of the measurement (see
    #: :func:`rescale_result`).
    raw_breakdown: dict[str, float] | None = None
    #: Simulated time in ns (total cycles x clock period).
    time_ns: float = 0.0
    #: Final array contents (element-typed values, same convention as the
    #: interpreter's) — compared by the conformance harness.
    mems: dict[str, list[int]] | None = None

    @property
    def enc(self) -> float:
        return float(self.cycles.mean()) if self.cycles.size else 0.0


def rescale_result(result: GateSimResult, vdd: float) -> GateSimResult:
    """Re-measure a simulated design at another supply voltage — for free.

    Switching activity is a function of the data, not of the supply:
    ``Vdd`` enters the measurement only as the ``Vdd^2`` factor on every
    switched-capacitance term.  The simulator therefore accumulates raw
    capacitance and applies ``Vdd^2`` once at the end — which makes this
    rescaling *bit-identical* to re-running :func:`simulate_architecture`
    at ``vdd``: both compute ``raw x Vdd^2 / time`` from the same raw
    sums.  Cycle counts, outputs and mismatches are shared unchanged.
    """
    if result.raw_breakdown is None:
        raise ArchitectureError("result carries no raw breakdown; re-simulate")
    v2 = vdd * vdd
    time_ns = result.time_ns
    if time_ns > 0:
        breakdown = {k: v * v2 / time_ns for k, v in result.raw_breakdown.items()}
    else:
        breakdown = {k: 0.0 for k in result.raw_breakdown}
    return GateSimResult(
        power_mw=breakdown["total"],
        breakdown=breakdown,
        cycles=result.cycles,
        total_cycles=result.total_cycles,
        output_mismatches=result.output_mismatches,
        outputs=result.outputs,
        state_seq=result.state_seq,
        raw_breakdown=result.raw_breakdown,
        time_ns=time_ns,
        mems=result.mems,
    )


class _TreeState:
    """Mutable per-port mux tree state: last output value per 2:1 node."""

    def __init__(self, port):
        self.port = port
        self.paths: dict[object, tuple[int, ...]] = {}
        self.node_values: dict[int, int] = {}
        if port.tree is not None:
            self._index_paths(port.tree.shape, ())

    def _index_paths(self, shape, path: tuple[int, ...]) -> None:
        if isinstance(shape, MuxSource):
            # All internal nodes along the path to the root.
            self.paths[shape.key] = path
            return
        node_id = id(shape)
        self._index_paths(shape[0], path + (node_id,))
        self._index_paths(shape[1], path + (node_id,))

    def sample(self, source: object, value: int, width: int) -> int:
        """Propagate a selected value; returns toggled bit count."""
        if self.port.tree is None:
            return 0
        toggles = 0
        pattern = value & ((1 << width) - 1)
        for node in self.paths[source]:
            old = self.node_values.get(node, 0)
            toggles += (old ^ pattern).bit_count()
            self.node_values[node] = pattern
        return toggles


class _Accumulator:
    def __init__(self) -> None:
        self.fus = 0.0
        self.registers = 0.0
        self.memories = 0.0
        self.muxes = 0.0
        self.controller = 0.0

    def breakdown(self) -> dict[str, float]:
        total = (self.fus + self.registers + self.memories + self.muxes
                 + self.controller)
        return {
            "fus": self.fus,
            "registers": self.registers,
            "memories": self.memories,
            "muxes": self.muxes,
            "controller": self.controller,
            "total": total,
        }


def simulate_architecture(arch: Architecture, input_passes: list[dict[str, int]],
                          expected_outputs: dict[str, np.ndarray] | None = None,
                          vdd: float = NOMINAL_VDD,
                          record_states: bool = False) -> GateSimResult:
    """Run the architecture over a stimulus; measure power; verify outputs.

    ``record_states`` additionally captures the per-pass state trace (one
    entry per *state visit*, not per cycle) for differential debugging.
    """
    sim = _GateSim(arch, vdd)
    return sim.run(input_passes, expected_outputs, record_states)


class _GateSim:
    def __init__(self, arch: Architecture, vdd: float):
        self.arch = arch
        self.v2 = vdd * vdd
        self.regs: dict[int, int] = {r: 0 for r in arch.binding.regs}
        self.tmps: dict[int, int] = {n: 0 for n in arch.datapath.tmp_regs}
        self.fu_ports: dict[int, list[int]] = {
            f: [0, 0, 0] for f in arch.binding.fus}
        self.fu_carry: dict[int, int] = {f: 0 for f in arch.binding.fus}
        self.trees: dict[tuple, _TreeState] = {
            p.key: _TreeState(p) for p in arch.datapath.mux_ports()}
        self.energy = _Accumulator()
        self.prev_state_code = 0
        self._ordered_ops = {
            sid: sorted(state.ops, key=lambda op: (op.start, op.node))
            for sid, state in arch.stg.states.items()
        }
        self._reg_widths = {r.id: r.width for r in arch.binding.regs.values()}
        # Precomputed all-ones masks: ``x & mask`` is to_unsigned() with
        # the per-call width lookup and function dispatch hoisted out of
        # the toggle-counting inner loops.
        self._reg_masks = {r: (1 << w) - 1 for r, w in self._reg_widths.items()}
        self._tmp_masks = {n: (1 << w) - 1
                           for n, w in arch.datapath.tmp_regs.items()}
        self._fu_masks = {f.id: (1 << f.width) - 1
                          for f in arch.binding.fus.values()}
        #: Array contents (element-typed values, power-on zero; persist
        #: across passes exactly like the behavioral interpreter's).
        self.mems: dict[str, list[int]] = {
            name: [0] * m.depth for name, m in arch.binding.mems.items()}
        #: Last presented (addr, data) patterns per array, for the
        #: bit-level access-energy model.
        self._mem_last: dict[str, tuple[int, int]] = {
            name: (0, 0) for name in arch.binding.mems}
        self._mem_cost = {
            name: (ram_access_cap(m.spec, m.width, m.depth),
                   max(1, (m.depth - 1).bit_length()),
                   (1 << m.width) - 1)
            for name, m in arch.binding.mems.items()}
        #: Per-state execution plans, built lazily (see :meth:`_plan_state`).
        self._state_plan: dict[int, list] = {}
        total_reg_bits = sum(self._reg_widths.values()) + \
            sum(arch.datapath.tmp_regs.values())
        self._clock_cap_per_cycle = (
            total_reg_bits * REGISTER_CLOCK_CAP_PER_BIT)

    # -- value plumbing ------------------------------------------------------------

    def _source_value(self, source: tuple, chain: dict[int, int],
                      pins: dict[str, int]) -> int:
        kind = source[0]
        if kind == "const":
            return source[1]
        if kind == "reg":
            return self.regs[source[1]]
        if kind == "tmp":
            return self.tmps[source[1]]
        if kind == "fu":
            fu_id = source[1]
            if ("fu_chain", fu_id) not in chain:
                raise ArchitectureError(f"chained read of idle FU {fu_id}")
            return chain[("fu_chain", fu_id)]
        if kind == "wire":
            return chain[source[1]]
        if kind == "pin":
            return pins[source[1]]
        raise ArchitectureError(f"unknown source {source!r}")

    # -- per-state execution ----------------------------------------------------------

    def _plan_state(self, state_id: int) -> list:
        """Resolve everything value-independent about a state's ops once.

        Source resolution (:func:`edge_source`), unit/register bindings
        and mux-tree lookups depend only on (architecture, state) — not
        on the data — so each visited state is planned on first visit
        and every later visit replays the plan against live values.
        """
        arch = self.arch
        cdfg = arch.cdfg
        plan = []
        for sched_op in self._ordered_ops[state_id]:
            node = cdfg.node(sched_op.node)
            fu = arch.binding.fu_of(node.id) if node.needs_fu else None
            mem = None
            if node.mem is not None:
                mem = (node.mem, node.kind is OpKind.STORE)
                inst = arch.binding.mems[node.mem]
                ram_port = inst.port_of[node.id]
                mem_trees = [(self.trees.get(("mem_addr", node.mem, ram_port)),
                              self._mem_cost[node.mem][1]),
                             (self.trees.get(("mem_din", node.mem, ram_port)),
                              inst.width)]
            srcs = []
            for k, edge in enumerate(cdfg.in_edges(node.id)):
                if fu is not None:
                    ftree, width = self.trees.get(("fu_in", fu.id, k)), edge.width
                elif mem is not None:
                    ftree, width = mem_trees[k]
                else:
                    ftree, width = None, edge.width
                source = edge_source(arch, edge, state_id)
                srcs.append((source, width, ftree))
            reg = None
            reg_driver = None
            is_tmp = False
            if node.carrier is not None:
                reg = arch.binding.reg_of(node.carrier)
                tree = self.trees.get(("reg_in", reg.id))
                if tree is not None:
                    port = arch.datapath.port(("reg_in", reg.id))
                    reg_driver = (tree, port.drivers[(node.id, state_id)])
            else:
                is_tmp = node.id in arch.datapath.tmp_regs
            plan.append((sched_op, node, fu, mem, srcs, reg, reg_driver,
                         is_tmp))
        return plan

    def _execute_state(self, state_id: int, chain_values: dict,
                       pins: dict[str, int]) -> dict[str, int]:
        pending_reg: dict[int, tuple[int, int]] = {}
        pending_tmp: dict[int, int] = {}
        pending_mem: list[tuple[list[int], int, int]] = []
        plan = self._state_plan.get(state_id)
        if plan is None:
            plan = self._plan_state(state_id)
            self._state_plan[state_id] = plan

        source_value = self._source_value
        for sched_op, node, fu, mem, srcs, reg, reg_driver, is_tmp in plan:
            ins = []
            sample_ports = []
            for source, width, ftree in srcs:
                value = source_value(source, chain_values, pins)
                ins.append(value)
                if ftree is not None:
                    sample_ports.append((ftree, source, value, width))
            if mem is not None:
                # The scheduler keeps a store alone in its state per
                # array, so committing writes at state end (the hardware
                # behavior) can never starve a same-state load.
                array, is_store = mem
                contents = self.mems[array]
                addr = ins[0] & (len(contents) - 1)
                if is_store:
                    out = _wrap(ins[1], node.width, node.signed)
                    pending_mem.append((contents, addr, out))
                else:
                    out = contents[addr]
                self._account_mem(array, addr, out)
            else:
                out = _wrap(Interpreter._compute(node, tuple(ins)),
                            node.width, node.signed)
            chain_values[node.id] = out
            if fu is not None:
                chain_values[("fu_chain", fu.id)] = out
                self._account_fu(fu, node, ins, out, sched_op)
            for ftree, source, value, width in sample_ports:
                toggles = ftree.sample(source, value, width)
                self.energy.muxes += toggles * MUX_CAP_PER_BIT

            if reg is not None:
                previous = pending_reg.get(reg.id)
                if previous is not None and previous[0] != out:
                    raise ArchitectureError(
                        f"state {state_id}: register {reg.id} written twice "
                        f"with conflicting values (nodes {previous[1]} and "
                        f"{node.id}) — illegal register sharing")
                pending_reg[reg.id] = (out, node.id)
                if reg_driver is not None:
                    tree, source = reg_driver
                    toggles = tree.sample(source, out, reg.width)
                    self.energy.muxes += toggles * MUX_CAP_PER_BIT
            elif is_tmp:
                pending_tmp[node.id] = out

        # Commit register writes at state end.
        for reg_id, (value, _writer) in pending_reg.items():
            old = self.regs[reg_id]
            toggles = ((old ^ value) & self._reg_masks[reg_id]).bit_count()
            self.energy.registers += toggles * REGISTER_CAP_PER_BIT
            self.regs[reg_id] = value
        for node_id, value in pending_tmp.items():
            old = self.tmps[node_id]
            toggles = ((old ^ value) & self._tmp_masks[node_id]).bit_count()
            self.energy.registers += toggles * REGISTER_CAP_PER_BIT
            self.tmps[node_id] = value
        for contents, addr, value in pending_mem:
            contents[addr] = value
        return chain_values

    def _account_mem(self, array: str, addr: int, value: int) -> None:
        """One RAM access: fixed select/precharge cost plus a part scaled
        by measured address/data bus toggles (vs the array's previous
        access) — the bit-level counterpart of the estimator's model."""
        cap, addr_bits, data_mask = self._mem_cost[array]
        last_a, last_d = self._mem_last[array]
        d_pat = value & data_mask
        alpha = 0.5 * ((last_a ^ addr).bit_count() / addr_bits
                       + (last_d ^ d_pat).bit_count()
                       / data_mask.bit_length())
        self._mem_last[array] = (addr, d_pat)
        self.energy.memories += cap * (
            MEM_STATIC_WEIGHT + (1.0 - MEM_STATIC_WEIGHT) * alpha)

    def _account_fu(self, fu, node, ins: list[int], out: int, sched_op) -> None:
        width = fu.width
        mask = self._fu_masks[fu.id]
        # Port values are held as unsigned bit patterns (already masked),
        # so re-presenting a held value toggles nothing, as before.
        ports = self.fu_ports[fu.id]
        toggles_in = 0
        for k in range(2):
            pattern = (ins[k] & mask) if k < len(ins) else ports[k]
            toggles_in += (ports[k] ^ pattern).bit_count()
            ports[k] = pattern
        out_pattern = out & mask
        toggles_out = (ports[2] ^ out_pattern).bit_count()
        ports[2] = out_pattern

        internal = 0.0
        if node.kind in (OpKind.ADD, OpKind.SUB):
            a = ins[0] if len(ins) > 0 else 0
            b = ins[1] if len(ins) > 1 else 0
            carry = ((a + b) & mask) ^ (a & mask) ^ (b & mask)
            old_carry = self.fu_carry[fu.id]
            internal = 0.5 * (old_carry ^ carry).bit_count() / width
            self.fu_carry[fu.id] = carry
        elif node.kind is OpKind.MUL:
            internal = ((ins[0] & mask).bit_count()
                        + (ins[1] & mask).bit_count()) / (2.0 * width)

        port_activity = (toggles_in + 2.0 * toggles_out) / (4.0 * width)
        activity = FU_PORT_WEIGHT * port_activity + FU_INTERNAL_WEIGHT * internal
        glitch = skew_glitch_factor(max(0.0, sched_op.start))
        cap = scale_capacitance(fu.module, width)
        self.energy.fus += cap * activity * glitch

    # -- controller -------------------------------------------------------------------

    def _account_controller(self, state_id: int) -> None:
        code = state_id  # binary encoding of state ids
        toggles = (self.prev_state_code ^ code).bit_count()
        self.prev_state_code = code
        ctrl = self.arch.controller
        self.energy.controller += (
            toggles * CAP_PER_STATE_BIT
            + 0.25 * ctrl.n_outputs * CAP_PER_OUTPUT)

    # -- main loop ----------------------------------------------------------------------

    def run(self, input_passes: list[dict[str, int]],
            expected_outputs: dict[str, np.ndarray] | None,
            record_states: bool = False) -> GateSimResult:
        arch = self.arch
        cdfg = arch.cdfg
        stg = arch.stg
        cycles_per_pass: list[int] = []
        state_seq: list[list[int]] | None = [] if record_states else None
        outputs: dict[str, list[int]] = {
            cdfg.node(o).name.removeprefix("out:"): [] for o in cdfg.output_nodes}
        mismatches = 0

        for pass_idx, inputs in enumerate(input_passes):
            pins: dict[str, int] = {}
            for node_id in cdfg.input_nodes:
                node = cdfg.node(node_id)
                value = _wrap(inputs[node.carrier], node.width, node.signed)
                pins[node.carrier] = value
                reg = arch.binding.reg_of(node.carrier)
                old = self.regs[reg.id]
                toggles = (to_unsigned(old, reg.width)
                           ^ to_unsigned(value, reg.width)).bit_count()
                self.energy.registers += toggles * REGISTER_CAP_PER_BIT
                self.regs[reg.id] = value
                tree = self.trees.get(("reg_in", reg.id))
                if tree is not None:
                    self.energy.muxes += tree.sample(("pin", node.carrier), value,
                                                     reg.width) * MUX_CAP_PER_BIT

            state_id = stg.start
            cycles = 0
            visited: list[int] = []
            while True:
                duration = arch.state_duration(state_id)
                cycles += duration
                visited.append(state_id)
                if cycles > MAX_CYCLES_PER_PASS:
                    raise ArchitectureError(
                        f"gatesim: pass {pass_idx} exceeded {MAX_CYCLES_PER_PASS} cycles")
                chain_values: dict = {}
                self._execute_state(state_id, chain_values, pins)
                self._account_controller(state_id)
                self.energy.controller += 0.0
                self.energy.registers += self._clock_cap_per_cycle * duration

                next_state = self._next_state(state_id, chain_values)
                state_id = next_state
                if state_id == stg.done:
                    break
            cycles_per_pass.append(cycles)
            if state_seq is not None:
                state_seq.append(visited)

            for out_node in cdfg.output_nodes:
                node = cdfg.node(out_node)
                edge = cdfg.in_edge(out_node, 0)
                src = cdfg.node(edge.src)
                if src.kind is OpKind.CONST:
                    value = src.value
                elif src.carrier is not None:
                    value = self.regs[arch.binding.reg_of(src.carrier).id]
                else:
                    value = self.tmps[edge.src]
                value = _wrap(value, node.width, node.signed)
                name = node.name.removeprefix("out:")
                outputs[name].append(value)
                if expected_outputs is not None:
                    if value != int(expected_outputs[name][pass_idx]):
                        mismatches += 1

        total_cycles = int(np.sum(cycles_per_pass))
        time_ns = total_cycles * arch.clock_ns
        # The accumulator holds switched capacitance; Vdd^2 scales it to
        # energy here, in one place, so :func:`rescale_result` can derive
        # any other supply point bit-identically from ``raw_breakdown``.
        raw = self.energy.breakdown()
        if time_ns > 0:
            breakdown = {k: v * self.v2 / time_ns for k, v in raw.items()}
        else:
            breakdown = {k: 0.0 for k in raw}
        return GateSimResult(
            power_mw=breakdown["total"],
            breakdown=breakdown,
            cycles=np.array(cycles_per_pass, dtype=np.int64),
            total_cycles=total_cycles,
            output_mismatches=mismatches,
            outputs={k: np.array(v, dtype=np.int64) for k, v in outputs.items()},
            state_seq=state_seq,
            raw_breakdown=raw,
            time_ns=time_ns,
            mems={name: list(words) for name, words in self.mems.items()},
        )

    def _next_state(self, state_id: int, chain_values: dict) -> int:
        stg = self.arch.stg
        candidates = []
        for transition in stg.out_transitions(state_id):
            ok = True
            for cond, want in transition.conds:
                value = self._condition_value(cond, chain_values)
                if bool(value) != want:
                    ok = False
                    break
            if ok:
                candidates.append(transition)
        if len(candidates) != 1:
            raise ArchitectureError(
                f"gatesim: state {state_id} matched {len(candidates)} transitions")
        return candidates[0].dst

    def _condition_value(self, cond: int, chain_values: dict) -> int:
        if cond in chain_values:
            return chain_values[cond]
        node = self.arch.cdfg.node(cond)
        if node.carrier is not None:
            return self.regs[self.arch.binding.reg_of(node.carrier).id]
        if cond in self.tmps:
            return self.tmps[cond]
        raise ArchitectureError(
            f"gatesim: condition {node.name} has no stored value")
