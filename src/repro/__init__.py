"""IMPACT: low-power high-level synthesis for CFI circuits (DATE 1998).

Public API (one import per concept a user needs):

>>> import repro
>>> cdfg = repro.parse(source_text)             # behavioral code -> CDFG
>>> store = repro.simulate(cdfg, stimulus)      # behavioral profiling
>>> result = repro.synthesize(cdfg, stimulus, mode="power", laxity=2.0)
>>> measured = repro.simulate_architecture(result.design.arch, stimulus,
...                                        expected_outputs=store.outputs)
>>> frontier = repro.explore("gcd", shards=4)   # Pareto design-space sweep

The same surface is reachable from the shell via ``python -m repro``
(synth / explore / verify / bench — see docs/cli.md).  docs/tutorial.md
is the end-to-end walk-through and docs/architecture.md the system map.
"""

from repro.lang import parse
from repro.cdfg.interpreter import simulate
from repro.cdfg.graph import CDFG
from repro.core.binding import Binding
from repro.core.cache import SynthesisCache
from repro.core.design import DesignPoint
from repro.core.engine import SynthesisEngine
from repro.core.impact import SynthesisResult, synthesize
from repro.core.search import SearchConfig, WeightedObjective
from repro.explore import (
    ExploreResult,
    ParetoFront,
    ParetoPoint,
    engine_for_benchmark,
    explore,
    verify_frontier,
)
from repro.gatesim import simulate_architecture
from repro.power.estimator import PowerEstimate, estimate_power
from repro.hdl import (
    emit_testbench,
    emit_verilog,
    iverilog_available,
    lower_architecture,
    simulate_netlist,
)
from repro.library import ModuleLibrary, default_library
from repro.sched import (
    ScheduleOptions,
    loop_directed_schedule,
    path_based_schedule,
    replay,
    wavesched,
)
from repro.benchmarks import BENCHMARKS, get_benchmark
from repro.genprog import GenConfig, generate_program

__version__ = "1.3.0"


def __getattr__(name):
    # Lazy: importing the conformance harness at package-import time would
    # pre-load repro.verify.conformance and trip runpy's double-import
    # warning under `python -m repro.verify.conformance`.
    if name in ("verify_architecture", "verify_benchmark", "ConformanceReport"):
        from repro.verify import conformance

        return getattr(conformance, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "parse",
    "simulate",
    "CDFG",
    "Binding",
    "DesignPoint",
    "SynthesisCache",
    "SynthesisEngine",
    "SynthesisResult",
    "synthesize",
    "SearchConfig",
    "WeightedObjective",
    "explore",
    "verify_frontier",
    "engine_for_benchmark",
    "ExploreResult",
    "ParetoFront",
    "ParetoPoint",
    "estimate_power",
    "PowerEstimate",
    "simulate_architecture",
    "emit_testbench",
    "emit_verilog",
    "iverilog_available",
    "lower_architecture",
    "simulate_netlist",
    "verify_architecture",
    "verify_benchmark",
    "ModuleLibrary",
    "default_library",
    "ScheduleOptions",
    "wavesched",
    "loop_directed_schedule",
    "path_based_schedule",
    "replay",
    "BENCHMARKS",
    "get_benchmark",
    "GenConfig",
    "generate_program",
    "__version__",
]
