"""Persistent content-addressed artifact store (cross-run memoization).

The in-process :class:`~repro.core.cache.SynthesisCache` dies with its
engine; this package gives the same content-addressed artifacts a
durable, versioned home shared by every run, worker process and CI job
pointed at the same directory.  See ``docs/service.md`` for the store
layout, key vocabulary and GC policy.

The one-call client API is :func:`attached_cache`: it returns a plain
in-process cache when no store is configured, and a
:class:`~repro.store.persistent.PersistentCache` reading through to the
directory named by ``store_dir`` or ``$REPRO_STORE_DIR`` otherwise.  An
unopenable store degrades to the in-process cache with a warning rather
than failing the run.
"""

from __future__ import annotations

import os
import sys

from repro.core.cache import SynthesisCache
from repro.store.artifacts import (
    STORE_DIR_ENV,
    STORE_MAX_BYTES_ENV,
    SCHEMA_VERSION,
    ArtifactStore,
    open_store,
    set_io_fault_hook,
)
from repro.store.atomic import (
    append_jsonl,
    atomic_write_bytes,
    atomic_write_text,
    sweep_orphans,
    write_json,
)
from repro.store.codec import cdfg_digest, digest_key, trace_store_digest
from repro.store.persistent import PersistentCache, PersistentMemoTable

__all__ = [
    "ArtifactStore",
    "PersistentCache",
    "PersistentMemoTable",
    "SCHEMA_VERSION",
    "STORE_DIR_ENV",
    "STORE_MAX_BYTES_ENV",
    "append_jsonl",
    "atomic_write_bytes",
    "atomic_write_text",
    "attached_cache",
    "cdfg_digest",
    "digest_key",
    "open_store",
    "set_io_fault_hook",
    "sweep_orphans",
    "trace_store_digest",
    "write_json",
]


def attached_cache(*, caching: bool = True,
                   store_dir: str | os.PathLike | None = None,
                   max_entries: int | None = None) -> SynthesisCache:
    """A pipeline cache, store-backed when a store directory is configured.

    ``store_dir=None`` consults ``$REPRO_STORE_DIR``; no directory from
    either source returns a plain :class:`SynthesisCache`.  Opening the
    store is best-effort: an unreadable root (permissions, bad mount)
    falls back to cold in-process compute with a one-line warning — the
    graceful-degradation contract of the job server.
    """
    root = store_dir if store_dir is not None else os.environ.get(STORE_DIR_ENV)
    if not root:
        return SynthesisCache(enabled=caching, max_entries=max_entries)
    try:
        store = open_store(root)
    except Exception as exc:  # degraded: compute cold rather than fail
        print(f"repro.store: cannot open store at {root!r} ({exc}); "
              f"running with in-process cache only", file=sys.stderr)
        return SynthesisCache(enabled=caching, max_entries=max_entries)
    return PersistentCache(store, enabled=caching, max_entries=max_entries)
