"""Atomic file publication: the one durability primitive of the repo.

Every result file the project persists — report JSON/CSV/markdown, the
checked-in perf trajectory, the artifact store's blobs — goes through the
same write-temp-then-:func:`os.replace` sequence: the bytes land in a
uniquely named temporary file *in the target's directory* (so the rename
never crosses a filesystem boundary) and the final name appears only via
an atomic rename.  A reader therefore sees either the previous complete
file or the new complete file, never a truncated intermediate, and a
writer killed mid-publish leaves only a ``*.tmp`` orphan that the next
publish or the store GC sweeps up.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading

#: Per-process counter making concurrent temp names unique even when two
#: threads publish to the same target in the same microsecond.
_COUNTER = 0
_COUNTER_LOCK = threading.Lock()

#: Suffix every in-flight temporary carries (GC sweeps orphans by it).
TMP_SUFFIX = ".tmp"


def _temp_path(path: pathlib.Path) -> pathlib.Path:
    global _COUNTER
    with _COUNTER_LOCK:
        _COUNTER += 1
        serial = _COUNTER
    return path.with_name(
        f".{path.name}.{os.getpid()}.{threading.get_ident()}.{serial}{TMP_SUFFIX}")


def atomic_write_bytes(path: pathlib.Path | str, data: bytes) -> pathlib.Path:
    """Publish ``data`` at ``path`` atomically (write temp + ``os.replace``).

    The parent directory is created if missing.  On any failure after the
    temporary was created, the temporary is removed best-effort so a
    crashed writer cannot leave a partial artifact under the final name.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    tmp = _temp_path(path)
    try:
        tmp.write_bytes(data)
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: pathlib.Path | str, text: str, *,
                      encoding: str = "utf-8") -> pathlib.Path:
    """Text flavor of :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode(encoding))


def write_json(path: pathlib.Path | str, payload, *, indent: int = 1,
               sort_keys: bool = True) -> pathlib.Path:
    """Serialize ``payload`` as JSON and publish it atomically.

    The shared result writer of :mod:`repro.experiments.report`,
    ``benchmarks/bench_headline.py`` and the artifact store — one code
    path, one durability guarantee.
    """
    text = json.dumps(payload, indent=indent, sort_keys=sort_keys) + "\n"
    return atomic_write_text(path, text)


def append_jsonl(path: pathlib.Path | str, record) -> pathlib.Path:
    """Durably append one JSON record as a newline-terminated line.

    The journal flavor of the durability primitive: one ``os.write`` on
    an ``O_APPEND`` descriptor (atomic at line granularity for these
    sizes) followed by ``fsync``, so a crash leaves at worst one torn
    *final* line — which journal readers skip — and never interleaved or
    silently lost records.  Whole-file rewrites (compaction) go through
    :func:`atomic_write_text` instead.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    line = (json.dumps(record, sort_keys=True) + "\n").encode("utf-8")
    fd = os.open(path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    try:
        os.write(fd, line)
        os.fsync(fd)
    finally:
        os.close(fd)
    return path


def sweep_orphans(root: pathlib.Path | str) -> int:
    """Remove leftover ``*.tmp`` files under ``root``; returns the count.

    Orphans appear only when a writer died between creating its temporary
    and the rename; they are never visible under a final artifact name.
    """
    root = pathlib.Path(root)
    removed = 0
    if not root.is_dir():
        return removed
    for tmp in root.rglob(f"*{TMP_SUFFIX}"):
        try:
            tmp.unlink()
            removed += 1
        except OSError:
            pass
    return removed
