"""The MemoTable-compatible in-process front over the artifact store.

:class:`PersistentCache` is a drop-in :class:`~repro.core.cache.SynthesisCache`
whose ``schedule`` and ``replay`` tables read through to an
:class:`~repro.store.artifacts.ArtifactStore`: an in-memory miss first
consults the disk store under the durable content key, and a computed
value is published back (best-effort — an unwritable store degrades to
plain in-process memoization, never to failure).  The ``traces`` and
``designs`` tables stay purely in-process: their values (merged unit
streams, whole design points) hold live object graphs whose
serialization cost would dwarf recomputation.

Durable keys need content digests where the memo keys carry ``id()``\\ s;
:meth:`PersistentCache.bind` registers the CDFG / trace-store objects so
the translation can happen (and pins them, keeping the ids stable).
Binding happens automatically in :meth:`DesignPoint.initial
<repro.core.design.DesignPoint.initial>` and the engine constructor, so
``SynthesisEngine(..., cache=PersistentCache(store))`` is the whole
client-side change.  An unbound id simply keys nothing durable — the
table falls back to in-process behavior for that call.
"""

from __future__ import annotations

import threading

from repro.core.cache import MemoTable, SynthesisCache
from repro.store.artifacts import ArtifactStore
from repro.store.codec import (
    cdfg_digest,
    decode_replay,
    decode_stg,
    digest_key,
    encode_replay,
    encode_stg,
    trace_store_digest,
)


class PersistentMemoTable(MemoTable):
    """A memo table whose misses read through to the artifact store."""

    def __init__(self, name: str, store: ArtifactStore, durable_key,
                 encode, decode, enabled: bool = True,
                 max_entries: int | None = None):
        super().__init__(name, enabled, max_entries)
        self.store = store
        self._durable_key = durable_key
        self._encode = encode
        self._decode = decode

    def get_or_compute(self, key, compute):
        if not self.enabled:
            return super().get_or_compute(key, compute)
        with self._lock:
            if key in self._table:
                self.stats.hits += 1
                return self._table[key]
        digest = self._durable_key(key)
        if digest is not None:
            payload = self.store.get(self.name, digest)
            if payload is not None:
                try:
                    value = self._decode(payload)
                except Exception:
                    value = None  # stale codec / foreign payload: cold miss
                if value is not None:
                    with self._lock:
                        # A cross-run hit: no compute ran, so it counts as
                        # a table hit; the disk read itself is accounted
                        # on the store ("store" profiler stage + per-kind
                        # store stats).
                        self.stats.hits += 1
                        return self._publish_locked(key, value)
        with self._lock:
            self.stats.misses += 1
        value = compute()
        if digest is not None:
            try:
                self.store.put(self.name, digest, self._encode(value))
            except Exception:
                pass  # degradation: an unwritable store never fails compute
        with self._lock:
            return self._publish_locked(key, value)


class PersistentCache(SynthesisCache):
    """A :class:`SynthesisCache` backed by a shared on-disk artifact store."""

    def __init__(self, store: ArtifactStore, enabled: bool = True,
                 max_entries: int | None = None):
        super().__init__(enabled, max_entries)
        self.store = store
        self._bind_lock = threading.Lock()
        #: id(obj) -> (pinned obj, content digest).  Pinning keeps the id
        #: from being recycled while the digest maps it.
        self._digests: dict[int, tuple[object, str]] = {}
        self.schedule = PersistentMemoTable(
            "schedule", store, self._schedule_key, encode_stg, decode_stg,
            enabled, max_entries)
        self.replay = PersistentMemoTable(
            "replay", store, self._replay_key, encode_replay, decode_replay,
            enabled, max_entries)

    # -- id -> content-digest binding -------------------------------------------

    def bind(self, cdfg=None, trace_store=None) -> None:
        """Register the objects whose ids appear in this cache's memo keys."""
        with self._bind_lock:
            if cdfg is not None and id(cdfg) not in self._digests:
                self._digests[id(cdfg)] = (cdfg, cdfg_digest(cdfg))
            if trace_store is not None and id(trace_store) not in self._digests:
                self._digests[id(trace_store)] = (
                    trace_store, trace_store_digest(trace_store))

    def _digest_of(self, obj_id: int) -> str | None:
        entry = self._digests.get(obj_id)
        return entry[1] if entry is not None else None

    # -- durable key translation ------------------------------------------------
    # Memo key shapes are owned by the compute sites:
    #   schedule: (id(cdfg), binding.schedule_signature(), options)
    #             -- repro.sched.engine.schedule
    #   replay:   (id(store), id(cdfg), stg.replay_signature(), check)
    #             -- repro.sched.replay.replay

    def _schedule_key(self, key) -> str | None:
        cdfg_id, schedule_sig, options = key
        graph = self._digest_of(cdfg_id)
        if graph is None:
            return None
        return digest_key(("schedule", graph, schedule_sig, options))

    def _replay_key(self, key) -> str | None:
        store_id, cdfg_id, replay_sig, check = key
        traces = self._digest_of(store_id)
        graph = self._digest_of(cdfg_id)
        if traces is None or graph is None:
            return None
        return digest_key(("replay", traces, graph, replay_sig, check))

    # -- explicit artifact publication -----------------------------------------

    def design_key(self, design, *, extra=()) -> str | None:
        """Durable content key of a concrete design point, or ``None``.

        Used by the engine to file netlists and conformance verdicts
        under the same signature vocabulary as the pipeline tables.
        """
        graph = self._digest_of(id(design.cdfg))
        traces = self._digest_of(id(design.store))
        if graph is None or traces is None:
            return None
        return digest_key((
            "design", graph, traces, design.options,
            design.binding.signature(), design.stg.signature(),
            design.tree_policy, tuple(extra)))
