"""The versioned, content-addressed on-disk artifact store.

Layout (all under one root directory, shareable by concurrent processes)::

    <root>/
      STORE_VERSION           # schema stamp, json: {"schema": 1}
      v1/<kind>/<dd>/<digest>.pkl

``kind`` is the artifact family (``schedule``, ``replay``, ``netlist``,
``conformance``); ``digest`` is the sha256 key from
:mod:`repro.store.codec`; ``dd`` its first two hex chars (fan-out).  Every
blob is a pickled envelope ``{"schema", "kind", "key", "payload"}`` —
loading verifies all three stamps, so a schema bump, a hash collision
across kinds, or a torn/corrupt file all read as a clean miss (corrupt
files are additionally unlinked).  Publication is atomic
(:func:`repro.store.atomic.atomic_write_bytes`), so readers sharing the
store with writers — worker processes, concurrent CI runs, a server
killed mid-job — never observe a partial artifact.

Reads and writes are timed under the ``store`` stage of
:data:`repro.core.profile.PROFILER` with a disk hit marked incremental,
which is how cross-run reuse surfaces in ``results/profile.json`` and the
``BENCH_headline.json`` trajectory next to the schedule/replay stages.

The GC is size-bounded: when the store exceeds ``max_bytes`` (constructor
argument or ``REPRO_STORE_MAX_BYTES``), oldest-mtime blobs are evicted
until the store fits again.  Eviction is safe at any moment — a missing
artifact is just a cold miss.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading

from repro.core.cache import CacheStats
from repro.core.profile import PROFILER
from repro.store.atomic import atomic_write_bytes, sweep_orphans, write_json
from repro.store.codec import dumps_payload, loads_payload

#: On-disk schema version; bump on any envelope or codec change.  Blobs
#: under other versions are never read (and GC only manages the current
#: version's tree), so mixed-version roots degrade to cold misses.
SCHEMA_VERSION = 1

#: Environment variable naming the store root for implicit attachment.
STORE_DIR_ENV = "REPRO_STORE_DIR"

#: Environment variable bounding the store size in bytes (GC target).
STORE_MAX_BYTES_ENV = "REPRO_STORE_MAX_BYTES"

#: How many publishes happen between size checks when a bound is set.
_GC_EVERY = 32

#: Process-wide I/O fault hook (:mod:`repro.faults`): called as
#: ``hook(op, kind, digest)`` with ``op`` in ``("read", "write")``
#: before every blob access.  Raising :class:`OSError` simulates a hard
#: I/O failure (EIO-style), which deliberately propagates to the caller
#: — unlike a missing blob, which is a clean cold miss.  The
#: per-instance ``_publish_hook`` below stays the crash-window
#: simulator; this one is the deterministic chaos seam.
_IO_FAULT_HOOK = None


def set_io_fault_hook(hook) -> None:
    """Install (or with ``None`` clear) the process-wide I/O fault hook."""
    global _IO_FAULT_HOOK
    _IO_FAULT_HOOK = hook


class ArtifactStore:
    """One process's handle on a shared on-disk artifact store."""

    def __init__(self, root: pathlib.Path | str, *,
                 max_bytes: int | None = None):
        self.root = pathlib.Path(root)
        self.max_bytes = max_bytes
        self.version_dir = self.root / f"v{SCHEMA_VERSION}"
        self._lock = threading.Lock()
        self._stats: dict[str, CacheStats] = {}
        self._puts_since_gc = 0
        #: Test-only crash injection: called as ``hook(tmp, final)`` right
        #: before a blob would be published; raising simulates a writer
        #: killed mid-publish (the temp exists, the final name does not).
        self._publish_hook = None
        self.version_dir.mkdir(parents=True, exist_ok=True)
        stamp = self.root / "STORE_VERSION"
        if not stamp.exists():
            write_json(stamp, {"schema": SCHEMA_VERSION})

    # -- blob access -----------------------------------------------------------

    def _path(self, kind: str, digest: str) -> pathlib.Path:
        return self.version_dir / kind / digest[:2] / f"{digest}.pkl"

    def _count(self, kind: str, hit: bool) -> None:
        with self._lock:
            stats = self._stats.setdefault(kind, CacheStats())
            if hit:
                stats.hits += 1
            else:
                stats.misses += 1

    def get(self, kind: str, digest: str):
        """The stored payload for ``(kind, digest)``, or ``None`` on a miss.

        Unreadable, torn or stamp-mismatched blobs count as misses; a
        corrupt file is unlinked best-effort so it cannot shadow a later
        good publish.
        """
        path = self._path(kind, digest)
        if _IO_FAULT_HOOK is not None:
            _IO_FAULT_HOOK("read", kind, digest)
        with PROFILER.stage("store") as token:
            try:
                blob = path.read_bytes()
            except OSError:
                self._count(kind, hit=False)
                return None
            try:
                envelope = loads_payload(blob)
                if (envelope["schema"] != SCHEMA_VERSION
                        or envelope["kind"] != kind
                        or envelope["key"] != digest):
                    raise ValueError("envelope stamp mismatch")
            except Exception:
                try:
                    path.unlink()
                except OSError:
                    pass
                self._count(kind, hit=False)
                return None
            token.incremental = True
            self._count(kind, hit=True)
            return envelope["payload"]

    def put(self, kind: str, digest: str, payload) -> None:
        """Atomically publish one artifact (last writer wins, bytes equal)."""
        blob = dumps_payload({"schema": SCHEMA_VERSION, "kind": kind,
                              "key": digest, "payload": payload})
        path = self._path(kind, digest)
        if _IO_FAULT_HOOK is not None:
            _IO_FAULT_HOOK("write", kind, digest)
        with PROFILER.stage("store"):
            if self._publish_hook is not None:
                path.parent.mkdir(parents=True, exist_ok=True)
                tmp = path.with_name("." + path.name + ".crash.tmp")
                tmp.write_bytes(blob)
                self._publish_hook(tmp, path)
                os.replace(tmp, path)
            else:
                atomic_write_bytes(path, blob)
        self._maybe_gc()

    def put_json(self, kind: str, digest: str, payload) -> None:
        """Publish a JSON-serializable artifact (netlists, verdicts).

        Stored through the same pickled envelope as every other kind; the
        JSON constraint is the caller's contract that the payload is
        plain data a service client can stream back out.
        """
        json.dumps(payload)  # raises early on non-serializable payloads
        self.put(kind, digest, payload)

    # -- accounting ------------------------------------------------------------

    def stats(self) -> dict[str, dict[str, float]]:
        """Per-kind and total hit/miss counters of this handle."""
        with self._lock:
            out = {kind: stats.as_dict()
                   for kind, stats in sorted(self._stats.items())}
            total = CacheStats(sum(s.hits for s in self._stats.values()),
                               sum(s.misses for s in self._stats.values()))
        out["total"] = total.as_dict()
        return out

    def total_hits(self) -> int:
        with self._lock:
            return sum(s.hits for s in self._stats.values())

    # -- garbage collection ----------------------------------------------------

    def size_bytes(self) -> int:
        return sum(size for _, size, _ in self._blobs())

    def _blobs(self) -> list[tuple[float, int, pathlib.Path]]:
        blobs = []
        for path in self.version_dir.rglob("*.pkl"):
            try:
                stat = path.stat()
            except OSError:
                continue
            blobs.append((stat.st_mtime, stat.st_size, path))
        return blobs

    def gc(self, max_bytes: int | None = None) -> dict[str, int]:
        """Evict oldest blobs until the store fits ``max_bytes``.

        Also sweeps ``*.tmp`` orphans from crashed writers.  Returns
        ``{"evicted", "bytes"}`` (post-GC size).  A ``None`` bound only
        sweeps orphans.
        """
        limit = self.max_bytes if max_bytes is None else max_bytes
        sweep_orphans(self.version_dir)
        blobs = self._blobs()
        total = sum(size for _, size, _ in blobs)
        evicted = 0
        if limit is not None:
            for _, size, path in sorted(blobs):
                if total <= limit:
                    break
                try:
                    path.unlink()
                except OSError:
                    continue
                total -= size
                evicted += 1
        return {"evicted": evicted, "bytes": total}

    def _maybe_gc(self) -> None:
        if self.max_bytes is None:
            return
        with self._lock:
            self._puts_since_gc += 1
            if self._puts_since_gc < _GC_EVERY:
                return
            self._puts_since_gc = 0
        self.gc()


def open_store(root: pathlib.Path | str, *,
               max_bytes: int | None = None) -> ArtifactStore:
    """Open (creating if needed) the artifact store rooted at ``root``.

    ``max_bytes`` defaults to ``REPRO_STORE_MAX_BYTES`` when set.
    """
    if max_bytes is None:
        env = os.environ.get(STORE_MAX_BYTES_ENV)
        if env:
            max_bytes = int(env)
    return ArtifactStore(root, max_bytes=max_bytes)
