"""Durable keys and value codecs for the artifact store.

The in-process memo tables key on ``id(cdfg)`` / ``id(store)`` — correct
within one process, meaningless on disk.  This module supplies the two
halves of the persistent translation:

* **keys** — :func:`digest_key` canonicalizes the id-free parts of a memo
  key (binding/schedule signatures, STG (replay) signatures,
  :class:`~repro.sched.engine.ScheduleOptions`) into one sha256 hex
  digest, and :func:`cdfg_digest` / :func:`trace_store_digest` replace
  the volatile object ids with content digests of the graph and the
  recorded profile;
* **values** — explicit encode/decode pairs for the artifacts the store
  holds.  STGs are rebuilt state by state *preserving transition list
  order* (replay's first-match walk and the controller emission both
  read it), so a decoded STG is bit-identical to the computed one in
  everything downstream consumes.  Decoded STGs carry no fragment-script
  plan (``_plan``) — a cross-run hit can therefore not seed incremental
  scheduling, which only costs speed, never correctness.

Payload blobs are pickled plain containers (dicts/lists/tuples/numpy
arrays) — pickle round-trips ints, floats and array dtypes exactly,
which is what the bit-identity acceptance tests check.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import pickle
from typing import Any

import numpy as np

#: Pickle protocol for store blobs (fixed so blobs stay cross-readable
#: between the python versions CI runs).
PICKLE_PROTOCOL = 4


# -- canonical key digests ---------------------------------------------------------


def _canonical(obj: Any, out: list[str]) -> None:
    """Append a canonical token stream for ``obj`` (order-stable, typed)."""
    if obj is None or isinstance(obj, (bool, int, str, bytes)):
        out.append(f"{type(obj).__name__}:{obj!r}")
    elif isinstance(obj, float):
        # repr is the shortest exact round-trip — distinct floats get
        # distinct tokens, equal floats identical ones.
        out.append(f"f:{obj!r}")
    elif isinstance(obj, (tuple, list)):
        out.append("(")
        for item in obj:
            _canonical(item, out)
        out.append(")")
    elif isinstance(obj, (set, frozenset)):
        parts = []
        for item in obj:
            sub: list[str] = []
            _canonical(item, sub)
            parts.append("".join(sub))
        out.append("{" + ",".join(sorted(parts)) + "}")
    elif isinstance(obj, dict):
        out.append("d{")
        for key in sorted(obj, key=repr):
            _canonical(key, out)
            out.append("=")
            _canonical(obj[key], out)
        out.append("}")
    elif isinstance(obj, enum.Enum):
        out.append(f"e:{type(obj).__name__}:{obj.value!r}")
    elif dataclasses.is_dataclass(obj):
        out.append(f"@{type(obj).__name__}(")
        for f in dataclasses.fields(obj):
            out.append(f.name + "=")
            _canonical(getattr(obj, f.name), out)
        out.append(")")
    else:
        raise TypeError(f"cannot canonicalize {type(obj).__name__} for a store key")


def digest_key(obj: Any) -> str:
    """sha256 hex digest of an id-free key structure."""
    out: list[str] = []
    _canonical(obj, out)
    return hashlib.sha256("".join(out).encode("utf-8")).hexdigest()


def cdfg_digest(cdfg) -> str:
    """Content digest of a CDFG (memoized on the object).

    Covers everything scheduling and replay can read: nodes with their
    kinds, widths, control ports, guards, carriers and constants; edges
    in construction order with ports and loop-carry annotations; the
    region tree; the interface lists and declared variable types.  Two
    parses of the same source digest identically across processes.
    """
    cached = getattr(cdfg, "_content_digest", None)
    if cached is None:
        nodes = tuple(cdfg.nodes[nid] for nid in sorted(cdfg.nodes))
        regions = tuple(cdfg.regions[rid] for rid in sorted(cdfg.regions))
        cached = digest_key((
            "cdfg", cdfg.name, nodes, tuple(cdfg.edges), regions,
            cdfg.root_region, tuple(cdfg.input_nodes),
            tuple(cdfg.output_nodes), dict(cdfg.var_types),
        ))
        cdfg._content_digest = cached
    return cached


def trace_store_digest(store) -> str:
    """Content digest of a profiled TraceStore (memoized on the object)."""
    cached = getattr(store, "_content_digest", None)
    if cached is None:
        h = hashlib.sha256()
        h.update(f"traces:{store.n_passes}".encode())
        for node_id in sorted(store.occurrences):
            occ = store.occurrences[node_id]
            h.update(f"n{node_id}:{len(occ.ins)}".encode())
            for arr in (occ.pass_idx, occ.step, occ.out, *occ.ins):
                h.update(str(arr.dtype).encode())
                h.update(arr.tobytes())
        for name in sorted(store.outputs):
            h.update(f"o{name}".encode())
            h.update(store.outputs[name].tobytes())
        for region in sorted(store.loop_trips):
            h.update(f"l{region}".encode())
            h.update(store.loop_trips[region].tobytes())
        cached = h.hexdigest()
        store._content_digest = cached
    return cached


# -- value codecs ------------------------------------------------------------------


def encode_stg(stg) -> dict:
    """STG -> plain payload dict (transition order preserved verbatim)."""
    return {
        "start": stg.start,
        "done": stg.done,
        "next_id": stg._next_id,
        "states": [
            (sid, state.duration,
             [(op.node, op.fu, op.start, op.end) for op in state.ops])
            for sid, state in sorted(stg.states.items())
        ],
        "transitions": [
            (t.src, t.dst, sorted(t.conds)) for t in stg.transitions
        ],
    }


def decode_stg(payload: dict):
    """Payload dict -> STG, bit-identical in all replayed/emitted content."""
    from repro.sched.stg import STG, ScheduledOp, State

    stg = STG()
    for sid, duration, ops in payload["states"]:
        stg.states[sid] = State(
            id=sid, duration=duration,
            ops=[ScheduledOp(node=node, fu=fu, start=start, end=end)
                 for node, fu, start, end in ops])
    stg.start = payload["start"]
    stg.done = payload["done"]
    stg._next_id = payload["next_id"]
    for src, dst, conds in payload["transitions"]:
        stg.add_transition(src, dst, frozenset((c, want) for c, want in conds))
    return stg


def encode_replay(result) -> dict:
    """ReplayResult -> plain payload dict (numpy arrays pass through)."""
    return {
        "cycles": result.cycles,
        "op_cycle": dict(result.op_cycle),
        "op_start": dict(result.op_start),
        "op_state": dict(result.op_state),
        "total_cycles": result.total_cycles,
        "state_visits": dict(result.state_visits),
        "state_seq": list(result.state_seq),
    }


def decode_replay(payload: dict):
    """Payload dict -> ReplayResult with a fresh (empty) state-count memo."""
    from repro.sched.replay import ReplayResult

    return ReplayResult(
        cycles=np.asarray(payload["cycles"]),
        op_cycle=dict(payload["op_cycle"]),
        op_start=dict(payload["op_start"]),
        op_state=dict(payload["op_state"]),
        total_cycles=int(payload["total_cycles"]),
        state_visits=dict(payload["state_visits"]),
        state_seq=list(payload["state_seq"]),
    )


def dumps_payload(payload: Any) -> bytes:
    return pickle.dumps(payload, protocol=PICKLE_PROTOCOL)


def loads_payload(blob: bytes) -> Any:
    return pickle.loads(blob)
