"""Trace manipulation — Section 2.3 of the paper.

A functional unit's trace under a candidate design is the merge of the
traces of the operations mapped to it, ordered by STG execution; a
register's trace is the merge of its writers' output streams; a
multiplexer input's statistics come from the driver's signal stream and
its selection frequency.  All merging is pure array manipulation over the
one recorded behavioral simulation plus the (cheap) STG replay — exactly
the paper's scheme for avoiding re-simulation at every synthesis step.

The same scheme extends across design points: a move's dirty set names
the few units it touched, so :func:`merge_unit_traces` can derive a
candidate's traces from its parent's by re-merging only the dirty
units/ports and sharing every other stream *object*.  Shared streams
carry their activity statistics as lazy memos, so the expensive toggle
counting happens once per distinct stream, not once per design point
that looks at it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PowerModelError
from repro.cdfg.node import OpKind
from repro.core.profile import PROFILER
from repro.rtl.architecture import Architecture
from repro.sched.replay import ReplayResult
from repro.sim.statistics import stream_activity
from repro.sim.traces import TraceStore


@dataclass
class FUStream:
    """Merged trace of one functional unit (the paper's TR(Du)).

    The ``_port_activity``/``_internal`` fields are lazy memos of derived
    statistics; both are pure functions of the (immutable) stream arrays,
    so sharing a stream object between design points shares the memo.
    """

    fu_id: int
    width: int
    ins: tuple[np.ndarray, ...]
    out: np.ndarray
    chained_fraction: float
    _port_activity: tuple[float, ...] | None = field(default=None, repr=False)
    _internal: float | None = field(default=None, repr=False)

    @property
    def executions(self) -> int:
        return int(self.out.shape[0])

    def port_activity(self) -> tuple[float, ...]:
        """Mean toggle activity of each port (inputs..., output), memoized."""
        if self._port_activity is None:
            stats = [stream_activity(col, self.width) for col in self.ins]
            stats.append(stream_activity(self.out, self.width))
            self._port_activity = tuple(stats)
        return self._port_activity

    def out_activity(self) -> float:
        """Mean toggle activity of the output port alone."""
        return self.port_activity()[-1]


@dataclass
class RegStream:
    """Merged write trace of one register."""

    key: object              # ("reg", id) or ("tmp", node)
    width: int
    values: np.ndarray
    _activity: float | None = field(default=None, repr=False)

    @property
    def writes(self) -> int:
        return int(self.values.shape[0])

    def activity(self) -> float:
        """Mean toggle activity of the write stream, memoized."""
        if self._activity is None:
            self._activity = stream_activity(self.values, self.width)
        return self._activity


@dataclass
class MemStream:
    """Merged access trace of one RAM instance (loads and stores).

    ``addrs``/``values`` are the address and data word of every access in
    execution order; activity memos ride on the stream object like the
    other stream types, so design points sharing the stream share the
    toggle counting.
    """

    name: str
    width: int
    addr_bits: int
    addrs: np.ndarray
    values: np.ndarray
    _addr_activity: float | None = field(default=None, repr=False)
    _data_activity: float | None = field(default=None, repr=False)

    @property
    def executions(self) -> int:
        return int(self.values.shape[0])

    def addr_activity(self) -> float:
        if self._addr_activity is None:
            self._addr_activity = stream_activity(self.addrs, self.addr_bits) \
                if self.executions >= 2 else 0.0
        return self._addr_activity

    def data_activity(self) -> float:
        if self._data_activity is None:
            self._data_activity = stream_activity(self.values, self.width) \
                if self.executions >= 2 else 0.0
        return self._data_activity


@dataclass
class UnitTraces:
    """Every RT unit's merged trace plus derived statistics."""

    total_cycles: int
    fu_streams: dict[int, FUStream] = field(default_factory=dict)
    reg_streams: dict[object, RegStream] = field(default_factory=dict)
    mem_streams: dict[str, MemStream] = field(default_factory=dict)
    port_stats: dict[tuple, list[tuple[object, float, float]]] = field(default_factory=dict)
    port_samples: dict[tuple, int] = field(default_factory=dict)
    _activity_cache: dict[object, float] = field(default_factory=dict)

    def fu_activity(self, fu_id: int) -> tuple[float, ...]:
        """Mean toggle activity of each port (inputs..., output)."""
        return self.fu_streams[fu_id].port_activity()

    def reg_activity(self, key: object) -> float:
        stream = self.reg_streams.get(key)
        if stream is None or stream.writes < 2:
            return 0.0
        return stream.activity()


def merge_unit_traces(arch: Architecture, store: TraceStore,
                      rep: ReplayResult, cache=None,
                      parent: UnitTraces | None = None,
                      dirty=None, dirty_ports: frozenset = frozenset()) -> UnitTraces:
    """Merge per-op traces into per-unit traces for one design point.

    ``cache`` is an optional :class:`~repro.core.cache.SynthesisCache`;
    when given, the result is memoized on (store id, CDFG id, merge
    signature of the binding, STG signature) — everything the merge
    reads.  The signature deliberately ignores module assignments (the
    merge never reads them), so module-substitution candidates share the
    parent's traces outright.  The merged traces are immutable apart from
    internal statistic memos, so the shared object is safe across design
    points (mux-tree restructuring changes the architecture, never the
    merged streams).

    ``parent``/``dirty``/``dirty_ports`` enable the incremental path: the
    parent's streams and port statistics are shared for every unit/port
    outside the dirty sets and only the dirty remainder is re-merged —
    bit-identical to a full merge, because a clean unit's merge inputs
    (operation set, width, occurrence arrays, replay timing) are the
    parent's exactly.
    """
    def compute() -> UnitTraces:
        incremental = parent is not None and dirty is not None
        with PROFILER.stage("trace_merge", incremental=incremental):
            if incremental:
                return _Merger(arch, store, rep, parent=parent, dirty=dirty,
                               dirty_ports=dirty_ports).run()
            return _Merger(arch, store, rep).run()

    if cache is None:
        return compute()
    key = (id(store), id(arch.cdfg), arch.binding.merge_signature(),
           arch.stg.signature())
    return cache.traces.get_or_compute(key, compute)


class _Merger:
    def __init__(self, arch: Architecture, store: TraceStore, rep: ReplayResult,
                 parent: UnitTraces | None = None, dirty=None,
                 dirty_ports: frozenset = frozenset()):
        self.arch = arch
        self.store = store
        self.rep = rep
        self.parent = parent
        self.dirty = dirty
        self.dirty_ports = dirty_ports
        self.traces = UnitTraces(total_cycles=rep.total_cycles)
        if parent is not None:
            # Activities of signals no dirty unit feeds are unchanged;
            # seed the memo so clean sources of dirty ports are free.
            dirty_sources = dirty.dirty_sources()
            self.traces._activity_cache = {
                source: value
                for source, value in parent._activity_cache.items()
                if source not in dirty_sources
            }

    def run(self) -> UnitTraces:
        self._merge_fus()
        self._merge_registers()
        self._merge_memories()
        self._port_statistics()
        return self.traces

    # -- helpers -----------------------------------------------------------------

    def _occ_arrays(self, node_id: int):
        occ = self.store.occurrences.get(node_id)
        if occ is None:
            return None
        cycles = self.rep.op_cycle.get(node_id)
        starts = self.rep.op_start.get(node_id)
        if cycles is None or len(cycles) != len(occ):
            raise PowerModelError(
                f"node {node_id}: replay timing misaligned with trace store")
        return occ, cycles, starts

    @staticmethod
    def _forward_fill(values: np.ndarray, valid: np.ndarray) -> np.ndarray:
        """Hold-last-value for ports an operation does not drive."""
        if valid.all():
            return values
        idx = np.where(valid, np.arange(values.size), -1)
        idx = np.maximum.accumulate(idx)
        filled = values[np.maximum(idx, 0)]
        filled[idx < 0] = 0
        return filled

    def _merge_fus(self) -> None:
        for fu in self.arch.binding.fus.values():
            if self.parent is not None and fu.id not in self.dirty.fu_ids:
                self.traces.fu_streams[fu.id] = self.parent.fu_streams[fu.id]
                continue
            self.traces.fu_streams[fu.id] = self._merge_one_fu(fu)

    def _merge_one_fu(self, fu) -> FUStream:
        parts = []
        for op in sorted(fu.ops):
            got = self._occ_arrays(op)
            if got is None:
                continue
            occ, cycles, starts = got
            parts.append((op, occ, cycles, starts))
        if not parts:
            return FUStream(
                fu.id, fu.width, (np.zeros(0, np.int64), np.zeros(0, np.int64)),
                np.zeros(0, np.int64), 0.0)
        if len(parts) == 1:
            # Single-op unit (the common case under the fully-parallel
            # start): replay emits occurrences in strictly increasing
            # cycle order, so the lexsort is the identity and every
            # input column is fully valid — the stream is the trace.
            _op, occ, _cycles, starts = parts[0]
            chained = float((starts > 0.0).mean()) if starts.size else 0.0
            return FUStream(fu.id, fu.width, tuple(occ.ins), occ.out, chained)
        cycles = np.concatenate([p[2] for p in parts])
        starts = np.concatenate([p[3] for p in parts])
        order = np.lexsort((starts, cycles))
        out = np.concatenate([p[1].out for p in parts])[order]
        max_arity = max(len(p[1].ins) for p in parts)
        ins = []
        for k in range(max_arity):
            col_parts = []
            valid_parts = []
            for _op, occ, _c, _s in parts:
                if k < len(occ.ins):
                    col_parts.append(occ.ins[k])
                    valid_parts.append(np.ones(len(occ), dtype=bool))
                else:
                    col_parts.append(np.zeros(len(occ), dtype=np.int64))
                    valid_parts.append(np.zeros(len(occ), dtype=bool))
            col = np.concatenate(col_parts)[order]
            valid = np.concatenate(valid_parts)[order]
            ins.append(self._forward_fill(col, valid))
        chained = float((starts[order] > 0.0).mean()) if starts.size else 0.0
        return FUStream(fu.id, fu.width, tuple(ins), out, chained)

    def _merge_registers(self) -> None:
        cdfg = self.arch.cdfg
        writers_by_reg: dict[int, list[int]] = {}
        for node in cdfg.nodes.values():
            if node.carrier is None:
                continue
            if not (node.is_schedulable or node.kind is OpKind.INPUT):
                continue
            reg = self.arch.binding.reg_of(node.carrier)
            writers_by_reg.setdefault(reg.id, []).append(node.id)

        for reg_id, writers in writers_by_reg.items():
            if self.parent is not None and reg_id not in self.dirty.reg_ids:
                stream = self.parent.reg_streams.get(("reg", reg_id))
                if stream is not None:
                    self.traces.reg_streams[("reg", reg_id)] = stream
                continue
            reg = self.arch.binding.regs[reg_id]
            parts = []
            for writer in sorted(writers):
                got = self._occ_arrays(writer)
                if got is None:
                    continue
                occ, cycles, starts = got
                parts.append((occ.out, cycles, starts))
            if not parts:
                continue
            cycles = np.concatenate([p[1] for p in parts])
            starts = np.concatenate([p[2] for p in parts])
            order = np.lexsort((starts, cycles))
            values = np.concatenate([p[0] for p in parts])[order]
            self.traces.reg_streams[("reg", reg_id)] = RegStream(
                ("reg", reg_id), reg.width, values)

        for node_id, width in self.arch.datapath.tmp_regs.items():
            if self.parent is not None:
                # Temporary streams read only the occurrence store; the
                # temporary set itself is (CDFG, STG)-determined — shared.
                stream = self.parent.reg_streams.get(("tmp", node_id))
                if stream is not None:
                    self.traces.reg_streams[("tmp", node_id)] = stream
                continue
            got = self._occ_arrays(node_id)
            if got is None:
                continue
            occ, _cycles, _starts = got
            self.traces.reg_streams[("tmp", node_id)] = RegStream(
                ("tmp", node_id), width, occ.out)

    def _merge_memories(self) -> None:
        cdfg = self.arch.cdfg
        accesses_by_array: dict[str, list[int]] = {}
        for node in cdfg.mem_nodes():
            accesses_by_array.setdefault(node.mem, []).append(node.id)
        for name, accesses in sorted(accesses_by_array.items()):
            if self.parent is not None:
                # The incremental path only runs when the STG is the
                # parent's (or replay-equivalent to it), so an array's
                # access trace — occurrence values in replay cycle order —
                # is the parent's exactly, for any binding edit.
                stream = self.parent.mem_streams.get(name)
                if stream is not None:
                    self.traces.mem_streams[name] = stream
                    continue
            width, _signed, depth = cdfg.array_types[name]
            addr_bits = max(1, depth.bit_length() - 1)
            parts = []
            for node_id in sorted(accesses):
                got = self._occ_arrays(node_id)
                if got is None:
                    continue
                occ, cycles, starts = got
                parts.append((occ, cycles, starts))
            if not parts:
                continue
            cycles = np.concatenate([p[1] for p in parts])
            starts = np.concatenate([p[2] for p in parts])
            order = np.lexsort((starts, cycles))
            mask = np.int64(depth - 1)
            addrs = np.concatenate([p[0].ins[0] for p in parts])[order] & mask
            # occ.out is the read word for loads and the written word for
            # stores: the data bus traffic either way.
            values = np.concatenate([p[0].out for p in parts])[order]
            self.traces.mem_streams[name] = MemStream(
                name, width, addr_bits, addrs, values)

    # -- signal activities & mux statistics ----------------------------------------

    def signal_activity(self, source: tuple) -> float:
        cache = self.traces._activity_cache
        if source in cache:
            return cache[source]
        kind = source[0]
        value = 0.0
        if kind == "const":
            value = 0.0
        elif kind in ("reg", "tmp"):
            value = self.traces.reg_activity(source)
        elif kind == "fu":
            stream = self.traces.fu_streams.get(source[1])
            if stream is not None and stream.executions >= 2:
                value = stream.out_activity()
        elif kind in ("wire", "pin"):
            node_id = self._node_of_signal(source)
            occ = self.store.occurrences.get(node_id)
            if occ is not None and len(occ) >= 2:
                node = self.arch.cdfg.node(node_id)
                value = stream_activity(occ.out, node.width)
        else:
            raise PowerModelError(f"unknown source kind {source!r}")
        cache[source] = value
        return value

    def _node_of_signal(self, source: tuple) -> int:
        if source[0] == "wire":
            return source[1]
        # ("pin", var): the INPUT node with that carrier
        for node_id in self.arch.cdfg.input_nodes:
            if self.arch.cdfg.node(node_id).carrier == source[1]:
                return node_id
        raise PowerModelError(f"no input pin {source[1]!r}")

    def _port_statistics(self) -> None:
        for port in self.arch.datapath.mux_ports():
            if self.parent is not None and port.key not in self.dirty_ports:
                stats = self.parent.port_stats.get(port.key)
                if stats is not None:
                    self.traces.port_stats[port.key] = stats
                    self.traces.port_samples[port.key] = \
                        self.parent.port_samples[port.key]
                continue
            counts: dict[object, int] = {s: 0 for s in port.sources}
            total = 0
            for (consumer, state_id), source in port.drivers.items():
                n = self.rep.op_state_counts(consumer).get(state_id, 0)
                counts[source] += n
                total += n
            stats = []
            for source in port.sources:
                prob = counts[source] / total if total else 0.0
                stats.append((source, self.signal_activity(source), prob))
            self.traces.port_stats[port.key] = stats
            self.traces.port_samples[port.key] = total
