"""Glitch model.

Chained operators see skewed input arrival times: early-arriving inputs
ripple spurious transitions through the unit until the late inputs settle.
The estimator of [19] folds glitches in through signal statistics; we use a
structural first-order model — the glitch multiplier grows with the
fraction of executions that were chained (estimator) or with the actual
arrival skew of each execution (gatesim).
"""

from __future__ import annotations

#: Extra switched-capacitance fraction of a fully-chained execution.
CHAIN_GLITCH = 0.35

#: gatesim: glitch toggles per bit per ns of input arrival skew, relative
#: to the unit's settled toggles.
SKEW_GLITCH_PER_NS = 0.04


def chain_glitch_factor(chained_fraction: float) -> float:
    """Estimator multiplier: 1.0 (no chaining) .. 1+CHAIN_GLITCH (always)."""
    if not 0.0 <= chained_fraction <= 1.0:
        raise ValueError(f"chained fraction {chained_fraction} out of [0, 1]")
    return 1.0 + CHAIN_GLITCH * chained_fraction


def skew_glitch_factor(arrival_skew_ns: float) -> float:
    """gatesim multiplier for one execution with a given input skew (ns)."""
    if arrival_skew_ns < 0.0:
        raise ValueError(f"negative skew {arrival_skew_ns}")
    return 1.0 + SKEW_GLITCH_PER_NS * arrival_skew_ns
