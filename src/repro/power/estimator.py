"""RT-level power estimator ([19]-style).

Converts merged unit traces into a power number:

* functional units: executions x effective switched capacitance x Vdd^2,
  with the activity factor from the measured port statistics and a glitch
  multiplier from the chained-execution fraction;
* registers: write-data toggles plus clock load every cycle;
* multiplexer trees: the Section 3.2.1 activity equations over the
  measured per-source (activity, probability) statistics;
* controller: the structural FSM model per cycle.

Power is reported in mW (pJ per ns); the estimate drives the IMPACT search
and is validated against the bit-level measurement proxy in
:mod:`repro.gatesim` (see EXPERIMENTS.md for the fidelity numbers).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PowerModelError
from repro.cdfg.node import OpKind
from repro.library.module import scale_capacitance
from repro.utils.bitwidth import to_unsigned_array
from repro.utils.hamming import popcount, toggle_series
from repro.library.modules_data import (
    MUX_CAP_PER_BIT,
    REGISTER_CAP_PER_BIT,
    REGISTER_CLOCK_CAP_PER_BIT,
)
from repro.library.voltage import NOMINAL_VDD
from repro.power.glitch import chain_glitch_factor
from repro.power.trace_manip import UnitTraces
from repro.rtl.architecture import Architecture
from repro.rtl.mux import MuxSource


@dataclass
class PowerEstimate:
    """Estimated power (mW) with a per-component breakdown."""

    fus: float = 0.0
    registers: float = 0.0
    muxes: float = 0.0
    controller: float = 0.0
    per_fu: dict[int, float] = field(default_factory=dict)
    per_port: dict[tuple, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return self.fus + self.registers + self.muxes + self.controller

    def breakdown(self) -> dict[str, float]:
        return {
            "fus": self.fus,
            "registers": self.registers,
            "muxes": self.muxes,
            "controller": self.controller,
            "total": self.total,
        }


#: Weight of internal (carry / partial-product) toggles in FU energy; the
#: same constant the bit-level measurement uses.
INTERNAL_WEIGHT = 0.8


def _internal_activity(arch: Architecture, fu, stream) -> float:
    """Mean unit-internal activity per execution, matching gatesim's model."""
    kinds = fu.kinds(arch.cdfg)
    width = fu.width
    if stream.executions < 1 or len(stream.ins) < 2:
        return 0.0
    a = to_unsigned_array(stream.ins[0], width)
    b = to_unsigned_array(stream.ins[1], width)
    if OpKind.MUL in kinds:
        return float((popcount(a) + popcount(b)).mean()) / (2.0 * width)
    if OpKind.ADD in kinds or OpKind.SUB in kinds:
        mask = np.int64((1 << width) - 1)
        carry = ((a + b) & mask) ^ a ^ b
        if carry.size < 2:
            return 0.0
        return 0.5 * float(toggle_series(carry).mean()) / width
    return 0.0


def estimate_power(arch: Architecture, traces: UnitTraces,
                   vdd: float = NOMINAL_VDD) -> PowerEstimate:
    """Estimate the average power of a design point at a supply voltage."""
    if traces.total_cycles <= 0:
        raise PowerModelError("cannot estimate power over zero cycles")
    time_ns = traces.total_cycles * arch.clock_ns
    v2 = vdd * vdd
    estimate = PowerEstimate()

    # Functional units: port toggles plus the unit-internal activity model
    # (carry chains for add/sub, partial products for multiply) -- the same
    # structural terms the bit-level measurement counts, computed here from
    # the merged streams in one vectorized pass.
    for fu in arch.binding.fus.values():
        stream = traces.fu_streams.get(fu.id)
        if stream is None or stream.executions == 0:
            continue
        activities = traces.fu_activity(fu.id)
        in_acts = activities[:-1]
        out_act = activities[-1]
        port_alpha = (sum(in_acts) + 2.0 * out_act) / (len(in_acts) + 2.0)
        internal = _internal_activity(arch, fu, stream)
        alpha = port_alpha + INTERNAL_WEIGHT * internal
        glitch = chain_glitch_factor(stream.chained_fraction)
        cap = scale_capacitance(fu.module, fu.width)
        energy = stream.executions * cap * v2 * alpha * glitch
        estimate.per_fu[fu.id] = energy / time_ns
        estimate.fus += energy / time_ns

    # Registers: data toggles on writes + clock load every cycle.
    reg_energy = 0.0
    for stream in traces.reg_streams.values():
        alpha = traces.reg_activity(stream.key)
        reg_energy += stream.writes * stream.width * REGISTER_CAP_PER_BIT * v2 * alpha
        reg_energy += traces.total_cycles * stream.width * REGISTER_CLOCK_CAP_PER_BIT * v2
    estimate.registers = reg_energy / time_ns

    # Multiplexer trees: Equation (7) over measured (a_i, p_i).
    mux_energy = 0.0
    for port in arch.datapath.mux_ports():
        stats = traces.port_stats.get(port.key)
        samples = traces.port_samples.get(port.key, 0)
        if stats is None or port.tree is None or samples == 0:
            continue
        annotated = port.tree.with_stats({key: (a, p) for key, a, p in stats})
        activity = annotated.tree_activity()
        energy = activity * port.width * MUX_CAP_PER_BIT * v2 * samples
        estimate.per_port[port.key] = energy / time_ns
        mux_energy += energy
    estimate.muxes = mux_energy / time_ns

    # Controller.
    controller_energy = traces.total_cycles * arch.controller.energy_per_cycle(vdd)
    estimate.controller = controller_energy / time_ns

    return estimate
