"""RT-level power estimator ([19]-style).

Converts merged unit traces into a power number:

* functional units: executions x effective switched capacitance x Vdd^2,
  with the activity factor from the measured port statistics and a glitch
  multiplier from the chained-execution fraction;
* registers: write-data toggles plus clock load every cycle;
* multiplexer trees: the Section 3.2.1 activity equations over the
  measured per-source (activity, probability) statistics;
* controller: the structural FSM model per cycle.

Power is reported in mW (pJ per ns); the estimate drives the IMPACT search
and is validated against the bit-level measurement proxy in
:mod:`repro.gatesim` (see EXPERIMENTS.md for the fidelity numbers).

The estimate is a sum of independent per-component energy terms, so a
design point derived from a parent by a move with a known dirty set can
*patch* the parent's estimate: ``reuse=`` hands in the parent's
:class:`PowerEstimate` and only components named by the dirty sets are
recomputed.  Accumulation then replays the exact float-addition order of
the full path over per-component values that are bit-identical by
construction, so patched and full estimates agree to the last bit (the
randomized equivalence suite enforces this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import PowerModelError
from repro.cdfg.node import OpKind
from repro.core.profile import PROFILER
from repro.library.memory import ram_access_cap
from repro.library.module import scale_capacitance
from repro.utils.bitwidth import to_unsigned_array
from repro.utils.hamming import popcount, toggle_series
from repro.library.modules_data import (
    MUX_CAP_PER_BIT,
    REGISTER_CAP_PER_BIT,
    REGISTER_CLOCK_CAP_PER_BIT,
)
from repro.library.voltage import NOMINAL_VDD
from repro.power.glitch import chain_glitch_factor
from repro.power.trace_manip import UnitTraces
from repro.rtl.architecture import Architecture
from repro.rtl.mux import MuxSource


@dataclass
class PowerEstimate:
    """Estimated power (mW) with a per-component breakdown.

    The private ``_reg_energy``/``_port_energy`` dicts hold the raw
    (undivided) energy terms the totals were accumulated from; they are
    what a derived design point's patched estimate copies for clean
    components, and ``_vdd``/``_time_ns`` guard that a reuse candidate
    was computed under the same supply and time base.
    """

    fus: float = 0.0
    registers: float = 0.0
    memories: float = 0.0
    muxes: float = 0.0
    controller: float = 0.0
    per_fu: dict[int, float] = field(default_factory=dict)
    per_port: dict[tuple, float] = field(default_factory=dict)
    _reg_energy: dict[object, tuple[float, float]] = field(
        default_factory=dict, repr=False)
    _port_energy: dict[tuple, float] = field(default_factory=dict, repr=False)
    _vdd: float = field(default=0.0, repr=False)
    _time_ns: float = field(default=0.0, repr=False)

    @property
    def total(self) -> float:
        return (self.fus + self.registers + self.memories + self.muxes
                + self.controller)

    def breakdown(self) -> dict[str, float]:
        return {
            "fus": self.fus,
            "registers": self.registers,
            "memories": self.memories,
            "muxes": self.muxes,
            "controller": self.controller,
            "total": self.total,
        }


#: Weight of internal (carry / partial-product) toggles in FU energy; the
#: same constant the bit-level measurement uses.
INTERNAL_WEIGHT = 0.8

#: Split of a RAM access's energy into a fixed part (word-line select and
#: bit-line precharge fire every access regardless of data) and a part
#: scaled by measured address/data toggle activity.
MEM_STATIC_WEIGHT = 0.6


def _internal_activity(arch: Architecture, fu, stream) -> float:
    """Mean unit-internal activity per execution, matching gatesim's model.

    Memoized on the stream: a pure function of the merged input columns
    and the unit's kind set, both of which are fixed for a stream object
    (clean units share streams across design points, so the memo rides
    along).
    """
    if stream._internal is None:
        stream._internal = _compute_internal_activity(
            fu.kinds(arch.cdfg), fu.width, stream)
    return stream._internal


def _compute_internal_activity(kinds, width: int, stream) -> float:
    if stream.executions < 1 or len(stream.ins) < 2:
        return 0.0
    a = to_unsigned_array(stream.ins[0], width)
    b = to_unsigned_array(stream.ins[1], width)
    if OpKind.MUL in kinds:
        return float((popcount(a) + popcount(b)).mean()) / (2.0 * width)
    if OpKind.ADD in kinds or OpKind.SUB in kinds:
        mask = np.int64((1 << width) - 1)
        carry = ((a + b) & mask) ^ a ^ b
        if carry.size < 2:
            return 0.0
        return 0.5 * float(toggle_series(carry).mean()) / width
    return 0.0


def estimate_power(arch: Architecture, traces: UnitTraces,
                   vdd: float = NOMINAL_VDD, *,
                   reuse: PowerEstimate | None = None,
                   dirty_fus: frozenset = frozenset(),
                   dirty_regs: frozenset = frozenset(),
                   dirty_ports: frozenset = frozenset()) -> PowerEstimate:
    """Estimate the average power of a design point at a supply voltage.

    ``reuse`` is an optional parent estimate to patch: components whose
    unit/port is not in the dirty sets copy the parent's energy term
    instead of recomputing it.  The parent must share this point's time
    base (same replay, same clock) and supply; mismatches fall back to a
    full estimate.
    """
    if traces.total_cycles <= 0:
        raise PowerModelError("cannot estimate power over zero cycles")
    time_ns = traces.total_cycles * arch.clock_ns
    if reuse is not None and (reuse._vdd != vdd or reuse._time_ns != time_ns):
        reuse = None
    with PROFILER.stage("power_estimate", incremental=reuse is not None):
        return _estimate(arch, traces, vdd, time_ns, reuse,
                         dirty_fus, dirty_regs, dirty_ports)


def _estimate(arch: Architecture, traces: UnitTraces, vdd: float,
              time_ns: float, reuse: PowerEstimate | None,
              dirty_fus: frozenset, dirty_regs: frozenset,
              dirty_ports: frozenset) -> PowerEstimate:
    v2 = vdd * vdd
    estimate = PowerEstimate(_vdd=vdd, _time_ns=time_ns)

    # Functional units: port toggles plus the unit-internal activity model
    # (carry chains for add/sub, partial products for multiply) -- the same
    # structural terms the bit-level measurement counts, computed here from
    # the merged streams in one vectorized pass.
    for fu in arch.binding.fus.values():
        stream = traces.fu_streams.get(fu.id)
        if stream is None or stream.executions == 0:
            continue
        if reuse is not None and fu.id not in dirty_fus and fu.id in reuse.per_fu:
            power = reuse.per_fu[fu.id]
        else:
            activities = traces.fu_activity(fu.id)
            in_acts = activities[:-1]
            out_act = activities[-1]
            port_alpha = (sum(in_acts) + 2.0 * out_act) / (len(in_acts) + 2.0)
            internal = _internal_activity(arch, fu, stream)
            alpha = port_alpha + INTERNAL_WEIGHT * internal
            glitch = chain_glitch_factor(stream.chained_fraction)
            cap = scale_capacitance(fu.module, fu.width)
            energy = stream.executions * cap * v2 * alpha * glitch
            power = energy / time_ns
        estimate.per_fu[fu.id] = power
        estimate.fus += power

    # Registers: data toggles on writes + clock load every cycle.
    reg_energy = 0.0
    for stream in traces.reg_streams.values():
        key = stream.key
        clean = key[0] == "tmp" or key[1] not in dirty_regs
        if reuse is not None and clean and key in reuse._reg_energy:
            data_e, clock_e = reuse._reg_energy[key]
        else:
            alpha = traces.reg_activity(key)
            data_e = stream.writes * stream.width * REGISTER_CAP_PER_BIT * v2 * alpha
            clock_e = traces.total_cycles * stream.width * REGISTER_CLOCK_CAP_PER_BIT * v2
        estimate._reg_energy[key] = (data_e, clock_e)
        reg_energy += data_e
        reg_energy += clock_e
    estimate.registers = reg_energy / time_ns

    # Multiplexer trees: Equation (7) over measured (a_i, p_i).
    mux_energy = 0.0
    for port in arch.datapath.mux_ports():
        stats = traces.port_stats.get(port.key)
        samples = traces.port_samples.get(port.key, 0)
        if stats is None or port.tree is None or samples == 0:
            continue
        if (reuse is not None and port.key not in dirty_ports
                and port.key in reuse._port_energy):
            energy = reuse._port_energy[port.key]
        else:
            activity = port.tree.activity_with(
                {key: (a, p) for key, a, p in stats})
            energy = activity * port.width * MUX_CAP_PER_BIT * v2 * samples
        estimate._port_energy[port.key] = energy
        estimate.per_port[port.key] = energy / time_ns
        mux_energy += energy
    estimate.muxes = mux_energy / time_ns

    # Memories: per-access RAM energy from the bound organization and the
    # merged access streams.  Always recomputed (designs hold at most a
    # few arrays and the activity memos live on the shared stream
    # objects), which keeps SubstituteRam honest under trace sharing:
    # the stream is the parent's, the capacitance is this binding's.
    mem_energy = 0.0
    for name in sorted(arch.binding.mems):
        mem = arch.binding.mems[name]
        stream = traces.mem_streams.get(name)
        if stream is None or stream.executions == 0:
            continue
        cap = ram_access_cap(mem.spec, mem.width, mem.depth)
        alpha = 0.5 * (stream.addr_activity() + stream.data_activity())
        scale = MEM_STATIC_WEIGHT + (1.0 - MEM_STATIC_WEIGHT) * alpha
        mem_energy += stream.executions * cap * v2 * scale
    estimate.memories = mem_energy / time_ns

    # Controller (always recomputed: the model is a handful of counters
    # that change with any structural edit, and it costs nothing).
    controller_energy = traces.total_cycles * arch.controller.energy_per_cycle(vdd)
    estimate.controller = controller_energy / time_ns

    return estimate
