"""Power estimation: trace manipulation and the RT-level estimator.

One behavioral simulation records per-operation traces; for any candidate
(STG, binding) design point, :mod:`repro.power.trace_manip` re-derives every
RT unit's trace by merging operation streams in STG execution order —
never re-simulating values (Section 2.3).  The estimator then turns unit
traces into a power number ([19]-style signal statistics), which drives the
IMPACT search.
"""

from repro.power.trace_manip import UnitTraces, merge_unit_traces
from repro.power.estimator import PowerEstimate, estimate_power

__all__ = [
    "UnitTraces",
    "merge_unit_traces",
    "PowerEstimate",
    "estimate_power",
]
