"""Exception hierarchy for the IMPACT reproduction.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Subsystems raise the most specific subclass available; error
messages always include enough context (node/edge/state names) to debug a
failing synthesis run without a debugger.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class LanguageError(ReproError):
    """Problem in behavioral source text (lexing, parsing, typing)."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"line {line}" + (f", col {column}" if column is not None else "") + f": {message}"
        super().__init__(message)


class LexError(LanguageError):
    """Unrecognized character or malformed token."""


class ParseError(LanguageError):
    """Token stream does not match the grammar."""


class TypeCheckError(LanguageError):
    """Undefined variable, width conflict, or illegal operand."""


class CDFGError(ReproError):
    """Structurally invalid control-data flow graph."""


class InterpreterError(ReproError):
    """Behavioral execution failed (e.g. non-terminating loop guard)."""


class ScheduleError(ReproError):
    """Scheduler could not produce a legal state transition graph."""


class BindingError(ReproError):
    """Inconsistent operation->FU or variable->register assignment."""


class ArchitectureError(ReproError):
    """RTL architecture violates a structural invariant."""


class PowerModelError(ReproError):
    """Power estimation was asked for a unit it cannot model."""


class LibraryError(ReproError):
    """Module library lookup failed (no module implements an op)."""


class ConstraintError(ReproError):
    """A synthesis move or result violates the performance constraint."""


class ExperimentError(ReproError):
    """Experiment harness misconfiguration."""


class HDLError(ReproError):
    """Verilog emission or netlist simulation failed (unsupported
    construct, unresolved signal, non-converging combinational net)."""


class ConformanceError(ReproError):
    """Differential cosimulation found disagreeing execution models."""


class GenerationError(ReproError):
    """A generated program failed its round-trip semantic invariant
    (emitted source re-parses/compiles to something that disagrees with
    the generator's reference evaluator)."""
