"""Seeded stimulus generation.

Benchmarks declare typed inputs; this module draws reproducible random
input passes for them.  Generators accept per-variable ranges so benchmark
modules can shape distributions (e.g. small loop bounds, realistic packet
lengths) — the "typical input sequences" the paper simulates with.
"""

from __future__ import annotations

import numpy as np

from repro.cdfg.graph import CDFG
from repro.utils.bitwidth import max_signed, min_signed


def random_stimulus(
    cdfg: CDFG,
    n_passes: int,
    seed: int = 0,
    ranges: dict[str, tuple[int, int]] | None = None,
) -> list[dict[str, int]]:
    """Draw ``n_passes`` random input assignments for a CDFG.

    ``ranges`` overrides the sampled interval per input variable; defaults
    to the full signed/unsigned range of the declared width (capped to a
    sane magnitude so multiplications stay representative).
    """
    rng = np.random.default_rng(seed)
    ranges = ranges or {}
    passes: list[dict[str, int]] = []
    specs: list[tuple[str, int, int]] = []
    for node_id in cdfg.input_nodes:
        node = cdfg.node(node_id)
        name = node.carrier
        if name in ranges:
            lo, hi = ranges[name]
        elif node.signed:
            lo, hi = min_signed(node.width), max_signed(node.width)
        else:
            lo, hi = 0, (1 << node.width) - 1
        specs.append((name, lo, hi))
    for _ in range(n_passes):
        passes.append({name: int(rng.integers(lo, hi + 1)) for name, lo, hi in specs})
    return passes
