"""Signal statistics for power estimation.

The RT-level estimator of [19] consumes, per unit, the mean and standard
deviation of switching activity plus temporal (lag-1) and spatial
correlations of the signals at its ports.  These are computed here from
value streams (numpy int64 arrays of *signed* values plus a bit width).

The synthesis hot path consumes only the *mean* activity, so it calls
:func:`stream_activity` — one vectorized toggle pass, no std/lag-1 work
— and memoizes the result on the merged stream objects (see
:mod:`repro.power.trace_manip`); :func:`activity_stats` returns the full
bundle for the estimator-fidelity experiments.  The two agree exactly:
``activity_stats(v, w).mean == stream_activity(v, w)``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.bitwidth import to_unsigned_array
from repro.utils.hamming import toggle_series


@dataclass(frozen=True)
class ActivityStats:
    """Switching-activity statistics of one signal stream.

    ``mean`` / ``std`` are per-transition toggle counts normalized by the
    bit width (so 0.5 means half the bits flip on an average transition);
    ``lag1`` is the autocorrelation of the toggle series (temporal
    correlation); ``transitions`` the number of vector-to-vector steps.
    """

    mean: float
    std: float
    lag1: float
    transitions: int
    width: int

    @property
    def toggles_per_transition(self) -> float:
        return self.mean * self.width


def stream_activity(values: np.ndarray, width: int) -> float:
    """Mean fraction of bits toggling between consecutive values."""
    if values.size < 2:
        return 0.0
    series = toggle_series(to_unsigned_array(values, width))
    # Same value as series.mean()/width: the toggle counts are small
    # integers, so the float64 sum is exact either way — this just skips
    # numpy's mean dispatch on the hot path.
    return float(series.sum()) / float(series.size) / float(width)


def activity_stats(values: np.ndarray, width: int) -> ActivityStats:
    """Full activity statistics of a value stream."""
    if values.size < 2:
        return ActivityStats(0.0, 0.0, 0.0, 0, width)
    series = toggle_series(to_unsigned_array(values, width)).astype(np.float64)
    mean = float(series.mean())
    std = float(series.std())
    lag1 = 0.0
    if series.size >= 3 and std > 0.0:
        a = series[:-1] - mean
        b = series[1:] - mean
        denom = float(np.sqrt((a * a).sum() * (b * b).sum()))
        if denom > 0.0:
            lag1 = float((a * b).sum()) / denom
    return ActivityStats(mean=mean / width, std=std / width, lag1=lag1,
                         transitions=int(series.size), width=width)


def spatial_correlation(a: np.ndarray, b: np.ndarray, width: int) -> float:
    """Correlation between the toggle series of two equal-length streams.

    Spatially correlated inputs (e.g. a value and its copy) toggle together,
    which lowers glitch power; the estimator folds this in as a correction
    factor.  Returns 0 for degenerate streams.
    """
    if a.size != b.size:
        raise ValueError(f"stream lengths differ: {a.size} != {b.size}")
    if a.size < 3:
        return 0.0
    series_a = toggle_series(to_unsigned_array(a, width)).astype(np.float64)
    series_b = toggle_series(to_unsigned_array(b, width)).astype(np.float64)
    std_a = series_a.std()
    std_b = series_b.std()
    if std_a == 0.0 or std_b == 0.0:
        return 0.0
    return float(np.corrcoef(series_a, series_b)[0, 1])
