"""Behavioral simulation, trace storage, and signal statistics."""

from repro.sim.traces import OccurrenceArray, TraceRecorder, TraceStore
from repro.sim.statistics import ActivityStats, activity_stats, stream_activity
from repro.sim.stimulus import random_stimulus

__all__ = [
    "OccurrenceArray",
    "TraceRecorder",
    "TraceStore",
    "ActivityStats",
    "activity_stats",
    "stream_activity",
    "random_stimulus",
]
