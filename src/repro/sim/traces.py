"""Trace storage: per-node occurrence streams from behavioral simulation.

A *trace* in the paper (Section 2.3) is the time-ordered sequence of
input/output vectors seen by an RT-level unit.  We store the primitive form
— one occurrence stream per CDFG node — from which any unit's trace can be
reconstructed by merging in STG execution order (trace manipulation).
Storage is numpy-backed so the statistics the power estimator needs are
vectorized.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ReproError


@dataclass
class OccurrenceArray:
    """Finalized occurrence stream of one node.

    ``ins[k][i]`` is the value on data port ``k`` at the node's ``i``-th
    execution; ``out[i]`` the result; ``pass_idx``/``step`` locate the
    execution in the stimulus (pass number, dynamic program order).
    """

    pass_idx: np.ndarray
    step: np.ndarray
    out: np.ndarray
    ins: tuple[np.ndarray, ...]

    def __len__(self) -> int:
        return int(self.out.shape[0])

    def pass_slice(self, pass_index: int) -> slice:
        """Index range of occurrences belonging to one pass."""
        lo = int(np.searchsorted(self.pass_idx, pass_index, side="left"))
        hi = int(np.searchsorted(self.pass_idx, pass_index, side="right"))
        return slice(lo, hi)


class TraceRecorder:
    """Append-only collector used by the interpreter; finalize() -> TraceStore."""

    def __init__(self, cdfg) -> None:
        self._cdfg = cdfg
        self._pass_idx: dict[int, list[int]] = {}
        self._step: dict[int, list[int]] = {}
        self._out: dict[int, list[int]] = {}
        self._ins: dict[int, list[tuple[int, ...]]] = {}
        self._outputs: dict[str, list[tuple[int, int]]] = {}
        self._loop_trips: dict[int, list[tuple[int, int]]] = {}

    def record(self, node_id: int, pass_idx: int, step: int,
               ins: tuple[int, ...], out: int) -> None:
        self._pass_idx.setdefault(node_id, []).append(pass_idx)
        self._step.setdefault(node_id, []).append(step)
        self._out.setdefault(node_id, []).append(out)
        self._ins.setdefault(node_id, []).append(ins)

    def record_output(self, name: str, pass_idx: int, value: int) -> None:
        self._outputs.setdefault(name, []).append((pass_idx, value))

    def record_loop_trip(self, region_id: int, pass_idx: int, iterations: int) -> None:
        self._loop_trips.setdefault(region_id, []).append((pass_idx, iterations))

    def finalize(self, n_passes: int) -> "TraceStore":
        occ: dict[int, OccurrenceArray] = {}
        for node_id, outs in self._out.items():
            ins_rows = self._ins[node_id]
            arity = len(ins_rows[0]) if ins_rows else 0
            ins_cols: tuple[np.ndarray, ...]
            if arity and ins_rows:
                matrix = np.array(ins_rows, dtype=np.int64)
                ins_cols = tuple(matrix[:, k] for k in range(arity))
            else:
                ins_cols = ()
            occ[node_id] = OccurrenceArray(
                pass_idx=np.array(self._pass_idx[node_id], dtype=np.int32),
                step=np.array(self._step[node_id], dtype=np.int32),
                out=np.array(outs, dtype=np.int64),
                ins=ins_cols,
            )
        outputs = {
            name: np.array([v for _, v in sorted(rows)], dtype=np.int64)
            for name, rows in self._outputs.items()
        }
        loop_trips = {
            region: np.array([n for _, n in sorted(rows)], dtype=np.int64)
            for region, rows in self._loop_trips.items()
        }
        return TraceStore(n_passes=n_passes, occurrences=occ, outputs=outputs,
                          loop_trips=loop_trips)


@dataclass
class TraceStore:
    """All occurrence streams of one behavioral simulation."""

    n_passes: int
    occurrences: dict[int, OccurrenceArray] = field(default_factory=dict)
    outputs: dict[str, np.ndarray] = field(default_factory=dict)
    loop_trips: dict[int, np.ndarray] = field(default_factory=dict)
    #: Final array contents after the last pass (element-typed values) —
    #: the reference image the conformance harness holds every other
    #: backend's memory traffic against.
    mem_final: dict[str, list[int]] = field(default_factory=dict)

    def occ(self, node_id: int) -> OccurrenceArray:
        try:
            return self.occurrences[node_id]
        except KeyError:
            raise ReproError(f"node {node_id} has no recorded occurrences") from None

    def count(self, node_id: int) -> int:
        array = self.occurrences.get(node_id)
        return 0 if array is None else len(array)

    def executed_nodes(self) -> list[int]:
        return sorted(self.occurrences)

    def branch_probability(self, cond_node: int) -> float:
        """Fraction of a condition node's evaluations that were true."""
        array = self.occurrences.get(cond_node)
        if array is None or len(array) == 0:
            return 0.0
        return float(np.count_nonzero(array.out)) / float(len(array))

    def mean_loop_trips(self, region_id: int) -> float:
        trips = self.loop_trips.get(region_id)
        if trips is None or trips.size == 0:
            return 0.0
        return float(trips.mean())

    def total_occurrences(self) -> int:
        return sum(len(a) for a in self.occurrences.values())
