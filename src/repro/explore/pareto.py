"""Pareto-front bookkeeping for multi-objective design-space exploration.

The IMPACT search minimizes one scalarized objective per run, but the
design space is genuinely three-dimensional: every synthesized variant
of a behavior occupies a point in (area, power, latency).  A
:class:`ParetoFront` accumulates such points and keeps only the
non-dominated subset — the trade-off curve Figure 13's laxity sweeps
sample one slice of.

Dominance and tie-breaking are exact and deterministic: comparisons use
raw float equality (no tolerance), duplicate objective vectors keep the
*first* point offered, and the reported ordering is by objective tuple
with insertion order as the final tie-break.  This is what makes a
sharded :func:`repro.explore.explore` run bit-identical to a sequential
one — the merged front depends only on the offer sequence, which the
driver fixes by job index.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class ParetoPoint:
    """One candidate design in objective space.

    ``area`` is the area model's estimate, ``power`` the Vdd-scaled power
    estimate in mW (in-cycle slack scaling only, so the value is
    independent of any laxity budget), and ``latency`` the empirical
    number of cycles per pass (ENC).  All three are minimized.

    ``meta`` carries provenance (job index, objective label, laxity,
    seed, design summary) and is excluded from dominance and equality —
    two points with identical objectives are duplicates regardless of
    which job produced them.
    """

    area: float
    power: float
    latency: float
    meta: dict = field(default_factory=dict, compare=False, hash=False)

    @property
    def objectives(self) -> tuple[float, float, float]:
        """The minimized (area, power, latency) tuple."""
        return (self.area, self.power, self.latency)

    def row(self) -> dict:
        """A flat report row: objectives first, then the metadata."""
        return {
            "area": self.area,
            "power_mw": self.power,
            "latency": self.latency,
            **self.meta,
        }


def dominates(p: ParetoPoint, q: ParetoPoint) -> bool:
    """True when ``p`` is no worse than ``q`` everywhere and better somewhere."""
    po, qo = p.objectives, q.objectives
    return all(a <= b for a, b in zip(po, qo)) and any(
        a < b for a, b in zip(po, qo))


class ParetoFront:
    """The non-dominated subset of every point offered so far.

    ``add`` is the archive-guided acceptance test: a point enters only if
    no current member dominates it (or duplicates its objective vector),
    and evicts every member it dominates.  Insertion order is remembered,
    so ties in the reported ordering break stably toward earlier offers.
    """

    def __init__(self, points: list[ParetoPoint] | None = None):
        self._entries: list[tuple[int, ParetoPoint]] = []
        self._offered = 0
        for point in points or []:
            self.add(point)

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self):
        return iter(self.points)

    @property
    def offered(self) -> int:
        """How many points were offered over the front's lifetime."""
        return self._offered

    @property
    def points(self) -> list[ParetoPoint]:
        """Members sorted by (area, power, latency), then insertion order."""
        return [p for _, p in sorted(
            self._entries, key=lambda e: (e[1].objectives, e[0]))]

    def add(self, point: ParetoPoint) -> bool:
        """Offer a point; returns True when it enters the front.

        Rejected when any member dominates it or shares its exact
        objective vector (the earlier offer wins).  On acceptance every
        member the new point dominates is evicted.
        """
        order = self._offered
        self._offered += 1
        for _, member in self._entries:
            if dominates(member, point) or member.objectives == point.objectives:
                return False
        self._entries = [(i, m) for i, m in self._entries
                         if not dominates(point, m)]
        self._entries.append((order, point))
        return True

    def merge(self, other: "ParetoFront") -> None:
        """Offer every member of ``other`` to this front, in its order."""
        for point in other.points:
            self.add(point)

    def rows(self) -> list[dict]:
        """Report rows for every member, in the front's stable order."""
        return [p.row() for p in self.points]

    def hypervolume(self, reference: tuple[float, float, float] | None = None
                    ) -> float:
        """Volume of objective space the front dominates, up to ``reference``.

        The standard quality indicator for a minimized front: the measure
        of the region dominated by at least one member and bounded above
        by the reference point.  Larger is better; an empty front has
        hypervolume 0.  ``reference`` defaults to 1.1x the per-axis
        maximum over the members (every member then contributes volume);
        members at or beyond the reference on any axis contribute
        nothing.
        """
        points = [p.objectives for p in self.points]
        if not points:
            return 0.0
        if reference is None:
            reference = tuple(1.1 * max(p[k] for p in points) if
                              max(p[k] for p in points) > 0 else 1.0
                              for k in range(3))
        points = [p for p in points
                  if all(p[k] < reference[k] for k in range(3))]
        return _hypervolume_3d(points, reference)


def _hypervolume_2d(points: list[tuple[float, float]],
                    ref: tuple[float, float]) -> float:
    """Dominated area of a minimized 2-D point set, by staircase sweep."""
    if not points:
        return 0.0
    area = 0.0
    best_y = ref[1]
    for x, y in sorted(points):
        if y < best_y:
            area += (ref[0] - x) * (best_y - y)
            best_y = y
    return area


def _hypervolume_3d(points: list[tuple[float, float, float]],
                    ref: tuple[float, float, float]) -> float:
    """Dominated volume of a minimized 3-D point set, by z-axis slicing.

    Between consecutive z-levels the dominated cross-section is constant:
    the 2-D hypervolume of every point at or below the slice floor.
    O(n^2 log n) — plenty for the tens-of-points fronts explore() builds.
    """
    if not points:
        return 0.0
    levels = sorted({p[2] for p in points} | {ref[2]})
    volume = 0.0
    for lo, hi in zip(levels, levels[1:]):
        slab = [(p[0], p[1]) for p in points if p[2] <= lo]
        volume += _hypervolume_2d(slab, (ref[0], ref[1])) * (hi - lo)
    return volume
