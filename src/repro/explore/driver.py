"""The multi-objective design-space exploration driver.

:func:`explore` turns the single-point IMPACT flow into a frontier
builder: it enumerates a deterministic grid of search *jobs* — the cross
product of laxity factors, objectives (area / power / weighted
scalarizations) and search seeds — runs each through a
:class:`~repro.core.engine.SynthesisEngine` with an archive observer
(every feasible design the search visits is offered to a per-job
:class:`~repro.explore.pareto.ParetoFront`, not just the winner), and
merges the per-job fronts into one global frontier.

Sharding: ``shards=N`` partitions the job grid round-robin across N
worker *processes*; each worker owns one engine, so the jobs of a shard
share its content-addressed pipeline caches the way a sequential run
would.  Because every job is independently deterministic (cached and
uncached evaluation are bit-identical by construction) and the merge
always happens in job-index order, **the frontier is bit-identical for
any shard count** — the determinism test in
``tests/test_explore_driver.py`` enforces 1 vs N equality.

:func:`verify_frontier` closes the loop: it re-derives the design behind
every frontier point (same job, same seed — the search replays exactly)
and runs it through the full differential-conformance oracle chain via
:meth:`SynthesisEngine.verify`.
"""

from __future__ import annotations

import dataclasses
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.benchmarks.registry import get_benchmark
from repro.core.engine import SynthesisEngine
from repro.core.search import SearchConfig, WeightedObjective
from repro.errors import ExperimentError
from repro.explore.pareto import ParetoFront, ParetoPoint
from repro.sched.engine import ScheduleOptions

#: The default objective grid: the paper's two modes plus a balanced
#: area/power scalarization that fills in the middle of the trade-off.
DEFAULT_OBJECTIVES = ("area", "power", (0.5, 0.5, 0.0))

#: The default laxity grid (a coarse slice of the Figure 13 x-axis).
DEFAULT_LAXITIES = (1.0, 2.0, 3.0)


@dataclass(frozen=True)
class ExploreJob:
    """One cell of the exploration grid: objective x laxity x seed."""

    index: int
    objective: object  # "area" | "power" | (w_area, w_power, w_latency)
    laxity: float
    seed: int

    @property
    def label(self) -> str:
        """The objective's report label ("area", "power", "weighted(...)")."""
        if isinstance(self.objective, str):
            return self.objective
        return WeightedObjective(*self.objective).label


@dataclass
class ExploreResult:
    """The merged frontier plus per-job accounting for one exploration.

    The grid (``objectives``/``laxities``/``seeds``), the ``search``
    config and the stimulus parameters are recorded so
    :func:`verify_frontier` can replay the exact searches that produced
    the frontier — callers never re-supply them (a mismatched re-supply
    would silently verify the wrong designs).  A 1-shard run
    additionally retains its engine and the frontier designs in-process
    (``_engine``/``_designs``), letting verification skip the replay
    entirely.
    """

    benchmark: str
    front: ParetoFront
    jobs: list[dict] = field(default_factory=list)
    shards: int = 1
    n_passes: int = 0
    stimulus_seed: int = 0
    wall_time_s: float = 0.0
    objectives: tuple = DEFAULT_OBJECTIVES
    laxities: tuple = DEFAULT_LAXITIES
    seeds: tuple = (0,)
    search: SearchConfig = field(default_factory=SearchConfig)
    #: Work-stealing accounting (``steal=N`` runs; zero otherwise).
    #: ``steal_log`` is (job index, worker id) in claim order — feed its
    #: completed subset back as ``steal_plan`` to replay the schedule.
    steal_workers: int = 0
    steal_log: list = field(default_factory=list)
    warm_hits: int = 0
    #: Frontier hypervolume after each job's merge, in job-index order —
    #: the search-quality-over-time curve the benchmark gate tracks.
    #: Identical for any shard/steal topology (the merge order is fixed).
    hv_trace: list = field(default_factory=list)
    #: In-process design retention (1-shard runs only): engine plus
    #: {(job index, offer order): DesignPoint} for the frontier points.
    _engine: object = field(default=None, repr=False, compare=False)
    _designs: dict = field(default=None, repr=False, compare=False)

    @property
    def evaluations(self) -> int:
        """Total candidate evaluations across every job's search."""
        return sum(j["evaluations"] for j in self.jobs)

    @property
    def offered(self) -> int:
        """Total archive offers (feasible designs visited) across jobs."""
        return sum(j["offered"] for j in self.jobs)

    def rows(self) -> list[dict]:
        """Frontier report rows in the front's stable order."""
        return self.front.rows()

    def summary(self) -> dict:
        """One JSON-serializable dict describing the exploration."""
        return {
            "benchmark": self.benchmark,
            "jobs": len(self.jobs),
            "shards": self.shards,
            "n_passes": self.n_passes,
            "stimulus_seed": self.stimulus_seed,
            "evaluations": self.evaluations,
            "offered": self.offered,
            "frontier_size": len(self.front),
            "hypervolume": self.front.hypervolume(),
            "hv_trace": list(self.hv_trace),
            "steal_workers": self.steal_workers,
            "warm_hits": self.warm_hits,
        }


def engine_for_benchmark(name: str, *, n_passes: int = 20, seed: int = 7,
                         caching: bool = True,
                         max_workers: int | None = None,
                         store_dir=None,
                         cache_entries: int | None = None) -> SynthesisEngine:
    """Build a ready-to-run engine for a registry benchmark.

    Parses the benchmark's source, draws ``n_passes`` stimulus passes with
    ``seed``, and configures the designer clock from the registry entry.
    This is the one construction path the CLI, the explorer, the job
    server and the examples share, so their engines are always
    comparable.

    ``store_dir`` attaches the persistent artifact store (``None``
    consults ``$REPRO_STORE_DIR``; see :func:`repro.store.attached_cache`)
    and ``cache_entries`` bounds the in-process memo tables (used by
    long-lived owners like the job-server workers).  Results are
    bit-identical with or without a store.
    """
    from repro.store import attached_cache

    bench = get_benchmark(name)
    return SynthesisEngine(
        bench.cdfg(), bench.stimulus(n_passes, seed=seed),
        options=ScheduleOptions(clock_ns=bench.clock_ns),
        cache=attached_cache(caching=caching, store_dir=store_dir,
                             max_entries=cache_entries),
        max_workers=max_workers)


def _resolve_mode(engine: SynthesisEngine, job: ExploreJob):
    """Turn a job's objective spec into an engine ``mode`` value."""
    if isinstance(job.objective, str):
        return job.objective
    return WeightedObjective.for_engine(engine, job.objective, job.laxity)


def _run_job(engine: SynthesisEngine, job: ExploreJob, search: SearchConfig,
             keep_designs: bool = False):
    """Run one grid cell; returns (local front, stats, designs-by-order).

    The observer offers every feasible visited design to a job-local
    :class:`ParetoFront`; the point's ``meta["order"]`` is its offer
    sequence number, which is what lets :func:`verify_frontier` re-run
    the same job and pick out the exact design behind a frontier point.
    """
    local = ParetoFront()
    designs: dict[int, object] = {}

    def observer(design, evaluation):
        order = local.offered
        summary = design.summary()
        point = ParetoPoint(
            area=evaluation.area,
            power=evaluation.power_scaled,
            latency=evaluation.enc,
            meta={
                "job": job.index,
                "objective": job.label,
                "laxity": job.laxity,
                "seed": job.seed,
                "order": order,
                "vdd": summary["vdd"],
                "fus": summary["fus"],
                "registers": summary["registers"],
                "mux2": summary["mux2"],
                "states": summary["states"],
            })
        if local.add(point) and keep_designs:
            designs[order] = design

    result = engine.run(
        mode=_resolve_mode(engine, job), laxity=job.laxity,
        search=dataclasses.replace(search, seed=job.seed),
        parallel_starts=False, observer=observer)
    stats = {
        "index": job.index,
        "objective": job.label,
        "laxity": job.laxity,
        "seed": job.seed,
        "evaluations": result.history.evaluations,
        "offered": local.offered,
        "kept": len(local),
        "best": result.design.summary(),
    }
    return local, stats, designs


def _run_shard(payload: dict) -> list[dict]:
    """Process-pool worker: run a shard's jobs on one shared engine."""
    engine = engine_for_benchmark(
        payload["benchmark"], n_passes=payload["n_passes"],
        seed=payload["stimulus_seed"], caching=payload["caching"],
        store_dir=payload.get("store_dir"))
    out = []
    for job in payload["jobs"]:
        local, stats, _ = _run_job(engine, job, payload["search"])
        out.append({
            "stats": stats,
            "points": [{"area": p.area, "power": p.power,
                        "latency": p.latency, "meta": dict(p.meta)}
                       for p in local.points],
        })
    return out


def make_jobs(objectives=DEFAULT_OBJECTIVES, laxities=DEFAULT_LAXITIES,
              seeds=(0,)) -> list[ExploreJob]:
    """Enumerate the exploration grid in its canonical (deterministic) order."""
    jobs = []
    for laxity in laxities:
        if laxity < 1.0:
            raise ExperimentError(f"laxity factor must be >= 1.0, got {laxity}")
        for objective in objectives:
            for seed in seeds:
                jobs.append(ExploreJob(len(jobs), objective, laxity, seed))
    return jobs


def explore(benchmark: str, *,
            objectives=DEFAULT_OBJECTIVES,
            laxities=DEFAULT_LAXITIES,
            seeds=(0,),
            shards: int = 1,
            steal: int = 0,
            steal_plan=None,
            fault_plan=None,
            n_passes: int = 20,
            stimulus_seed: int = 7,
            search: SearchConfig | None = None,
            caching: bool = True,
            store_dir=None,
            hv_reference: tuple[float, float, float] | None = None
            ) -> ExploreResult:
    """Explore a benchmark's design space and return its Pareto frontier.

    Parameters
    ----------
    benchmark:
        A registry name (see ``repro.BENCHMARKS``); workers re-parse it,
        which is what makes process sharding possible.
    objectives:
        Mix of ``"area"``, ``"power"`` and ``(w_area, w_power, w_latency)``
        weight triples (scalarized via
        :class:`~repro.core.search.WeightedObjective`).
    laxities, seeds:
        The ENC-budget grid and the search seeds; the job grid is their
        cross product with ``objectives``.
    shards:
        Worker processes.  ``1`` runs in-process; any value yields a
        bit-identical frontier (jobs are independent and the merge is in
        job order).
    steal:
        Work-stealing worker count (see :mod:`repro.explore.steal`).
        Nonzero replaces static sharding with a shared job queue: idle
        workers steal the next pending cell, completed cells checkpoint
        into the artifact store (when attached) and warm-start later
        runs.  The frontier stays bit-identical to ``shards=1`` for any
        worker count — the steal order is recorded on the result, not
        baked into it.
    steal_plan:
        A recorded steal log (``(job index, worker id)`` pairs covering
        every job) to replay: each job is pinned to its recorded
        worker's queue, reproducing the claim schedule exactly.
    fault_plan:
        A :class:`~repro.faults.plan.FaultPlan` injected into the pool;
        ``kill_worker@N`` kills the first claimant of job ``N`` (the
        retry and every other worker run clean).  Steal mode only.
    n_passes, stimulus_seed:
        Profiling stimulus (shared by every job).
    search:
        Base :class:`~repro.core.search.SearchConfig`; each job replaces
        only its ``seed``.
    store_dir:
        Artifact-store root shared by every shard (``None`` consults
        ``$REPRO_STORE_DIR``; pass ``""`` to force a plain in-process
        cache).  Workers publish and reuse schedules/replays through the
        store — concurrency-safe because publication is atomic and
        content-addressed — and the frontier stays bit-identical with or
        without it.

    Returns an :class:`ExploreResult` whose ``front`` holds the merged,
    non-dominated (area, power, latency) points with per-job provenance.
    """
    search = search or SearchConfig()
    jobs = make_jobs(objectives, laxities, seeds)
    shards = max(1, min(shards, len(jobs)))
    t0 = time.perf_counter()

    engine = None
    designs: dict[tuple[int, int], object] = {}
    steal_outcome = None
    if steal or steal_plan:
        from repro.explore.steal import run_stolen

        steal_outcome = run_stolen(
            {
                "benchmark": benchmark,
                "n_passes": n_passes,
                "stimulus_seed": stimulus_seed,
                "caching": caching,
                "store_dir": store_dir,
                "search": search,
            },
            jobs, workers=max(1, min(steal, len(jobs))) if steal else 1,
            steal_plan=steal_plan, fault_plan=fault_plan)
        shard_results = [[steal_outcome.results[index]
                          for index in sorted(steal_outcome.results)]]
    elif shards == 1:
        # In-process run: keep each job's archived designs so a later
        # verify_frontier call can skip re-running the searches.
        engine = engine_for_benchmark(benchmark, n_passes=n_passes,
                                      seed=stimulus_seed, caching=caching,
                                      store_dir=store_dir)
        shard_results = [[]]
        for job in jobs:
            local, stats, job_designs = _run_job(engine, job, search,
                                                 keep_designs=True)
            designs.update({(job.index, order): design
                            for order, design in job_designs.items()})
            shard_results[0].append({
                "stats": stats,
                "points": [{"area": p.area, "power": p.power,
                            "latency": p.latency, "meta": dict(p.meta)}
                           for p in local.points],
            })
    else:
        shard_payloads = [{
            "benchmark": benchmark,
            "n_passes": n_passes,
            "stimulus_seed": stimulus_seed,
            "caching": caching,
            "store_dir": store_dir,
            "search": search,
            "jobs": jobs[k::shards],
        } for k in range(shards)]
        with ProcessPoolExecutor(max_workers=shards) as pool:
            shard_results = list(pool.map(_run_shard, shard_payloads))

    # Re-assemble per-job results in grid order: the merge sequence (and
    # with it the frontier's stable tie-breaking) is then independent of
    # how jobs were sharded.
    by_index: dict[int, dict] = {}
    for shard in shard_results:
        for job_result in shard:
            by_index[job_result["stats"]["index"]] = job_result

    front = ParetoFront()
    job_stats = []
    hv_trace = []
    for index in sorted(by_index):
        job_result = by_index[index]
        job_stats.append(job_result["stats"])
        for rec in job_result["points"]:
            front.add(ParetoPoint(rec["area"], rec["power"], rec["latency"],
                                  meta=rec["meta"]))
        # hv_reference pins the trace to a caller-fixed reference point
        # (the benchmark gate's committed per-benchmark references);
        # None floats it at 1.1x the running front's per-axis maxima.
        hv_trace.append(front.hypervolume(hv_reference))

    if engine is not None:
        # Retain only the frontier's designs; evicted archive entries
        # would otherwise pin their architectures and streams.
        keep = {(p.meta["job"], p.meta["order"]) for p in front.points}
        designs = {key: designs[key] for key in keep}

    return ExploreResult(
        benchmark=benchmark, front=front, jobs=job_stats, shards=shards,
        n_passes=n_passes, stimulus_seed=stimulus_seed,
        wall_time_s=round(time.perf_counter() - t0, 3),
        objectives=tuple(objectives), laxities=tuple(laxities),
        seeds=tuple(seeds), search=search,
        steal_workers=steal_outcome.workers if steal_outcome else 0,
        steal_log=list(steal_outcome.log) if steal_outcome else [],
        warm_hits=steal_outcome.warm_hits if steal_outcome else 0,
        hv_trace=hv_trace,
        _engine=engine, _designs=designs if engine is not None else None)


def verify_frontier(result: ExploreResult, *,
                    use_iverilog: str = "auto") -> list:
    """Conformance-check the design behind every frontier point.

    The replay recipe (grid, search config, stimulus) is taken from the
    :class:`ExploreResult` itself, so the verified designs are exactly
    the ones the frontier reports.  A 1-shard result retained its
    designs in-process and verifies them directly; a sharded result
    re-runs only the grid cells that own frontier points (the search is
    deterministic, so the re-run visits the same designs in the same
    order) and picks each point's design out by its ``meta["order"]``.
    Either way every design goes through :meth:`SynthesisEngine.verify`
    — the differential oracle chain over interpreter / replay / gatesim
    / emitted-Verilog netsim.

    Returns one :class:`~repro.verify.conformance.ConformanceReport` per
    frontier point, in the front's stable order.  Raises
    :class:`~repro.errors.ExperimentError` if a frontier point cannot be
    re-derived (tampered provenance or result fields).
    """
    jobs = {job.index: job
            for job in make_jobs(result.objectives, result.laxities,
                                 result.seeds)}
    needed: dict[int, set[int]] = {}
    for point in result.front.points:
        job = jobs.get(point.meta["job"])
        # Integrity check: each point's provenance must match the job it
        # replays under, or the re-derived design would silently be the
        # wrong one (e.g. a hand-edited result with a reordered grid).
        if (job is None
                or job.label != point.meta["objective"]
                or job.laxity != point.meta["laxity"]
                or job.seed != point.meta["seed"]):
            raise ExperimentError(
                f"frontier point from job {point.meta['job']} "
                f"({point.meta['objective']}, laxity {point.meta['laxity']}, "
                f"seed {point.meta['seed']}) does not match the result's "
                f"recorded objectives/laxities/seeds grid")
        needed.setdefault(point.meta["job"], set()).add(point.meta["order"])

    engine = result._engine
    designs = result._designs
    if engine is None or designs is None or any(
            (index, order) not in designs
            for index, orders in needed.items() for order in orders):
        # Sharded (or stripped) result: re-derive by deterministic replay.
        engine = engine_for_benchmark(
            result.benchmark, n_passes=result.n_passes,
            seed=result.stimulus_seed)
        designs = {}
        for index in sorted(needed):
            _, _, job_designs = _run_job(engine, jobs[index], result.search,
                                         keep_designs=True)
            for order in needed[index]:
                if order not in job_designs:
                    raise ExperimentError(
                        f"job {index} re-run did not visit offer {order}; "
                        f"the result's recorded grid or stimulus no longer "
                        f"reproduces its frontier")
                designs[(index, order)] = job_designs[order]

    reports = []
    for point in result.front.points:
        design = designs[(point.meta["job"], point.meta["order"])]
        reports.append(engine.verify(
            design=design, use_iverilog=use_iverilog,
            name=f"{result.benchmark}.j{point.meta['job']}o{point.meta['order']}"))
    return reports
