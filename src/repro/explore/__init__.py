"""Multi-objective design-space exploration on top of the IMPACT flow.

``explore()`` spreads a grid of (objective x laxity x seed) synthesis
searches across processes — statically sharded (``shards=N``) or
work-stealing over a shared job queue (``steal=N``, with checkpointing
and warm-starts through the artifact store) — feeds every feasible
visited design into a Pareto archive, and merges the per-job archives
into one deterministic (area, power, latency) frontier;
``verify_frontier()`` conformance-checks the design behind every
frontier point.  See ``docs/cli.md`` for the ``python -m repro explore``
surface and ``docs/architecture.md`` for how the explorer sits on the
engine.
"""

from repro.explore.driver import (
    DEFAULT_LAXITIES,
    DEFAULT_OBJECTIVES,
    ExploreJob,
    ExploreResult,
    engine_for_benchmark,
    explore,
    make_jobs,
    verify_frontier,
)
from repro.explore.pareto import ParetoFront, ParetoPoint, dominates
from repro.explore.steal import StealOutcome, completed_log, job_checkpoint_key

__all__ = [
    "DEFAULT_LAXITIES",
    "DEFAULT_OBJECTIVES",
    "ExploreJob",
    "ExploreResult",
    "ParetoFront",
    "ParetoPoint",
    "StealOutcome",
    "completed_log",
    "dominates",
    "engine_for_benchmark",
    "explore",
    "job_checkpoint_key",
    "make_jobs",
    "verify_frontier",
]
