"""Multi-objective design-space exploration on top of the IMPACT flow.

``explore()`` shards a grid of (objective x laxity x seed) synthesis
searches across processes, feeds every feasible visited design into a
Pareto archive, and merges the per-job archives into one deterministic
(area, power, latency) frontier; ``verify_frontier()`` conformance-checks
the design behind every frontier point.  See ``docs/cli.md`` for the
``python -m repro explore`` surface and ``docs/architecture.md`` for how
the explorer sits on the engine.
"""

from repro.explore.driver import (
    DEFAULT_LAXITIES,
    DEFAULT_OBJECTIVES,
    ExploreJob,
    ExploreResult,
    engine_for_benchmark,
    explore,
    make_jobs,
    verify_frontier,
)
from repro.explore.pareto import ParetoFront, ParetoPoint, dominates

__all__ = [
    "DEFAULT_LAXITIES",
    "DEFAULT_OBJECTIVES",
    "ExploreJob",
    "ExploreResult",
    "ParetoFront",
    "ParetoPoint",
    "dominates",
    "engine_for_benchmark",
    "explore",
    "make_jobs",
    "verify_frontier",
]
