"""Work-stealing job pool for the exploration driver.

Static round-robin sharding (``explore(shards=N)``) pre-assigns grid
cells to workers; one slow cell (a deep search at high laxity) leaves
its siblings idle.  This module replaces the static split with a
**shared job queue**: N worker processes pull ("steal") the next pending
job the moment they go idle, so the wall clock tracks the sum of job
costs divided by N instead of the slowest pre-assigned shard.

Determinism is preserved by construction, not by scheduling: every job
is independently deterministic and the driver merges per-job fronts in
job-index order, so **the frontier is bit-identical to a 1-worker run
no matter who stole what, or when** — including runs where a worker was
killed mid-job and its job re-ran on a replacement.  The *steal log*
(which worker completed which job, in claim order) is recorded on the
result; replaying it through ``steal_plan`` pins each job to the same
worker's queue, which reproduces the log itself as well as the frontier.

Checkpointing: when an artifact store is attached, each completed job's
result is published under a content key covering the benchmark CDFG,
stimulus parameters, search config and the job's grid cell.  A later
run over any overlapping grid — same benchmark, a different shard/steal
topology, or a *different* benchmark whose registry entry compiles to
the same CDFG — warm-starts from the stored per-job results instead of
re-searching.  Warm hits are counted on the result but never change it:
stored results are the bytes the search would recompute.

Fault injection: a :class:`~repro.faults.plan.FaultPlan` rides along the
job messages.  ``kill_worker@N`` hard-kills the worker that first claims
job ``N`` (the fault is consumed at first enqueue, so the re-enqueued
attempt and any replacement worker run clean).  Other plan kinds are
service-core faults and are ignored here.
"""

from __future__ import annotations

import os
import queue as queue_mod
from dataclasses import dataclass, field

#: Poll interval for the supervision loop (liveness checks only; results
#: themselves arrive through a blocking queue get).
_POLL_S = 0.2


@dataclass
class StealOutcome:
    """What the pool hands back to the driver."""

    #: job index -> {"stats": ..., "points": ...} (the ``_run_shard`` shape).
    results: dict[int, dict] = field(default_factory=dict)
    #: (job index, worker id) in claim-arrival order, completed attempts
    #: marked by membership in ``results`` (killed attempts appear too).
    log: list[tuple[int, int]] = field(default_factory=list)
    #: Jobs served from the artifact store's explore checkpoints.
    warm_hits: int = 0
    #: Workers spawned over the run (replacements included).
    workers: int = 0


def job_checkpoint_key(cdfg_digest: str, job, search, n_passes: int,
                       stimulus_seed: int) -> str:
    """Content key for one grid cell's result (id-free, topology-free).

    Covers everything the job's outcome is a function of — the compiled
    benchmark (by content digest, so renamed registry entries that parse
    to the same CDFG share checkpoints), the stimulus draw, the search
    config and the cell's objective/laxity/seed.  Worker count, steal
    order and shard topology are deliberately absent.
    """
    from repro.store import digest_key

    return digest_key((
        "explore-job", cdfg_digest, n_passes, stimulus_seed,
        job.objective, job.laxity, job.seed, search,
    ))


def _flush_and_die(result_queue) -> None:
    """Simulate SIGKILL after flushing queued messages.

    ``os._exit`` skips every finally/atexit, like a real kill, but the
    queue's feeder thread must drain first or the claim message that
    *triggered* the kill could be lost and the parent would never learn
    the job was consumed.
    """
    result_queue.close()
    result_queue.join_thread()
    os._exit(1)


def _worker_main(worker_id: int, payload: dict, job_queue,
                 result_queue) -> None:
    """One pool worker: claim jobs until the ``None`` sentinel.

    The engine (and its caches) is built once and shared by every job
    this worker steals — the same locality a static shard enjoys.
    Checkpoint lookups go straight to the artifact store; the job runs
    only on a miss, and publishes its result for the next run.
    """
    from repro.explore.driver import _run_job, engine_for_benchmark
    from repro.store import cdfg_digest, open_store

    engine = None
    store = None
    digest = None
    while True:
        message = job_queue.get()
        if message is None:
            break
        index, faults = message
        result_queue.put(("claim", worker_id, index))
        if any(f["kind"] == "kill_worker" for f in faults):
            _flush_and_die(result_queue)
        if engine is None:
            engine = engine_for_benchmark(
                payload["benchmark"], n_passes=payload["n_passes"],
                seed=payload["stimulus_seed"], caching=payload["caching"],
                store_dir=payload["store_dir"])
            digest = cdfg_digest(engine.cdfg)
            store_root = payload["store_dir"]
            if store_root is None:
                from repro.store import STORE_DIR_ENV
                store_root = os.environ.get(STORE_DIR_ENV)
            if store_root:
                store = open_store(store_root)
        job = payload["jobs"][index]
        key = job_checkpoint_key(digest, job, payload["search"],
                                 payload["n_passes"],
                                 payload["stimulus_seed"])
        warm = False
        job_result = store.get("explore", key) if store is not None else None
        if job_result is not None:
            warm = True
        else:
            local, stats, _ = _run_job(engine, job, payload["search"])
            job_result = {
                "stats": stats,
                "points": [{"area": p.area, "power": p.power,
                            "latency": p.latency, "meta": dict(p.meta)}
                           for p in local.points],
            }
            if store is not None:
                store.put_json("explore", key, job_result)
        result_queue.put(("done", worker_id, index, job_result, warm))


def run_stolen(payload: dict, jobs, *, workers: int, steal_plan=None,
               fault_plan=None, mp_context=None) -> StealOutcome:
    """Run the grid through a work-stealing pool; returns all job results.

    ``payload`` is the engine recipe (benchmark / stimulus / caching /
    store_dir / search) shared by every worker; ``jobs`` the full grid.

    Scheduling: by default all jobs go into one shared queue in index
    order and ``workers`` processes race to claim them.  With
    ``steal_plan`` (a recorded ``StealOutcome.log``, completed attempts
    only) each job is enqueued to its recorded worker's private queue
    instead, replaying the claim assignment exactly.

    Supervision: a worker that dies mid-job (fault injection, OOM kill)
    is detected by liveness polling; its claimed-but-unfinished jobs are
    re-enqueued **clean** (worker faults are consumed at first enqueue)
    and a replacement worker is spawned on the same queue.  Duplicate
    completions — possible when a death makes the parent conservatively
    re-enqueue — are dropped on arrival; jobs are deterministic, so
    either copy carries the same bytes.
    """
    import multiprocessing as mp

    ctx = mp_context or mp.get_context()
    payload = dict(payload, jobs={job.index: job for job in jobs})
    result_queue = ctx.Queue()

    if steal_plan:
        plan = [(int(index), int(worker)) for index, worker in steal_plan]
        planned = {index for index, _ in plan}
        missing = [job.index for job in jobs if job.index not in planned]
        if missing:
            raise ValueError(
                f"steal plan does not cover jobs {missing}; replay one "
                f"recorded log entry per job")
        worker_ids = sorted({worker for _, worker in plan})
        queues = {worker: ctx.Queue() for worker in worker_ids}
    else:
        shared = ctx.Queue()
        worker_ids = list(range(max(1, workers)))
        queues = {worker: shared for worker in worker_ids}

    def spawn(worker_id: int):
        process = ctx.Process(target=_worker_main,
                              args=(worker_id, payload, queues[worker_id],
                                    result_queue),
                              daemon=True)
        process.start()
        return process

    outcome = StealOutcome()
    fire = {}  # job index -> [fault payloads], consumed at first enqueue
    if fault_plan is not None:
        for job in jobs:
            faults = [f for f in fault_plan.take_worker_faults(job.index)
                      if f["kind"] == "kill_worker"]
            if faults:
                fire[job.index] = faults

    def enqueue(index: int, worker_id: int) -> None:
        queues[worker_id].put((index, fire.pop(index, [])))

    if steal_plan:
        for index, worker in plan:
            enqueue(index, worker)
    else:
        for job in jobs:
            enqueue(job.index, worker_ids[0])  # shared queue: id moot

    processes = {worker: spawn(worker) for worker in worker_ids}
    outcome.workers = len(processes)
    pending = {job.index for job in jobs}
    claimed: dict[int, int] = {}  # job index -> last claiming worker

    def reap() -> None:
        """Re-enqueue the dead's unfinished claims; spawn replacements."""
        for worker, process in list(processes.items()):
            if process.is_alive():
                continue
            process.join()
            del processes[worker]
            replacement = max(list(processes) + [worker]) + 1
            queues[replacement] = queues[worker]
            orphans = [index for index, who in claimed.items()
                       if who == worker and index in pending]
            for index in orphans:
                claimed.pop(index, None)
                enqueue(index, replacement)
            processes[replacement] = spawn(replacement)
            outcome.workers += 1

    while pending:
        try:
            message = result_queue.get(timeout=_POLL_S)
        except queue_mod.Empty:
            reap()
            continue
        if message[0] == "claim":
            _, worker, index = message
            outcome.log.append((index, worker))
            claimed[index] = worker
        else:
            _, worker, index, job_result, warm = message
            if index not in pending:
                continue  # duplicate re-run after a conservative re-enqueue
            pending.discard(index)
            outcome.results[index] = job_result
            outcome.warm_hits += int(warm)

    for worker in processes:
        queues[worker].put(None)
    for process in processes.values():
        process.join(timeout=10)
        if process.is_alive():  # pragma: no cover - stuck worker
            process.terminate()
    return outcome


def completed_log(outcome: StealOutcome) -> list[tuple[int, int]]:
    """The replayable subset of a steal log: last claim per finished job.

    Killed attempts stay in ``outcome.log`` for forensics but cannot be
    replayed (replay runs clean); the surviving attempt can.
    """
    last: dict[int, int] = {}
    order: list[int] = []
    for index, worker in outcome.log:
        if index in outcome.results:
            if index not in last:
                order.append(index)
            last[index] = worker
    return [(index, last[index]) for index in order]
