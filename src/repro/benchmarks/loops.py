"""Loops — the paper's running example (Figure 1).

Reconstruction notes: Figure 1 shows one conditional and three loops; the
two rightmost loops are independent and execute concurrently when the
condition ``c`` is false.  The operation mix matches the figure (two
multiplies, adds/subtracts, three comparisons, one equality, one logical
AND); initial values ``h(8)``, ``m(0)``, ``z(0)`` and the 10/8 iteration
bounds are taken from the figure's annotations.
"""

from __future__ import annotations

import numpy as np

SOURCE = """
process loops(a: int8, b: int8, d: int8) -> (z: int16) {
  var z: int16 = 0;
  var c: bool = a && b;
  var e: int16 = 0;
  for (i = 0; i < 10; i++) {
    e = d * i;
    z = z + e;
  }
  if (c == 1) {
    z = 0;
  } else {
    var h: int8 = 8;
    var m: int16 = 0;
    for (i2 = 0; i2 < 10; i2++) {
      var g: int8 = i2 - h;
      h = g + 5;
    }
    for (j = 0; j < 8; j++) {
      var k: int16 = d * j;
      m = m + k;
    }
    z = h - m;
  }
}
"""


def stimulus(n_passes: int, seed: int = 0) -> list[dict[str, int]]:
    rng = np.random.default_rng(seed)
    passes = []
    for _ in range(n_passes):
        passes.append({
            "a": int(rng.integers(0, 4)),   # c true ~9/16 of the time
            "b": int(rng.integers(0, 4)),
            "d": int(rng.integers(-10, 11)),
        })
    return passes


def reference(a: int, b: int, d: int) -> dict[str, int]:
    def wrap8(v: int) -> int:
        v &= 0xFF
        return v - 256 if v >= 128 else v

    def wrap16(v: int) -> int:
        v &= 0xFFFF
        return v - 65536 if v >= 32768 else v

    z = 0
    for i in range(10):
        z = wrap16(z + wrap16(d * i))
    if a and b:
        z = 0
    else:
        h, m = 8, 0
        for i2 in range(10):
            g = wrap8(i2 - h)
            h = wrap8(g + 5)
        for j in range(8):
            m = wrap16(m + wrap16(d * j))
        z = wrap16(h - m)
    return {"z": z}
