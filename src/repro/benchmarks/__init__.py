"""The benchmark suite: the paper's six plus the synthetic corpus.

Six reconstructed behavioral descriptions (Section 4): the Loops example
of Figure 1, GCD [22], the X.25 send process [9], a Blackjack dealer
[10], Cordic [2] and Paulin [23].  Originals are unavailable; each
module documents its reconstruction and ships a seeded stimulus
generator plus a plain-Python reference model used in differential
tests.

Alongside them, the ``synth_N`` family: pinned-seed random CFI programs
from :mod:`repro.genprog.corpus`, whose reference model is the
generator's direct AST evaluator (see docs/fuzzing.md).
"""

from repro.benchmarks.registry import (
    BENCHMARKS,
    Benchmark,
    CLASSIC_BENCHMARKS,
    get_benchmark,
)

__all__ = ["BENCHMARKS", "Benchmark", "CLASSIC_BENCHMARKS", "get_benchmark"]
