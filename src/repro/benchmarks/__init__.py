"""The paper's benchmark suite, reconstructed.

Six behavioral descriptions (Section 4): the Loops example of Figure 1,
GCD [22], the X.25 send process [9], a Blackjack dealer [10], Cordic [2]
and Paulin [23].  Originals are unavailable; each module documents its
reconstruction and ships a seeded stimulus generator plus a plain-Python
reference model used in differential tests.
"""

from repro.benchmarks.registry import BENCHMARKS, Benchmark, get_benchmark

__all__ = ["BENCHMARKS", "Benchmark", "get_benchmark"]
