"""Dealer — a Blackjack dealer process [10].

Reconstruction notes: the published benchmark is the dealer's drawing rule:
draw cards while the hand total is below 17, count aces as 11 and demote
them to 1 on bust.  Cards come from a small LFSR seeded by the input (the
original drew from a bus; an in-process generator keeps the benchmark
self-contained while preserving the control structure: a while loop with a
cascade of conditionals, exactly the CFI shape the paper targets).
"""

from __future__ import annotations

import numpy as np

SOURCE = """
process dealer(seed: uint8) -> (total: int8, bust: bool) {
  var total: int8 = 0;
  var aces: int8 = 0;
  var deck: uint8 = seed;
  while (total < 17) {
    var card: int8 = deck & 15;
    if ((deck & 1) == 1) {
      deck = (deck >> 1) ^ 184;
    } else {
      deck = deck >> 1;
    }
    if (card > 10) {
      card = 10;
    }
    if (card < 1) {
      card = 1;
    }
    if (card == 1) {
      aces = aces + 1;
      total = total + 11;
    } else {
      total = total + card;
    }
    if ((total > 21) && (aces > 0)) {
      total = total - 10;
      aces = aces - 1;
    }
  }
  bust = total > 21;
}
"""


def stimulus(n_passes: int, seed: int = 0) -> list[dict[str, int]]:
    rng = np.random.default_rng(seed)
    return [{"seed": int(rng.integers(1, 256))} for _ in range(n_passes)]


def reference(seed: int) -> dict[str, int]:
    total = aces = 0
    deck = seed
    while total < 17:
        card = deck & 15
        if deck & 1:
            deck = ((deck >> 1) ^ 184) & 0xFF
        else:
            deck = deck >> 1
        if card > 10:
            card = 10
        if card < 1:
            card = 1
        if card == 1:
            aces += 1
            total += 11
        else:
            total += card
        if total > 21 and aces > 0:
            total -= 10
            aces -= 1
    return {"total": total, "bust": int(total > 21)}
