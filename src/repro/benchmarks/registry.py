"""Benchmark registry: name -> (source, stimulus, reference).

Two families live here: the paper's six reconstructed benchmarks
(Section 4) and the generated ``synth_N`` corpus from
:mod:`repro.genprog.corpus` — pinned-seed random CFI programs whose
reference model is the generator's AST evaluator.  Both are plain
:class:`Benchmark` entries, so every consumer (``get_benchmark``, the
CLI, the explorer, the conformance harness) treats them identically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.benchmarks import cordic, dealer, gcd, histogram, loops, paulin, x25_send
from repro.errors import ExperimentError


@dataclass(frozen=True)
class Benchmark:
    """One benchmark: behavioral source plus its stimulus and reference.

    ``clock_ns`` is the designer-chosen clock period (Section 2.2): tight
    relative to the benchmark's module delays, so resource sharing and slow
    modules genuinely cost cycles — the tension the laxity sweep explores.
    """

    name: str
    source: str
    stimulus: Callable[..., list[dict[str, int]]]
    reference: Callable[..., dict[str, int]]
    description: str
    clock_ns: float = 15.0

    def cdfg(self):
        from repro.lang import parse

        return parse(self.source)


BENCHMARKS: dict[str, Benchmark] = {
    "loops": Benchmark("loops", loops.SOURCE, loops.stimulus, loops.reference,
                       "Figure 1 running example: conditional + three loops",
                       clock_ns=15.0),
    "gcd": Benchmark("gcd", gcd.SOURCE, gcd.stimulus, gcd.reference,
                     "subtractive Euclid GCD [22]", clock_ns=6.0),
    "x25_send": Benchmark("x25_send", x25_send.SOURCE, x25_send.stimulus,
                          x25_send.reference,
                          "X.25 windowed send process [9]", clock_ns=8.0),
    "dealer": Benchmark("dealer", dealer.SOURCE, dealer.stimulus, dealer.reference,
                        "Blackjack dealer draw-to-17 [10]", clock_ns=6.0),
    "cordic": Benchmark("cordic", cordic.SOURCE, cordic.stimulus, cordic.reference,
                        "12-iteration Cordic rotation [2]", clock_ns=8.0),
    "paulin": Benchmark("paulin", paulin.SOURCE, paulin.stimulus, paulin.reference,
                        "Paulin differential-equation solver [23] (data-dominated)",
                        clock_ns=15.0),
    "histogram": Benchmark("histogram", histogram.SOURCE, histogram.stimulus,
                           histogram.reference,
                           "8-bin histogram over an LCG stream (memory-bound)",
                           clock_ns=12.0),
}


#: The paper's reconstructed suite — histogram (ours, memory-bound) and
#: the synthetic corpus are deliberately not part of it.
CLASSIC_BENCHMARKS = ("loops", "gcd", "x25_send", "dealer", "cordic", "paulin")


def _register_synthetic() -> None:
    # Imported late: corpus needs the Benchmark class defined above.
    from repro.genprog.corpus import synthetic_benchmarks

    BENCHMARKS.update(synthetic_benchmarks())


_register_synthetic()


def get_benchmark(name: str) -> Benchmark:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise ExperimentError(
            f"unknown benchmark {name!r}; available: {sorted(BENCHMARKS)}") from None
