"""Histogram — the memory-bound benchmark of the suite.

Sixteen pseudo-random samples (an in-process LCG over ``int8``) are
binned into an 8-entry on-chip RAM, then a reduction pass finds the
peak bin and the total count.  Every phase hits the array: a zero-fill
loop (arrays power on at zero but persist across passes, so per-pass
purity requires the explicit clear), a read-modify-write accumulation
whose address wraps to the array's power-of-two size, and a read-only
scan.  This is the registry's coverage of Section 2.1's behavioral
arrays: RAM port binding, load/store serialization and the memory
power term all show up in its design space.
"""

from __future__ import annotations

import numpy as np

from repro.utils.bitwidth import wrap_to_width

SOURCE = """
process histogram(seed: int8, w: int5) -> (peak: int14, total: int14) {
  var bins: int10[8];
  var i: int5 = 0;
  while (i < 8) {
    bins[i] = 0;
    i = i + 1;
  }
  var x: int8 = seed;
  var j: int6 = 0;
  while (j < 16) {
    bins[x] = bins[x] + w;
    x = x * 5 + 3;
    j = j + 1;
  }
  var peak0: int10 = 0;
  var sum0: int14 = 0;
  i = 0;
  while (i < 8) {
    var v: int10 = bins[i];
    if (v > peak0) {
      peak0 = v;
    }
    sum0 = sum0 + v;
    i = i + 1;
  }
  peak = peak0;
  total = sum0;
}
"""


def stimulus(n_passes: int, seed: int = 0) -> list[dict[str, int]]:
    rng = np.random.default_rng(seed)
    return [{"seed": int(rng.integers(-128, 128)),
             "w": int(rng.integers(1, 16))}
            for _ in range(n_passes)]


def reference(seed: int, w: int) -> dict[str, int]:
    bins = [0] * 8
    x = seed
    for _ in range(16):
        bins[x & 7] += w  # addresses wrap to the power-of-two size
        x = wrap_to_width(x * 5 + 3, 8)
    return {"peak": max(bins), "total": sum(bins)}
