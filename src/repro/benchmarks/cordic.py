"""Cordic — the coordinate-rotation algorithm [2].

Reconstruction notes: 12 rotation-mode iterations with sign-steered
add/subtract pairs and iteration-indexed arithmetic shifts.  The arc-tangent
table is approximated by ``angle0 >> i`` (our language has no memories;
the control/datapath structure — a counted loop whose body branches on the
sign of the residual angle — is what the benchmark exercises).  Mostly
data-flow with a single conditional: the paper classifies it between the
CFI suite and the data-dominated Paulin.
"""

from __future__ import annotations

import numpy as np

SOURCE = """
process cordic(x0: int16, y0: int16, z0: int16) -> (xr: int16, yr: int16) {
  var x: int16 = x0;
  var y: int16 = y0;
  var z: int16 = z0;
  var angle: int16 = 11520;
  for (i = 0; i < 12; i++) {
    var dx: int16 = y >> i;
    var dy: int16 = x >> i;
    if (z > 0) {
      x = x - dx;
      y = y + dy;
      z = z - angle;
    } else {
      x = x + dx;
      y = y - dy;
      z = z + angle;
    }
    angle = angle >> 1;
  }
  xr = x;
  yr = y;
}
"""


def stimulus(n_passes: int, seed: int = 0) -> list[dict[str, int]]:
    rng = np.random.default_rng(seed)
    passes = []
    for _ in range(n_passes):
        passes.append({
            "x0": int(rng.integers(-1000, 1001)),
            "y0": int(rng.integers(-1000, 1001)),
            "z0": int(rng.integers(-8000, 8001)),
        })
    return passes


def reference(x0: int, y0: int, z0: int) -> dict[str, int]:
    def wrap16(v: int) -> int:
        v &= 0xFFFF
        return v - 65536 if v >= 32768 else v

    x, y, z = x0, y0, z0
    angle = 11520
    for i in range(12):
        dx = y >> i
        dy = x >> i
        if z > 0:
            x = wrap16(x - dx)
            y = wrap16(y + dy)
            z = wrap16(z - angle)
        else:
            x = wrap16(x + dx)
            y = wrap16(y - dy)
            z = wrap16(z + angle)
        angle = angle >> 1
    return {"xr": x, "yr": y}
