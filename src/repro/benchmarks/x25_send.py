"""Send — the send process of the X.25 communications protocol [9].

Reconstruction notes: the published description is a windowed frame
transmitter — a loop that sends frames while the window is open, folds the
payload into a checksum, and on a missing acknowledgment performs a
go-back-N retransmission.  We model acknowledgments as an input bitmap
(bit ``va`` decides whether frame ``va`` is acknowledged on first attempt);
a retransmitted frame is always acknowledged, so every pass terminates.
The structure exercises what the paper cares about: a data loop nested in
protocol conditionals with modular sequence-number arithmetic.
"""

from __future__ import annotations

import numpy as np

SOURCE = """
process x25_send(nframes: int8, wsize: int8, acks: uint16, data0: int8)
    -> (sent: int16, chk: int16) {
  var vs: int8 = 0;
  var va: int8 = 0;
  var sent: int16 = 0;
  var chk: int16 = 0;
  var data: int8 = data0;
  var ack: uint16 = acks;
  var one: uint16 = 1;
  while (va < nframes) {
    var open: bool = (vs < nframes) && ((vs - va) < wsize);
    if (open == 1) {
      chk = chk + ((data & 255) ^ (vs & 7));
      data = data + 7;
      sent = sent + 1;
      vs = vs + 1;
    } else {
      var ackbit: uint16 = (ack >> va) & 1;
      if (ackbit == 1) {
        va = va + 1;
      } else {
        vs = va;
        ack = ack | (one << va);
      }
    }
  }
}
"""


def stimulus(n_passes: int, seed: int = 0) -> list[dict[str, int]]:
    rng = np.random.default_rng(seed)
    passes = []
    for _ in range(n_passes):
        passes.append({
            "nframes": int(rng.integers(1, 13)),
            "wsize": int(rng.integers(1, 8)),
            "acks": int(rng.integers(0, 1 << 16)),
            "data0": int(rng.integers(-40, 41)),
        })
    return passes


def reference(nframes: int, wsize: int, acks: int, data0: int) -> dict[str, int]:
    def wrap8(v: int) -> int:
        v &= 0xFF
        return v - 256 if v >= 128 else v

    def wrap16(v: int) -> int:
        v &= 0xFFFF
        return v - 65536 if v >= 32768 else v

    vs = va = sent = chk = 0
    data = data0
    while va < nframes:
        if vs < nframes and (vs - va) < wsize:
            chk = wrap16(chk + ((data & 0xFF) ^ (vs & 7)))
            data = wrap8(data + 7)
            sent = wrap16(sent + 1)
            vs = wrap8(vs + 1)
        else:
            if (acks >> va) & 1:
                va = wrap8(va + 1)
            else:
                vs = va
                acks = (acks | (1 << va)) & 0xFFFF
    return {"sent": sent, "chk": chk}
