"""GCD — from the 1995 high-level synthesis design repository [22].

The classic subtractive Euclid: a while loop with a nested conditional,
the canonical control-flow-intensive micro-benchmark.
"""

from __future__ import annotations

import math

import numpy as np

SOURCE = """
process gcd(a: int8, b: int8) -> (g: int8) {
  var x: int8 = a;
  var y: int8 = b;
  while (x != y) {
    if (x > y) {
      x = x - y;
    } else {
      y = y - x;
    }
  }
  g = x;
}
"""


def stimulus(n_passes: int, seed: int = 0) -> list[dict[str, int]]:
    rng = np.random.default_rng(seed)
    return [{"a": int(rng.integers(1, 64)), "b": int(rng.integers(1, 64))}
            for _ in range(n_passes)]


def reference(a: int, b: int) -> dict[str, int]:
    return {"g": math.gcd(a, b)}
