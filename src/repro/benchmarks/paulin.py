"""Paulin — the differential-equation solver of [23] (HAL / diffeq).

The canonical *data-dominated* benchmark: the paper includes it to show
IMPACT handles data-flow designs too.  One while loop integrates
``y'' + 3xy' + 3y = 0`` with fixed-point scaling (the ``>> 7`` rescales are
constant shifts, i.e. free wiring).  Operation mix per iteration: six
multiplies, two adds, two subtracts, one comparison — matching [23].
"""

from __future__ import annotations

import numpy as np

SOURCE = """
process paulin(x0: int16, y0: int16, u0: int16, dx: int8, a: int16) -> (yr: int16) {
  var x: int16 = x0;
  var y: int16 = y0;
  var u: int16 = u0;
  while (x < a) {
    var t1: int16 = (u * dx) >> 7;
    var t2: int16 = (3 * x) >> 2;
    var t3: int16 = (t2 * t1) >> 7;
    var t4: int16 = (3 * y) >> 2;
    var t5: int16 = (t4 * dx) >> 7;
    var u1: int16 = u - t3 - t5;
    var y1: int16 = y + t1;
    x = x + dx;
    u = u1;
    y = y1;
  }
  yr = y;
}
"""


def stimulus(n_passes: int, seed: int = 0) -> list[dict[str, int]]:
    rng = np.random.default_rng(seed)
    passes = []
    for _ in range(n_passes):
        x0 = int(rng.integers(0, 40))
        passes.append({
            "x0": x0,
            "y0": int(rng.integers(-500, 501)),
            "u0": int(rng.integers(-500, 501)),
            "dx": int(rng.integers(4, 17)),
            "a": x0 + int(rng.integers(20, 120)),
        })
    return passes


def reference(x0: int, y0: int, u0: int, dx: int, a: int) -> dict[str, int]:
    def wrap16(v: int) -> int:
        v &= 0xFFFF
        return v - 65536 if v >= 32768 else v

    x, y, u = x0, y0, u0
    while x < a:
        # Products/sums are wide enough not to wrap before the assignment
        # (24/32-bit intermediate widths); only assignments truncate.
        t1 = wrap16((u * dx) >> 7)
        t2 = wrap16((3 * x) >> 2)
        t3 = wrap16((t2 * t1) >> 7)
        t4 = wrap16((3 * y) >> 2)
        t5 = wrap16((t4 * dx) >> 7)
        u1 = wrap16(u - t3 - t5)
        y1 = wrap16(y + t1)
        x = wrap16(x + dx)
        u = u1
        y = y1
    return {"yr": y}
