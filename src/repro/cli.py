"""The ``python -m repro`` command-line interface.

Four subcommands cover the production entry points (documented in
``docs/cli.md``):

* ``repro synth``   — one IMPACT synthesis run, summary + report files;
* ``repro explore`` — the multi-objective Pareto-frontier explorer
  (sharded across processes, frontier verified by default);
* ``repro verify``  — the differential-conformance oracle chain;
* ``repro bench``   — a Figure 13 laxity sweep with report emission.

Every report lands under ``--results-dir`` (default ``results/``) as
JSON + CSV + markdown via :func:`repro.experiments.report.write_report`.
The functions here are importable — ``examples/`` and the docs route
through them so the documented surface stays the executed one.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.benchmarks.registry import BENCHMARKS, get_benchmark
from repro.core.search import SearchConfig
from repro.errors import ReproError
from repro.experiments.report import format_table, write_report
from repro.explore.driver import DEFAULT_LAXITIES, DEFAULT_OBJECTIVES

DEFAULT_RESULTS_DIR = pathlib.Path("results")


def _parse_floats(text: str) -> tuple[float, ...]:
    return tuple(float(x) for x in text.split(",") if x.strip())


def _parse_weights(text: str) -> tuple[float, float, float]:
    """Parse ``--weights``: exactly a WA,WP,WL triple."""
    weights = _parse_floats(text)
    if len(weights) != 3:
        raise argparse.ArgumentTypeError(
            f"--weights takes exactly three comma-separated values "
            f"(w_area,w_power,w_latency), got {text!r}")
    return weights


def _parse_objectives(text: str) -> tuple:
    """Parse ``--objectives``: "area,power,0.5:0.5:0" -> mixed spec tuple."""
    specs: list = []
    for item in (x.strip() for x in text.split(",") if x.strip()):
        if item in ("area", "power"):
            specs.append(item)
            continue
        weights = tuple(float(w) for w in item.split(":"))
        if len(weights) != 3:
            raise argparse.ArgumentTypeError(
                f"objective {item!r} is neither area/power nor a "
                f"w_area:w_power:w_latency triple")
        specs.append(weights)
    if not specs:
        raise argparse.ArgumentTypeError("no objectives given")
    return tuple(specs)


def _search_from_args(args) -> SearchConfig:
    return SearchConfig(max_depth=args.depth, max_candidates=args.candidates,
                        max_iterations=args.iterations, seed=args.seed)


def _add_common(parser: argparse.ArgumentParser, *, passes: int) -> None:
    parser.add_argument("-b", "--benchmark", required=True,
                        choices=sorted(BENCHMARKS),
                        help="registry benchmark to run on")
    parser.add_argument("--passes", type=int, default=passes,
                        help="profiling stimulus passes (default %(default)s)")
    parser.add_argument("--stimulus-seed", type=int, default=7,
                        help="stimulus RNG seed (default %(default)s)")
    parser.add_argument("--results-dir", type=pathlib.Path,
                        default=DEFAULT_RESULTS_DIR,
                        help="report output directory (default %(default)s)")


def _add_search(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0,
                        help="search RNG seed (default %(default)s)")
    parser.add_argument("--depth", type=int, default=5,
                        help="max move-sequence depth (default %(default)s)")
    parser.add_argument("--candidates", type=int, default=12,
                        help="candidate moves sampled per depth "
                             "(default %(default)s)")
    parser.add_argument("--iterations", type=int, default=6,
                        help="max search iterations (default %(default)s)")


# -- synth ----------------------------------------------------------------------------


def cmd_synth(args) -> int:
    """One IMPACT flow: synthesize, summarize, optionally verify."""
    from repro.explore import engine_for_benchmark

    from repro.core.search import WeightedObjective

    engine = engine_for_benchmark(args.benchmark, n_passes=args.passes,
                                  seed=args.stimulus_seed)
    mode = args.mode
    if args.weights is not None:
        mode = WeightedObjective.for_engine(engine, args.weights, args.laxity)
    result = engine.run(mode=mode, laxity=args.laxity,
                        search=_search_from_args(args))
    summary = result.summary()
    print(format_table([summary], title=f"repro synth {args.benchmark}"))

    verified = None
    if args.verify:
        report = engine.verify(design=result.design)
        verified = report.ok
        print(f"conformance: {'OK' if report.ok else 'DIVERGED'} "
              f"({len(engine.stimulus)} passes)")

    written = write_report(
        [summary], args.results_dir / f"synth_{args.benchmark}",
        title=f"repro synth {args.benchmark}",
        extra={"benchmark": args.benchmark, "laxity": args.laxity,
               "enc_min": result.enc_min, "enc_budget": result.enc_budget,
               "verified": verified})
    print("reports: " + ", ".join(str(p) for p in written.values()))
    return 0 if verified is not False else 1


# -- explore --------------------------------------------------------------------------


def cmd_explore(args) -> int:
    """Sharded Pareto-frontier exploration plus frontier verification."""
    from repro.explore import explore, verify_frontier

    result = explore(
        args.benchmark, objectives=args.objectives, laxities=args.laxities,
        seeds=(args.seed,), shards=args.shards, n_passes=args.passes,
        stimulus_seed=args.stimulus_seed, search=_search_from_args(args))
    summary = result.summary()
    rows = result.rows()
    print(format_table(rows, title=(
        f"repro explore {args.benchmark}: {len(rows)}-point Pareto frontier "
        f"(area, power, latency)")))
    print(f"\n{summary['jobs']} jobs on {summary['shards']} shard(s), "
          f"{summary['evaluations']} evaluations, {summary['offered']} "
          f"archive offers, hypervolume {summary['hypervolume']:.4g}, "
          f"{result.wall_time_s:.2f}s")

    verified = None
    if args.verify:
        reports = verify_frontier(result, use_iverilog=args.iverilog)
        verified = [r.ok for r in reports]
        print(f"conformance: {sum(verified)}/{len(verified)} frontier "
              f"points agree across every execution model")

    written = write_report(
        rows, args.results_dir / f"explore_{args.benchmark}",
        title=f"repro explore {args.benchmark}",
        extra={"summary": summary, "jobs": result.jobs,
               "verified": verified})
    print("reports: " + ", ".join(str(p) for p in written.values()))
    if verified is not None and not all(verified):
        return 1
    return 0


# -- verify ---------------------------------------------------------------------------


def cmd_verify(args) -> int:
    """Differential conformance over one or every registry benchmark."""
    from repro.verify.conformance import verify_benchmark

    names = sorted(BENCHMARKS) if args.all else [args.benchmark]
    if names == [None]:
        print("repro verify: pass -b <benchmark> or --all", file=sys.stderr)
        return 2
    rows = []
    ok = True
    for name in names:
        report = verify_benchmark(name, n_passes=args.passes,
                                  seed=args.stimulus_seed,
                                  use_iverilog=args.iverilog)
        rows.append(report.summary())
        ok = ok and report.ok
    print(format_table(rows, title=f"repro verify ({args.passes} passes)"))
    written = write_report(
        rows, args.results_dir / "verify_cli",
        title=f"repro verify ({args.passes} passes)",
        extra={"ok": ok, "passes": args.passes})
    print("reports: " + ", ".join(str(p) for p in written.values()))
    return 0 if ok else 1


# -- bench ----------------------------------------------------------------------------


def cmd_bench(args) -> int:
    """One Figure 13 laxity sweep with table + report emission."""
    from repro.experiments.laxity import run_laxity_sweep
    from repro.experiments.report import format_sweep

    laxities = args.laxities or tuple(
        round(1.0 + 2.0 * i / max(args.points - 1, 1), 2)
        for i in range(args.points))
    sweep = run_laxity_sweep(args.benchmark, laxities=laxities,
                             n_passes=args.passes, seed=args.stimulus_seed,
                             search=_search_from_args(args))
    print(format_sweep(sweep))
    written = write_report(
        [p.row() for p in sweep.points],
        args.results_dir / f"bench_{args.benchmark}",
        title=f"repro bench {args.benchmark} (Figure 13 sweep)",
        extra={"benchmark": args.benchmark,
               "evaluations": sweep.evaluations,
               "max_power_reduction_vs_base":
                   sweep.max_power_reduction_vs_base(),
               "max_power_reduction_vs_a": sweep.max_power_reduction_vs_a(),
               "max_area_overhead": sweep.max_area_overhead(),
               "mismatches": sweep.total_mismatches()})
    print("reports: " + ", ".join(str(p) for p in written.values()))
    return 0 if sweep.total_mismatches() == 0 else 1


# -- list -----------------------------------------------------------------------------


def cmd_list(args) -> int:
    """Print the benchmark registry."""
    rows = [{"name": b.name, "clock_ns": b.clock_ns,
             "description": b.description}
            for b in (get_benchmark(n) for n in sorted(BENCHMARKS))]
    print(format_table(rows, title="benchmark registry"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (also used by doc checks)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IMPACT low-power HLS: synthesis, design-space "
                    "exploration, verification and benchmarking.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth", help="run one IMPACT synthesis flow")
    _add_common(p, passes=40)
    _add_search(p)
    p.add_argument("--mode", choices=("power", "area"), default="power",
                   help="optimization objective (default %(default)s)")
    p.add_argument("--weights", type=_parse_weights, default=None,
                   metavar="WA,WP,WL",
                   help="scalarized objective weights (overrides --mode)")
    p.add_argument("--laxity", type=float, default=2.0,
                   help="ENC budget over the minimum (default %(default)s)")
    p.add_argument("--verify", action="store_true",
                   help="conformance-check the synthesized design")
    p.set_defaults(fn=cmd_synth)

    p = sub.add_parser("explore",
                       help="multi-objective Pareto-frontier exploration")
    _add_common(p, passes=20)
    _add_search(p)
    p.add_argument("--shards", type=int, default=1,
                   help="worker processes; the frontier is bit-identical "
                        "for any value (default %(default)s)")
    p.add_argument("--laxities", type=_parse_floats, default=DEFAULT_LAXITIES,
                   metavar="L1,L2,...",
                   help="laxity grid (default %(default)s)")
    p.add_argument("--objectives", type=_parse_objectives,
                   default=DEFAULT_OBJECTIVES,
                   metavar="SPEC,...",
                   help='comma list of "area", "power" or WA:WP:WL weight '
                        'triples (default %(default)s)')
    p.add_argument("--no-verify", dest="verify", action="store_false",
                   help="skip conformance-checking the frontier")
    p.add_argument("--iverilog", choices=("auto", "off", "require"),
                   default="auto", help="external cosim oracle policy")
    p.set_defaults(fn=cmd_explore, verify=True)

    p = sub.add_parser("verify", help="differential conformance oracle chain")
    p.add_argument("-b", "--benchmark", choices=sorted(BENCHMARKS),
                   default=None)
    p.add_argument("--all", action="store_true",
                   help="verify every registry benchmark")
    p.add_argument("--passes", type=int, default=100)
    p.add_argument("--stimulus-seed", type=int, default=0)
    p.add_argument("--iverilog", choices=("auto", "off", "require"),
                   default="auto")
    p.add_argument("--results-dir", type=pathlib.Path,
                   default=DEFAULT_RESULTS_DIR)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("bench", help="Figure 13 laxity sweep + reports")
    _add_common(p, passes=15)
    _add_search(p)
    p.add_argument("--points", type=int, default=5,
                   help="laxity grid size over [1, 3] (default %(default)s)")
    p.add_argument("--laxities", type=_parse_floats, default=None,
                   metavar="L1,L2,...", help="explicit laxity grid")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser("list", help="list the benchmark registry")
    p.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
