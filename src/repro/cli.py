"""The ``python -m repro`` command-line interface.

Six subcommands cover the production entry points (documented in
``docs/cli.md``):

* ``repro synth``   — one IMPACT synthesis run, summary + report files;
* ``repro explore`` — the multi-objective Pareto-frontier explorer
  (sharded across processes, frontier verified by default);
* ``repro verify``  — the differential-conformance oracle chain;
* ``repro bench``   — a Figure 13 laxity sweep with report emission;
* ``repro fuzz``    — random-program fuzzing through the full synthesize
  + conformance chain (see docs/fuzzing.md), with shrunk reproducers;
* ``repro serve``   — the async synthesis job server over the persistent
  artifact store (see docs/service.md).

Run-producing subcommands take ``--store DIR`` to attach the persistent
content-addressed artifact store (default: ``$REPRO_STORE_DIR`` when
set), so repeated runs replay schedules and replay results from disk.

Every report lands under ``--results-dir`` (default ``results/``) as
JSON + CSV + markdown via :func:`repro.experiments.report.write_report`.
The functions here are importable — ``examples/`` and the docs route
through them so the documented surface stays the executed one.
"""

from __future__ import annotations

import argparse
import pathlib
import sys

from repro.benchmarks.registry import BENCHMARKS, get_benchmark
from repro.core.search import SearchConfig
from repro.errors import ReproError
from repro.experiments.report import format_table, write_report
from repro.explore.driver import DEFAULT_LAXITIES, DEFAULT_OBJECTIVES

DEFAULT_RESULTS_DIR = pathlib.Path("results")


def _parse_floats(text: str) -> tuple[float, ...]:
    return tuple(float(x) for x in text.split(",") if x.strip())


def _parse_weights(text: str) -> tuple[float, float, float]:
    """Parse ``--weights``: exactly a WA,WP,WL triple."""
    weights = _parse_floats(text)
    if len(weights) != 3:
        raise argparse.ArgumentTypeError(
            f"--weights takes exactly three comma-separated values "
            f"(w_area,w_power,w_latency), got {text!r}")
    return weights


def _parse_objectives(text: str) -> tuple:
    """Parse ``--objectives``: "area,power,0.5:0.5:0" -> mixed spec tuple."""
    specs: list = []
    for item in (x.strip() for x in text.split(",") if x.strip()):
        if item in ("area", "power"):
            specs.append(item)
            continue
        weights = tuple(float(w) for w in item.split(":"))
        if len(weights) != 3:
            raise argparse.ArgumentTypeError(
                f"objective {item!r} is neither area/power nor a "
                f"w_area:w_power:w_latency triple")
        specs.append(weights)
    if not specs:
        raise argparse.ArgumentTypeError("no objectives given")
    return tuple(specs)


def _positive_int(text: str) -> int:
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not an integer: {text!r}")
    if value <= 0:
        raise argparse.ArgumentTypeError(f"must be positive, got {value}")
    return value


def _parse_laxities(text: str) -> tuple[float, ...]:
    """Parse ``--laxities`` for fuzz: comma floats, each >= 1.0."""
    laxities = _parse_floats(text)
    if not laxities:
        raise argparse.ArgumentTypeError("no laxities given")
    for laxity in laxities:
        if laxity < 1.0:
            raise argparse.ArgumentTypeError(
                f"laxity factors must be >= 1.0, got {laxity:g}")
    return laxities


def _unit_float(text: str) -> float:
    try:
        value = float(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"not a number: {text!r}")
    if not 0.0 <= value <= 1.0:
        raise argparse.ArgumentTypeError(f"must be in [0, 1], got {value:g}")
    return value


def _search_from_args(args) -> SearchConfig:
    return SearchConfig(max_depth=args.depth, max_candidates=args.candidates,
                        max_iterations=args.iterations, seed=args.seed)


def _add_common(parser: argparse.ArgumentParser, *, passes: int) -> None:
    parser.add_argument("-b", "--benchmark", required=True,
                        choices=sorted(BENCHMARKS),
                        help="registry benchmark to run on")
    parser.add_argument("--passes", type=int, default=passes,
                        help="profiling stimulus passes (default %(default)s)")
    parser.add_argument("--stimulus-seed", type=int, default=7,
                        help="stimulus RNG seed (default %(default)s)")
    parser.add_argument("--results-dir", type=pathlib.Path,
                        default=DEFAULT_RESULTS_DIR,
                        help="report output directory (default %(default)s)")
    _add_store(parser)


def _add_store(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--store", type=pathlib.Path, default=None,
                        metavar="DIR",
                        help="persistent artifact-store directory (default "
                             "$REPRO_STORE_DIR when set; omit both for a "
                             "purely in-process cache)")


def _print_store_stats(cache) -> None:
    """One line of cross-run store traffic, when a store is attached."""
    store = getattr(cache, "store", None)
    if store is None:
        return
    totals = store.stats()["total"]
    print(f"store: {totals['hits']} disk hits, {totals['misses']} misses "
          f"at {store.root}")


def _add_search(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=0,
                        help="search RNG seed (default %(default)s)")
    parser.add_argument("--depth", type=int, default=5,
                        help="max move-sequence depth (default %(default)s)")
    parser.add_argument("--candidates", type=int, default=12,
                        help="candidate moves sampled per depth "
                             "(default %(default)s)")
    parser.add_argument("--iterations", type=int, default=6,
                        help="max search iterations (default %(default)s)")


# -- synth ----------------------------------------------------------------------------


def cmd_synth(args) -> int:
    """One IMPACT flow: synthesize, summarize, optionally verify."""
    from repro.explore import engine_for_benchmark

    from repro.core.search import WeightedObjective

    engine = engine_for_benchmark(args.benchmark, n_passes=args.passes,
                                  seed=args.stimulus_seed,
                                  store_dir=args.store)
    mode = args.mode
    if args.weights is not None:
        mode = WeightedObjective.for_engine(engine, args.weights, args.laxity)
    result = engine.run(mode=mode, laxity=args.laxity,
                        search=_search_from_args(args))
    summary = result.summary()
    print(format_table([summary], title=f"repro synth {args.benchmark}"))

    verified = None
    if args.verify:
        report = engine.verify(design=result.design)
        verified = report.ok
        print(f"conformance: {'OK' if report.ok else 'DIVERGED'} "
              f"({len(engine.stimulus)} passes)")
    _print_store_stats(engine.cache)

    written = write_report(
        [summary], args.results_dir / f"synth_{args.benchmark}",
        title=f"repro synth {args.benchmark}",
        extra={"benchmark": args.benchmark, "laxity": args.laxity,
               "enc_min": result.enc_min, "enc_budget": result.enc_budget,
               "verified": verified})
    print("reports: " + ", ".join(str(p) for p in written.values()))
    return 0 if verified is not False else 1


# -- explore --------------------------------------------------------------------------


def cmd_explore(args) -> int:
    """Sharded Pareto-frontier exploration plus frontier verification."""
    from repro.explore import explore, verify_frontier

    result = explore(
        args.benchmark, objectives=args.objectives, laxities=args.laxities,
        seeds=(args.seed,), shards=args.shards, steal=args.steal,
        n_passes=args.passes,
        stimulus_seed=args.stimulus_seed, search=_search_from_args(args),
        store_dir=None if args.store is None else str(args.store))
    summary = result.summary()
    rows = result.rows()
    print(format_table(rows, title=(
        f"repro explore {args.benchmark}: {len(rows)}-point Pareto frontier "
        f"(area, power, latency)")))
    workers = (f"{summary['steal_workers']} steal worker(s)"
               if result.steal_workers else
               f"{summary['shards']} shard(s)")
    warm = (f", {summary['warm_hits']} warm-started from the store"
            if result.warm_hits else "")
    print(f"\n{summary['jobs']} jobs on {workers}, "
          f"{summary['evaluations']} evaluations, {summary['offered']} "
          f"archive offers, hypervolume {summary['hypervolume']:.4g}{warm}, "
          f"{result.wall_time_s:.2f}s")

    verified = None
    if args.verify:
        reports = verify_frontier(result, use_iverilog=args.iverilog)
        verified = [r.ok for r in reports]
        print(f"conformance: {sum(verified)}/{len(verified)} frontier "
              f"points agree across every execution model")

    written = write_report(
        rows, args.results_dir / f"explore_{args.benchmark}",
        title=f"repro explore {args.benchmark}",
        extra={"summary": summary, "jobs": result.jobs,
               "verified": verified})
    print("reports: " + ", ".join(str(p) for p in written.values()))
    if verified is not None and not all(verified):
        return 1
    return 0


# -- verify ---------------------------------------------------------------------------


def cmd_verify(args) -> int:
    """Differential conformance over one or every registry benchmark."""
    from repro.verify.conformance import verify_benchmark

    names = sorted(BENCHMARKS) if args.all else [args.benchmark]
    if names == [None]:
        print("repro verify: pass -b <benchmark> or --all", file=sys.stderr)
        return 2
    rows = []
    ok = True
    for name in names:
        report = verify_benchmark(name, n_passes=args.passes,
                                  seed=args.stimulus_seed,
                                  use_iverilog=args.iverilog,
                                  store_dir=args.store)
        rows.append(report.summary())
        ok = ok and report.ok
    print(format_table(rows, title=f"repro verify ({args.passes} passes)"))
    written = write_report(
        rows, args.results_dir / "verify_cli",
        title=f"repro verify ({args.passes} passes)",
        extra={"ok": ok, "passes": args.passes})
    print("reports: " + ", ".join(str(p) for p in written.values()))
    return 0 if ok else 1


# -- bench ----------------------------------------------------------------------------


def cmd_bench(args) -> int:
    """One Figure 13 laxity sweep with table + report emission."""
    from repro.experiments.laxity import run_laxity_sweep
    from repro.experiments.report import format_sweep

    laxities = args.laxities or tuple(
        round(1.0 + 2.0 * i / max(args.points - 1, 1), 2)
        for i in range(args.points))
    sweep = run_laxity_sweep(args.benchmark, laxities=laxities,
                             n_passes=args.passes, seed=args.stimulus_seed,
                             search=_search_from_args(args),
                             store_dir=args.store)
    print(format_sweep(sweep))

    # Per-stage incremental rates: how often each pipeline stage took its
    # delta fast path instead of a full recomputation during this sweep.
    stage_rows = []
    for stage in sorted(sweep.profile):
        stats = sweep.profile[stage]
        calls, hits = stats["calls"], stats["incremental"]
        stage_rows.append({
            "stage": stage,
            "calls": calls,
            "incremental": hits,
            "incremental_rate": f"{hits / calls:.1%}" if calls else "n/a",
            "seconds": round(stats["seconds"], 3),
        })
    if stage_rows:
        print(format_table(stage_rows, title="pipeline stages (incremental "
                                             "fast-path hit rates)"))

    written = write_report(
        [p.row() for p in sweep.points],
        args.results_dir / f"bench_{args.benchmark}",
        title=f"repro bench {args.benchmark} (Figure 13 sweep)",
        extra={"benchmark": args.benchmark,
               "evaluations": sweep.evaluations,
               "max_power_reduction_vs_base":
                   sweep.max_power_reduction_vs_base(),
               "max_power_reduction_vs_a": sweep.max_power_reduction_vs_a(),
               "max_area_overhead": sweep.max_area_overhead(),
               "mismatches": sweep.total_mismatches(),
               "incremental_rates": {
                   r["stage"]: r["incremental_rate"] for r in stage_rows}})
    written_stages = write_report(
        stage_rows,
        args.results_dir / f"bench_{args.benchmark}_stages",
        title=f"repro bench {args.benchmark} — pipeline stage "
              "incremental rates",
        extra={"benchmark": args.benchmark})
    print("reports: " + ", ".join(
        str(p) for p in list(written.values()) + list(written_stages.values())))
    return 0 if sweep.total_mismatches() == 0 else 1


# -- fuzz -----------------------------------------------------------------------------


def cmd_fuzz(args) -> int:
    """Random-program fuzzing through synthesis + the conformance chain."""
    import dataclasses

    from repro.genprog import GenConfig, program_from_source
    from repro.genprog.fuzz import fuzz_program, fuzz_run

    search = SearchConfig(max_depth=args.search_depth,
                          max_candidates=args.search_candidates,
                          max_iterations=args.search_iterations, seed=0)
    gen = dataclasses.replace(GenConfig(), ops_budget=args.max_ops,
                              max_depth=args.nesting,
                              branch_density=args.branch_density,
                              loop_density=args.loop_density,
                              array_density=args.array_density,
                              n_arrays=args.arrays)

    if args.replay is not None:
        if not args.replay.exists():
            print(f"repro fuzz: reproducer {args.replay} not found",
                  file=sys.stderr)
            return 2
        # The stimulus family derives from the generator seed, so replay
        # with the failing row's `seed` to feed the reproducer the exact
        # input vectors that exposed it.
        program = program_from_source(
            args.replay.read_text(encoding="utf-8"),
            config=dataclasses.replace(gen, seed=args.seed))
        verdict = fuzz_program(program, laxities=args.laxities,
                               n_passes=args.passes, search=search,
                               use_iverilog=args.iverilog,
                               store_dir=args.store)
        print(format_table([verdict.row()],
                           title=f"repro fuzz --replay {args.replay}"))
        if verdict.detail:
            print(verdict.detail)
        return 0 if verdict.ok else 1

    if args.coverage:
        from repro.genprog.fleet import fleet_run

        report = fleet_run(args.count, args.seed, guided=not args.blind,
                           laxities=args.laxities, n_passes=args.passes,
                           gen=gen, search=search,
                           use_iverilog=args.iverilog,
                           results_dir=args.results_dir,
                           shrink_trials=args.shrink_trials,
                           store_dir=args.store)
        summary = report.summary()
        rows = report.rows()
        mode = "guided" if summary["guided"] else "blind"
        print(format_table(rows, title=(
            f"repro fuzz --coverage ({mode}): {report.n_bins} structural "
            f"bins, corpus {report.corpus_size} (seed {report.seed})")))
        families = ", ".join(f"{family}:{count}" for family, count
                             in summary["bin_families"].items())
        print(f"\nbins by family: {families}")
        for digest, names in sorted(report.triage.items()):
            print(f"failure {digest}: {', '.join(sorted(names))} -> "
                  f"{args.results_dir / ('fuzz_repro_' + digest + '.src')}")
        written = write_report(rows, args.results_dir / "fleet",
                               title=f"repro fuzz --coverage ({mode}, "
                                     f"seed {report.seed})",
                               extra=summary)
        print("reports: " + ", ".join(str(p) for p in written.values()))
        return 0 if report.ok else 1

    report = fuzz_run(args.count, args.seed, laxities=args.laxities,
                      n_passes=args.passes, gen=gen, search=search,
                      use_iverilog=args.iverilog,
                      results_dir=args.results_dir,
                      shrink_trials=args.shrink_trials,
                      store_dir=args.store)
    rows = report.rows()
    print(format_table(rows, title=(
        f"repro fuzz: {report.n_ok}/{report.count} programs "
        f"conformance-clean (seed {report.seed})")))
    for verdict in report.verdicts:
        if not verdict.ok:
            print(f"\n{verdict.name} [{verdict.status}]: {verdict.detail}")
            if verdict.reproducer:
                print(f"  shrunk reproducer: {verdict.reproducer} "
                      f"(re-run: python -m repro fuzz --replay "
                      f"{verdict.reproducer} --seed {verdict.seed})")
    written = write_report(rows, args.results_dir / "fuzz",
                           title=f"repro fuzz (seed {report.seed})",
                           extra=report.summary())
    print("reports: " + ", ".join(str(p) for p in written.values()))
    return 0 if report.ok else 1


# -- serve ----------------------------------------------------------------------------


def cmd_serve(args) -> int:
    """Run the async synthesis job server (see docs/service.md)."""
    from repro.service import serve

    return serve(host=args.host, port=args.port,
                 store_dir=None if args.store is None else str(args.store),
                 queue_size=args.queue_size, workers=args.workers,
                 job_timeout_s=args.timeout, retries=args.retries,
                 max_cache_entries=args.max_cache_entries,
                 journal_path=args.journal, resume=args.resume,
                 fault_plan=args.faults,
                 drain_timeout_s=args.drain_timeout)


# -- list -----------------------------------------------------------------------------


def cmd_list(args) -> int:
    """Print the benchmark registry."""
    rows = [{"name": b.name, "clock_ns": b.clock_ns,
             "description": b.description}
            for b in (get_benchmark(n) for n in sorted(BENCHMARKS))]
    print(format_table(rows, title="benchmark registry"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The ``python -m repro`` argument parser (also used by doc checks)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="IMPACT low-power HLS: synthesis, design-space "
                    "exploration, verification and benchmarking.")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synth", help="run one IMPACT synthesis flow")
    _add_common(p, passes=40)
    _add_search(p)
    p.add_argument("--mode", choices=("power", "area"), default="power",
                   help="optimization objective (default %(default)s)")
    p.add_argument("--weights", type=_parse_weights, default=None,
                   metavar="WA,WP,WL",
                   help="scalarized objective weights (overrides --mode)")
    p.add_argument("--laxity", type=float, default=2.0,
                   help="ENC budget over the minimum (default %(default)s)")
    p.add_argument("--verify", action="store_true",
                   help="conformance-check the synthesized design")
    p.set_defaults(fn=cmd_synth)

    p = sub.add_parser("explore",
                       help="multi-objective Pareto-frontier exploration")
    _add_common(p, passes=20)
    _add_search(p)
    p.add_argument("--shards", type=int, default=1,
                   help="worker processes; the frontier is bit-identical "
                        "for any value (default %(default)s)")
    p.add_argument("--steal", type=int, default=0, metavar="N",
                   help="work-stealing worker count: idle workers pull the "
                        "next grid cell from a shared queue and completed "
                        "cells checkpoint into the artifact store for "
                        "warm-starts; the frontier is bit-identical to a "
                        "1-shard run for any value (default: static "
                        "sharding)")
    p.add_argument("--laxities", type=_parse_floats, default=DEFAULT_LAXITIES,
                   metavar="L1,L2,...",
                   help="laxity grid (default %(default)s)")
    p.add_argument("--objectives", type=_parse_objectives,
                   default=DEFAULT_OBJECTIVES,
                   metavar="SPEC,...",
                   help='comma list of "area", "power" or WA:WP:WL weight '
                        'triples (default %(default)s)')
    p.add_argument("--no-verify", dest="verify", action="store_false",
                   help="skip conformance-checking the frontier")
    p.add_argument("--iverilog", choices=("auto", "off", "require"),
                   default="auto", help="external cosim oracle policy")
    p.set_defaults(fn=cmd_explore, verify=True)

    p = sub.add_parser("verify", help="differential conformance oracle chain")
    p.add_argument("-b", "--benchmark", choices=sorted(BENCHMARKS),
                   default=None)
    p.add_argument("--all", action="store_true",
                   help="verify every registry benchmark")
    p.add_argument("--passes", type=int, default=100)
    p.add_argument("--stimulus-seed", type=int, default=0)
    p.add_argument("--iverilog", choices=("auto", "off", "require"),
                   default="auto")
    p.add_argument("--results-dir", type=pathlib.Path,
                   default=DEFAULT_RESULTS_DIR)
    _add_store(p)
    p.set_defaults(fn=cmd_verify)

    p = sub.add_parser("bench", help="Figure 13 laxity sweep + reports")
    _add_common(p, passes=15)
    _add_search(p)
    p.add_argument("--points", type=int, default=5,
                   help="laxity grid size over [1, 3] (default %(default)s)")
    p.add_argument("--laxities", type=_parse_floats, default=None,
                   metavar="L1,L2,...", help="explicit laxity grid")
    p.set_defaults(fn=cmd_bench)

    p = sub.add_parser(
        "fuzz", help="fuzz random programs through the whole stack")
    p.add_argument("--count", type=_positive_int, default=10,
                   help="programs to generate (default %(default)s)")
    p.add_argument("--seed", type=int, default=0,
                   help="fuzz run seed; program seeds derive from it "
                        "(default %(default)s)")
    p.add_argument("--laxities", type=_parse_laxities, default=(1.0, 2.0),
                   metavar="L1,L2,...",
                   help="laxity factors (each >= 1.0) every program is "
                        "synthesized at (default 1.0,2.0)")
    p.add_argument("--passes", type=_positive_int, default=10,
                   help="stimulus passes per program (default %(default)s)")
    p.add_argument("--max-ops", type=_positive_int, default=22,
                   help="generator statement budget (default %(default)s)")
    p.add_argument("--nesting", type=_positive_int, default=3,
                   help="max region nesting depth (default %(default)s)")
    p.add_argument("--branch-density", type=_unit_float, default=0.30,
                   help="if/else probability per slot (default %(default)s)")
    p.add_argument("--loop-density", type=_unit_float, default=0.25,
                   help="loop probability per slot (default %(default)s)")
    p.add_argument("--array-density", type=_unit_float, default=0.15,
                   help="array-access probability per slot; 0 disables "
                        "arrays entirely (default %(default)s)")
    p.add_argument("--arrays", type=_positive_int, default=1,
                   help="arrays declared per program when array density "
                        "is nonzero (default %(default)s)")
    p.add_argument("--search-depth", type=_positive_int, default=3,
                   help="search move depth per synthesis (default %(default)s)")
    p.add_argument("--search-candidates", type=_positive_int, default=8,
                   help="candidates per search depth (default %(default)s)")
    p.add_argument("--search-iterations", type=_positive_int, default=4,
                   help="search iterations per synthesis (default %(default)s)")
    p.add_argument("--shrink-trials", type=_positive_int, default=200,
                   help="shrinker trial budget per failure (default %(default)s)")
    p.add_argument("--iverilog", choices=("auto", "off", "require"),
                   default="off",
                   help="external cosim oracle policy (default %(default)s; "
                        "off keeps results/fuzz.json machine-independent)")
    p.add_argument("--coverage", action="store_true",
                   help="coverage-guided fleet mode: structural bins steer "
                        "a mutating corpus, failures dedupe by triage "
                        "digest (see docs/fuzzing.md)")
    p.add_argument("--blind", action="store_true",
                   help="with --coverage: measure bins but never steer — "
                        "the control arm coverage gains are compared "
                        "against")
    p.add_argument("--replay", type=pathlib.Path, default=None,
                   metavar="FILE",
                   help="re-run the chain on a saved reproducer source "
                        "instead of generating programs; pass the failing "
                        "row's seed via --seed to replay its exact stimulus")
    p.add_argument("--results-dir", type=pathlib.Path,
                   default=DEFAULT_RESULTS_DIR,
                   help="report output directory (default %(default)s)")
    _add_store(p)
    p.set_defaults(fn=cmd_fuzz)

    p = sub.add_parser(
        "serve", help="run the async synthesis job server")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default %(default)s)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port; 0 picks a free one, announced in the "
                        "serving line (default %(default)s)")
    p.add_argument("--queue-size", type=_positive_int, default=8,
                   help="pending-job bound before 429 rejection "
                        "(default %(default)s)")
    p.add_argument("--workers", type=int, default=2,
                   help="process-pool workers; 0 accepts jobs without "
                        "running them, for back-pressure testing "
                        "(default %(default)s)")
    p.add_argument("--timeout", type=float, default=600.0,
                   help="per-job timeout in seconds (default %(default)s)")
    p.add_argument("--retries", type=_positive_int, default=1,
                   help="retries after a timed-out or crashed job "
                        "(default %(default)s)")
    p.add_argument("--max-cache-entries", type=_positive_int, default=256,
                   help="in-memory memo-table bound per worker; the store "
                        "keeps the durable copies (default %(default)s)")
    p.add_argument("--resume", action="store_true",
                   help="re-enqueue the journal's accepted-but-unfinished "
                        "jobs from a previous (crashed or drained) run")
    p.add_argument("--journal", type=pathlib.Path, default=None,
                   metavar="FILE",
                   help="job journal path (default <store>/journal.ndjson "
                        "when a store is attached)")
    p.add_argument("--faults", default=None, metavar="PLAN",
                   help="deterministic fault-injection plan, e.g. "
                        "'seed=7;kill_worker@1;store_write@2:1' (default "
                        "$REPRO_FAULTS when set; see docs/service.md)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds a SIGTERM drain waits for queued jobs "
                        "before journaling the rest (default %(default)s)")
    _add_store(p)
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser("list", help="list the benchmark registry")
    p.set_defaults(fn=cmd_list)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
