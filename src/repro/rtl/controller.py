"""Controller (FSM) area and power model.

The controller realizes the STG: a binary-encoded state register, next-state
logic over the condition inputs, and a decoder producing the datapath
control signals (mux selects, register write enables, FU activity).  The
paper measures controller power from layout; we use a structural model
whose terms scale with the quantities that dominate such an FSM's power —
state-register bits, transition terms, and decoded outputs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Area units (gate equivalents) per model term.
AREA_PER_STATE_BIT = 14.0      # state FF + buffer
AREA_PER_TRANSITION = 6.0      # one product term of next-state logic
AREA_PER_OUTPUT = 4.0          # one decoded control line

#: Capacitance (pF) per model term, for the power estimator.
CAP_PER_STATE_BIT = 0.030
CAP_PER_TRANSITION = 0.008
CAP_PER_OUTPUT = 0.004


@dataclass(frozen=True)
class ControllerModel:
    """Structural summary of the FSM."""

    n_states: int
    n_transitions: int
    n_condition_inputs: int
    n_outputs: int

    @property
    def state_bits(self) -> int:
        return max(1, math.ceil(math.log2(max(self.n_states, 2))))

    def area(self) -> float:
        return (self.state_bits * AREA_PER_STATE_BIT
                + self.n_transitions * AREA_PER_TRANSITION
                + self.n_outputs * AREA_PER_OUTPUT)

    def energy_per_cycle(self, vdd: float, state_toggle_rate: float = 0.5) -> float:
        """Energy (pJ) per clock cycle.

        ``state_toggle_rate`` is the mean fraction of state bits toggling
        per cycle (measured exactly by gatesim; estimated at 0.5 here).
        """
        switched = (self.state_bits * CAP_PER_STATE_BIT * state_toggle_rate
                    + self.n_transitions * CAP_PER_TRANSITION * 0.5
                    + self.n_outputs * CAP_PER_OUTPUT * 0.25)
        return switched * vdd * vdd
