"""Multiplexer trees and their switching activity — Section 3.2.1.

An n-to-1 multiplexer is a binary tree of 2-to-1 multiplexers (Figure 11).
Each input signal ``i`` has a transition activity ``a_i`` and a propagation
probability ``p_i`` (the probability its value appears at the output; the
``p_i`` of a tree sum to 1).  The switching activity of one leaf mux is

    A_k = (a_i p_i + a_j p_j) / (p_i + p_j)                        (2)

and an internal mux behaves as if its grand-inputs fed it directly
(Equation 6), so the whole tree's activity is the recursive sum of
Equation (7).  The paper's worked example — activities (.6,.1,.2,.1) and
probabilities (.7,.2,.05,.05) — gives 1.09 for the balanced tree of
Figure 9 and 0.72 after Huffman restructuring (Figure 10); both values are
regression-tested.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ArchitectureError


@dataclass(frozen=True)
class MuxSource:
    """One tree input: an opaque key plus its (activity, probability)."""

    key: object
    activity: float = 0.0
    prob: float = 0.0


#: A tree is either a MuxSource (leaf) or a tuple (left, right).
TreeShape = MuxSource | tuple


class MuxTree:
    """An immutable 2:1-mux tree over a set of sources."""

    def __init__(self, shape: TreeShape):
        self._shape = shape
        self._depths: dict[object, int] = {}
        self._collect_depths(shape, 0)
        if not self._depths:
            raise ArchitectureError("mux tree has no sources")

    def _collect_depths(self, shape: TreeShape, depth: int) -> None:
        if isinstance(shape, MuxSource):
            if shape.key in self._depths:
                raise ArchitectureError(f"duplicate mux source {shape.key!r}")
            self._depths[shape.key] = depth
            return
        left, right = shape
        self._collect_depths(left, depth + 1)
        self._collect_depths(right, depth + 1)

    # -- structure ---------------------------------------------------------------

    @property
    def shape(self) -> TreeShape:
        return self._shape

    def sources(self) -> list[MuxSource]:
        out: list[MuxSource] = []

        def walk(shape: TreeShape) -> None:
            if isinstance(shape, MuxSource):
                out.append(shape)
            else:
                walk(shape[0])
                walk(shape[1])

        walk(self._shape)
        return out

    def n_sources(self) -> int:
        return len(self._depths)

    def n_muxes(self) -> int:
        """Number of 2:1 multiplexers (n-1 for n sources)."""
        return len(self._depths) - 1

    def depth_of(self, key: object) -> int:
        """Number of 2:1 mux stages between a source and the output."""
        try:
            return self._depths[key]
        except KeyError:
            raise ArchitectureError(f"mux tree has no source {key!r}") from None

    def max_depth(self) -> int:
        return max(self._depths.values())

    def with_stats(self, stats: dict[object, tuple[float, float]]) -> "MuxTree":
        """Same shape, new (activity, probability) annotations per key."""

        def rebuild(shape: TreeShape) -> TreeShape:
            if isinstance(shape, MuxSource):
                activity, prob = stats.get(shape.key, (0.0, 0.0))
                return MuxSource(shape.key, activity, prob)
            return (rebuild(shape[0]), rebuild(shape[1]))

        return MuxTree(rebuild(self._shape))

    # -- activity (Equations (1)-(7)) -----------------------------------------------

    def tree_activity(self) -> float:
        """Total switching activity of the tree, Equation (7).

        Returns 0 for a single-source "tree" (no multiplexers).
        """
        total, _ap, _p = self._activity(self._shape)
        return total

    def _activity(self, shape: TreeShape) -> tuple[float, float, float]:
        """Returns (sum of A_k in subtree, sum a_i*p_i, sum p_i)."""
        if isinstance(shape, MuxSource):
            return 0.0, shape.activity * shape.prob, shape.prob
        left_sum, left_ap, left_p = self._activity(shape[0])
        right_sum, right_ap, right_p = self._activity(shape[1])
        ap = left_ap + right_ap
        p = left_p + right_p
        node_activity = ap / p if p > 0.0 else 0.0
        return left_sum + right_sum + node_activity, ap, p

    def activity_with(self, stats: dict[object, tuple[float, float]]) -> float:
        """Equation (7) under externally supplied per-key (a_i, p_i).

        Equivalent to ``with_stats(stats).tree_activity()`` — the same
        recursion over the same shape with the same float-addition order
        — without allocating the annotated tree (the power estimator
        calls this once per port per design point).
        """

        def walk(shape: TreeShape) -> tuple[float, float, float]:
            if isinstance(shape, MuxSource):
                activity, prob = stats.get(shape.key, (0.0, 0.0))
                return 0.0, activity * prob, prob
            left_sum, left_ap, left_p = walk(shape[0])
            right_sum, right_ap, right_p = walk(shape[1])
            ap = left_ap + right_ap
            p = left_p + right_p
            node_activity = ap / p if p > 0.0 else 0.0
            return left_sum + right_sum + node_activity, ap, p

        total, _ap, _p = walk(self._shape)
        return total


def balanced_tree(sources: list[MuxSource]) -> MuxTree:
    """Build the default balanced tree (pairing adjacent sources level by
    level, as a naive RTL generator would)."""
    if not sources:
        raise ArchitectureError("cannot build a mux tree with no sources")
    level: list[TreeShape] = list(sources)
    while len(level) > 1:
        nxt: list[TreeShape] = []
        for i in range(0, len(level) - 1, 2):
            nxt.append((level[i], level[i + 1]))
        if len(level) % 2:
            nxt.append(level[-1])
        level = nxt
    return MuxTree(level[0])


def tree_from_pairs(shape) -> MuxTree:
    """Build a tree from nested ``(left, right)`` tuples of MuxSource."""
    return MuxTree(shape)
