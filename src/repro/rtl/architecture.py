"""The synthesized RT-level architecture.

Bundles (CDFG, binding, STG, datapath, controller) and implements the two
physical analyses every move evaluation needs:

* :meth:`Architecture.check_timing` — recomputes each state's real critical
  path from actual multiplexer tree depths, chaining overheads and module
  delays (the engine schedules with estimates; this is the ground truth
  that decides legality and Vdd scaling);
* :meth:`Architecture.area` — module areas + registers + multiplexer
  network + controller, with a fixed wiring overhead factor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ArchitectureError
from repro.cdfg.graph import CDFG
from repro.cdfg.node import OpKind
from repro.core.binding import Binding
from repro.library.modules_data import (
    MUX_AREA_PER_BIT,
    MUX_DELAY_NS,
    REGISTER_AREA_PER_BIT,
    CHAIN_OVERHEAD,
)
from repro.library.memory import ram_area
from repro.library.module import scale_area
from repro.library.voltage import max_vdd_scaling
from repro.rtl.controller import ControllerModel
from repro.rtl.datapath import Datapath, MuxTree, PortKey
from repro.sched.stg import STG

#: Wiring / layout overhead applied on top of summed cell area.
WIRING_OVERHEAD = 1.05


@dataclass
class TimingViolation:
    state: int
    path_ns: float
    budget_ns: float
    node: int

    def __str__(self) -> str:
        return (f"state {self.state}: path {self.path_ns:.2f} ns through node "
                f"{self.node} exceeds budget {self.budget_ns:.2f} ns")


@dataclass
class Architecture:
    cdfg: CDFG
    binding: Binding
    stg: STG
    datapath: Datapath
    controller: ControllerModel
    clock_ns: float
    mux_delay_ns: float = MUX_DELAY_NS
    chain_overhead: float = CHAIN_OVERHEAD
    _state_paths: dict[int, float] = field(default_factory=dict, repr=False)
    _durations: dict[int, int] = field(default_factory=dict, repr=False)
    _area: float | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        # Per-architecture state durations: the scheduler's estimates are
        # the starting point; normalize_durations() replaces them with the
        # exact values from the real critical paths.  They live here (not
        # on the STG) because design points derived without re-scheduling
        # share the STG object.
        self._durations = {sid: s.duration for sid, s in self.stg.states.items()}

    def state_duration(self, state_id: int) -> int:
        return self._durations[state_id]

    def duration_map(self) -> dict[int, int]:
        """Copy of the normalized per-state cycle counts (for replay
        recosting and the HDL backend's dwell counters)."""
        return dict(self._durations)

    def normalize_durations(self) -> bool:
        """Timing closure: set every state's cycle count from its real path.

        The scheduler packs with *estimated* multiplexer depths; the real
        network (built here) can be deeper or shallower.  Multi-cycling the
        state makes any path legal — the cost surfaces honestly as ENC.
        Returns True if any duration changed.
        """
        import math

        ceil = math.ceil
        paths = self._state_paths
        durations = self._durations
        clock = self.clock_ns
        changed = False
        for sid in self.stg.states:
            path = paths.get(sid)
            if path is None:
                path = self.state_critical_path(sid)
            needed = ceil(path / clock - 1e-9)
            if needed < 1:
                needed = 1
            if needed != durations[sid]:
                durations[sid] = needed
                changed = True
        return changed

    # -- timing -------------------------------------------------------------------

    def state_critical_path(self, state_id: int) -> float:
        """Real critical path of one state (ns at 5 V), memoized."""
        cached = self._state_paths.get(state_id)
        if cached is not None:
            return cached
        state = self.stg.states[state_id]
        in_state = {op.node: op for op in state.ops}
        ends: dict[int, float] = {}

        def real_end(node_id: int) -> float:
            if node_id in ends:
                return ends[node_id]
            node = self.cdfg.node(node_id)
            start = 0.0
            for edge in self.cdfg.in_edges(node_id):
                if edge.carried:
                    continue
                src = self.cdfg.node(edge.src)
                if edge.src in in_state and src.is_schedulable:
                    start = max(start, real_end(edge.src))
            delay = self.binding.op_delay(node_id)
            if delay > 0.0 and start > 0.0:
                delay *= 1.0 + self.chain_overhead
            end = start + delay + self._input_mux_delay(node_id, state_id)
            ends[node_id] = end
            return end

        critical = 0.0
        worst_node = -1
        for op in state.ops:
            end = real_end(op.node)
            write_end = end + self._output_mux_delay(op.node, state_id)
            if write_end > critical:
                critical = write_end
                worst_node = op.node
        self._state_paths[state_id] = critical
        return critical

    def _input_mux_delay(self, node_id: int, state_id: int) -> float:
        node = self.cdfg.node(node_id)
        if node.mem is not None:
            mem = self.binding.mems[node.mem]
            ram_port = mem.port_of[node_id]
            keys: list[PortKey] = [("mem_addr", node.mem, ram_port)]
            if node.kind is OpKind.STORE:
                keys.append(("mem_din", node.mem, ram_port))
        elif node.needs_fu:
            fu = self.binding.fu_of(node_id)
            keys = [("fu_in", fu.id, k)
                    for k in range(len(self.cdfg.in_edges(node_id)))]
        else:
            return 0.0
        worst = 0.0
        for key in keys:
            port = self.datapath.ports.get(key)
            if port is None or port.tree is None:
                continue
            source = port.drivers.get((node_id, state_id))
            if source is None:
                continue
            worst = max(worst, port.tree.depth_of(source) * self.mux_delay_ns)
        return worst

    def _output_mux_delay(self, node_id: int, state_id: int) -> float:
        node = self.cdfg.node(node_id)
        if node.carrier is None:
            return 0.0
        reg = self.binding.reg_of(node.carrier)
        port = self.datapath.ports.get(("reg_in", reg.id))
        if port is None or port.tree is None:
            return 0.0
        source = port.drivers.get((node_id, state_id))
        if source is None:
            return 0.0
        return port.tree.depth_of(source) * self.mux_delay_ns

    def check_timing(self) -> list[TimingViolation]:
        """All states whose real path exceeds their cycle window."""
        violations: list[TimingViolation] = []
        paths = self._state_paths
        durations = self._durations
        clock = self.clock_ns
        for state in self.stg.states.values():
            budget = durations[state.id] * clock
            path = paths.get(state.id)
            if path is None:
                path = self.state_critical_path(state.id)
            if path > budget + 1e-6:
                worst = max(state.ops, key=lambda op: op.end, default=None)
                violations.append(TimingViolation(
                    state=state.id, path_ns=path, budget_ns=budget,
                    node=worst.node if worst else -1))
        return violations

    def worst_slack_ratio(self) -> float:
        """min over states of (cycle window / real critical path)."""
        worst = float("inf")
        paths = self._state_paths
        durations = self._durations
        clock = self.clock_ns
        for state in self.stg.states.values():
            path = paths.get(state.id)
            if path is None:
                path = self.state_critical_path(state.id)
            if path <= 0.0:
                continue
            ratio = durations[state.id] * clock / path
            if ratio < worst:
                worst = ratio
        return worst

    def scaled_vdd(self) -> float:
        """Lowest legal Vdd after consuming all in-state timing slack."""
        ratio = self.worst_slack_ratio()
        if ratio == float("inf"):
            ratio = 5.0
        return max_vdd_scaling(ratio)

    def invalidate_timing(self, state_ids: list[int] | None = None) -> None:
        """Drop cached critical paths and re-derive the state durations.

        Durations are a function of the cached paths, so the two must be
        invalidated together: dropping only ``_state_paths`` used to leave
        ``_durations`` frozen at values normalized against the *old* paths
        — a partial ``invalidate_timing([sid])`` after a mux-tree edit
        then made :meth:`check_timing` compare fresh paths against stale
        cycle budgets (phantom violations, or silently illegal windows).
        Renormalizing here restores the invariant that every cached
        duration was computed from the paths currently in the cache.
        """
        if state_ids is None:
            self._state_paths.clear()
        else:
            for sid in state_ids:
                self._state_paths.pop(sid, None)
        self.normalize_durations()

    # -- area ---------------------------------------------------------------------

    def area(self) -> float:
        # Binding and datapath structure are fixed once the architecture is
        # built (tree restructuring goes through set_tree, which resets
        # this), so the sum is computed once per object.
        if self._area is not None:
            return self._area
        total = 0.0
        for fu in self.binding.fus.values():
            total += scale_area(fu.module, fu.width)
        for reg in self.binding.regs.values():
            total += reg.width * REGISTER_AREA_PER_BIT
        for width in self.datapath.tmp_regs.values():
            total += width * REGISTER_AREA_PER_BIT
        for mem in self.binding.mems.values():
            total += ram_area(mem.spec, mem.width, mem.depth)
        for port in self.datapath.ports.values():
            total += port.n_muxes() * port.width * MUX_AREA_PER_BIT
        total += self.controller.area()
        self._area = total * WIRING_OVERHEAD
        return self._area

    def area_breakdown(self) -> dict[str, float]:
        fus = sum(scale_area(fu.module, fu.width) for fu in self.binding.fus.values())
        regs = (sum(r.width for r in self.binding.regs.values())
                + sum(self.datapath.tmp_regs.values())) * REGISTER_AREA_PER_BIT
        mems = sum(ram_area(m.spec, m.width, m.depth)
                   for m in self.binding.mems.values())
        muxes = sum(p.n_muxes() * p.width * MUX_AREA_PER_BIT
                    for p in self.datapath.ports.values())
        return {
            "fus": fus,
            "registers": regs,
            "memories": mems,
            "muxes": muxes,
            "controller": self.controller.area(),
            "total": self.area(),
        }

    # -- mux restructuring hook ------------------------------------------------------

    def set_tree(self, key: PortKey, tree: MuxTree, *,
                 invalidate: bool = True) -> None:
        """Install a restructured tree on a port (keys must match).

        The port is cloned before mutation (copy-on-write): incrementally
        derived architectures share untouched port objects with their
        parent, and a tree edit must never leak backwards.  Callers
        installing several trees pass ``invalidate=False`` and finish
        with one :meth:`invalidate_timing` over the affected states;
        the default re-derives all durations immediately.
        """
        port = self.datapath.port(key)
        if port.tree is None:
            raise ArchitectureError(f"port {key!r} has no multiplexer to restructure")
        if {s.key for s in tree.sources()} != set(port.sources):
            raise ArchitectureError(f"tree sources do not match port {key!r}")
        port = self.datapath.clone_port(key)
        port.tree = tree
        self._area = None
        if invalidate:
            self.invalidate_timing(sorted(port.driver_states()))

    def summary(self) -> dict[str, float]:
        return {
            "fus": len(self.binding.fus),
            "registers": len(self.binding.regs) + len(self.datapath.tmp_regs),
            "mux2": self.datapath.total_mux_count(),
            "states": self.stg.n_states,
            "area": round(self.area(), 1),
            "worst_path_ns": round(max((self.state_critical_path(s)
                                        for s in self.stg.states), default=0.0), 2),
        }
