"""Architecture construction: (CDFG, Binding, STG) -> Architecture.

Resolves, for every operation execution (op, state), where each input
physically comes from — a chained unit output, a register, a constant — and
accumulates the multiplexer network from the distinct sources per port.
Temporary registers are materialized only for values that actually cross a
state boundary (or steer the controller); everything else is wiring.

:func:`derive_architecture` is the incremental variant for design points
derived without re-scheduling: ports untouched by the move's
:class:`~repro.core.delta.DirtySet` are shared (as objects) from the
parent architecture, per-edge source resolution runs only for dirty
ports, and the parent's cached state critical paths seed the child's
timing memo for every state no dirty port drives.  The wiring loops
still walk every (state, op) pair — that is what reproduces the parent's
port *insertion order* exactly, so iteration-order-sensitive consumers
(move generation, accumulation order in the power estimator) see the
same sequence the full build would have produced.
"""

from __future__ import annotations

from repro.errors import ArchitectureError
from repro.cdfg.analysis import condition_nodes
from repro.cdfg.edge import Edge
from repro.cdfg.graph import CDFG
from repro.cdfg.node import OpKind
from repro.core.binding import Binding
from repro.core.delta import DirtySet, affected_ports, port_key_dirty
from repro.core.profile import PROFILER
from repro.library.modules_data import DEFAULT_CLOCK_NS
from repro.rtl.architecture import Architecture
from repro.rtl.controller import ControllerModel
from repro.rtl.datapath import Datapath, PortKey, SourceKey
from repro.sched.stg import STG
from repro.utils.bitwidth import mask_for_width, wrap_to_width


def build_architecture(cdfg: CDFG, binding: Binding, stg: STG,
                       clock_ns: float = DEFAULT_CLOCK_NS) -> Architecture:
    """Build and structurally validate the RT-level architecture."""
    with PROFILER.stage("arch_build"):
        builder = _ArchBuilder(cdfg, binding, stg, clock_ns)
        return builder.run()


def derive_architecture(parent: Architecture, binding: Binding,
                        dirty: DirtySet) -> tuple[Architecture, frozenset[PortKey]]:
    """Derive a sibling architecture from ``parent`` under a new binding.

    ``parent`` and the derived architecture share the STG (the move did
    not re-schedule), so the datapath differs only at the ports the
    dirty set reaches.  Returns the architecture and the set of port
    keys that were actually re-wired (a superset of the ports whose
    content differs; everything else is the parent's object).  The
    result is bit-identical to ``build_architecture`` on the same inputs
    — the equivalence suite enforces this.
    """
    with PROFILER.stage("arch_build", incremental=True):
        builder = _ArchBuilder(parent.cdfg, binding, parent.stg,
                               parent.clock_ns, parent=parent, dirty=dirty)
        return builder.run(), frozenset(builder.rebuilt)


def edge_source(arch: Architecture, edge: Edge, state_id: int) -> SourceKey:
    """Physical signal driving ``edge`` for an execution in ``state_id``.

    The same resolution the builder used; exposed for the bit-level
    simulator, which must read its operand values from the same places the
    hardware would.

    Carried edges normally read the variable's register (the previous
    iteration's value).  The one exception is a loop's own test inside a
    kernel state: the next-iteration test reads *this* iteration's update,
    so when the producer sits in the same state the value is chained.
    """
    cdfg = arch.cdfg
    src = cdfg.node(edge.src)
    if src.kind is OpKind.CONST:
        return ("const", src.value)
    if edge.carried:
        if (edge.dst in _loop_test_nodes(arch, edge.loop)
                and edge.src in _state_nodes(arch, state_id)):
            return producer_signal(arch, edge.src, state_id)
        return ("reg", arch.binding.reg_of(src.carrier).id)
    if src.kind in (OpKind.SELECT, OpKind.ENDLOOP, OpKind.INPUT):
        return ("reg", arch.binding.reg_of(src.carrier).id)
    if edge.src in _state_nodes(arch, state_id):
        return producer_signal(arch, edge.src, state_id)
    if src.carrier is not None:
        return ("reg", arch.binding.reg_of(src.carrier).id)
    if edge.src not in arch.datapath.tmp_regs:
        raise ArchitectureError(
            f"temporary {src.name} crosses states but has no register")
    return ("tmp", edge.src)


def _state_nodes(arch: Architecture, state_id: int) -> set[int]:
    """Set of node ids scheduled in a state, memoized per architecture.

    Keyed on the architecture (not the STG) so derived points sharing an
    STG also share the sets via :class:`_ArchBuilder`'s cache hand-off.
    """
    cache = getattr(arch, "_state_node_cache", None)
    if cache is None:
        cache = {}
        arch._state_node_cache = cache
    nodes = cache.get(state_id)
    if nodes is None:
        nodes = set(arch.stg.states[state_id].node_ids())
        cache[state_id] = nodes
    return nodes


def _loop_test_nodes(arch: Architecture, loop_id: int) -> set[int]:
    cache = getattr(arch, "_test_node_cache", None)
    if cache is None:
        cache = {}
        arch._test_node_cache = cache
    nodes = cache.get(loop_id)
    if nodes is None:
        from repro.cdfg.analysis import region_nodes

        loop = arch.cdfg.region(loop_id)
        nodes = set(region_nodes(arch.cdfg, loop.test_block, recursive=True))
        cache[loop_id] = nodes
    return nodes


def copy_is_transparent(src_width: int, src_signed: bool,
                        dst_width: int, dst_signed: bool) -> bool:
    """True when re-typing (src_width, src_signed) to (dst_width,
    dst_signed) is the identity on every representable source value —
    i.e. a chained COPY between those types is free wiring.

    Narrowing, or a signed source viewed unsigned, changes values (e.g.
    ``int6 -1`` viewed as ``uint4`` is 15) and must materialize a wrap.
    """
    if src_signed == dst_signed:
        return dst_width >= src_width
    if not src_signed and dst_signed:
        # An unsigned value needs one extra bit to stay itself signed.
        return dst_width > src_width
    return False


def producer_signal(arch: Architecture, node_id: int, state_id: int) -> SourceKey:
    """The signal a producer presents inside a state (chained view).

    A COPY chains straight through to its own source only when the
    re-typing it performs is value-preserving (:func:`copy_is_transparent`);
    otherwise the COPY's wrap is real hardware and the consumer reads the
    COPY's own wire (``("wire", node_id)``), which the HDL backend emits
    and gatesim computes in chain order.
    """
    node = arch.cdfg.node(node_id)
    if node.needs_fu:
        return ("fu", arch.binding.fu_of(node_id).id)
    if node.kind is OpKind.COPY:
        edge = arch.cdfg.in_edge(node_id, 0)
        source = edge_source(arch, edge, state_id)
        if source[0] == "const":
            if node.signed:
                value = wrap_to_width(source[1], node.width)
            else:
                value = source[1] & mask_for_width(node.width)
            return ("const", value)
        src = arch.cdfg.node(edge.src)
        if copy_is_transparent(src.width, src.signed, node.width, node.signed):
            return source
        return ("wire", node_id)
    return ("wire", node_id)


class _ArchBuilder:
    def __init__(self, cdfg: CDFG, binding: Binding, stg: STG, clock_ns: float,
                 parent: Architecture | None = None,
                 dirty: DirtySet | None = None):
        self.cdfg = cdfg
        self.binding = binding
        self.stg = stg
        self.clock_ns = clock_ns
        self.datapath = Datapath()
        # Incremental derivation state (None for a full build).
        self.parent = parent
        self.dirty = dirty
        self.rebuilt: set[PortKey] = set()
        self._dirty_states: set[int] = set()
        self._dirty_ports: frozenset[PortKey] = frozenset()
        #: Per-key dirty decision, memoized: the dirty set is fixed for
        #: the build, and every key recurs once per driving (state, op).
        self._dirty_memo: dict[PortKey, bool] = {}
        if parent is not None:
            self._dirty_ports = affected_ports(parent, dirty)

    def run(self) -> Architecture:
        self.arch = Architecture(
            cdfg=self.cdfg,
            binding=self.binding,
            stg=self.stg,
            datapath=self.datapath,
            controller=ControllerModel(1, 0, 0, 0),  # placeholder until wired
            clock_ns=self.clock_ns,
        )
        if self.parent is None:
            self._materialize_tmp_regs()
        else:
            # Temporaries depend only on (CDFG, STG), both shared.
            self.datapath.tmp_regs = dict(self.parent.datapath.tmp_regs)
            cached_tests = getattr(self.parent, "_test_node_cache", None)
            if cached_tests is not None:
                self.arch._test_node_cache = cached_tests
            # Same STG object: the per-state node sets transfer verbatim.
            cached_nodes = getattr(self.parent, "_state_node_cache", None)
            if cached_nodes is not None:
                self.arch._state_node_cache = cached_nodes
        self._wire_fu_inputs()
        self._wire_memory_inputs()
        self._wire_register_inputs()
        self._finalize_trees()
        self.arch.controller = self._controller_model()
        if self.parent is not None:
            # Critical paths of states no dirty port drives are the
            # parent's (same ops, delays and trees — shared objects).
            self.arch._state_paths = {
                sid: path for sid, path in dict(self.parent._state_paths).items()
                if sid not in self._dirty_states
            }
        # Timing closure: real mux depths may differ from the scheduler's
        # estimates; cycle counts come from the real critical paths.
        self.arch.normalize_durations()
        return self.arch

    def _finalize_trees(self) -> None:
        if self.parent is None:
            self.datapath.finalize_trees()
            return
        for key in self.rebuilt:
            self.datapath.ports[key].build_default_tree()

    def _port_dirty(self, key: PortKey) -> bool:
        got = self._dirty_memo.get(key)
        if got is None:
            got = key in self._dirty_ports or port_key_dirty(key, self.dirty)
            self._dirty_memo[key] = got
        return got

    def _wire(self, key: PortKey, width: int, consumer: int, state_id: int,
              source: SourceKey) -> None:
        """Route one already-resolved driver on a derive's dirty path."""
        self.datapath.add_driver(key, width, consumer, state_id, source)
        self.rebuilt.add(key)
        self._dirty_states.add(state_id)

    def _share(self, key: PortKey) -> None:
        """Adopt the parent's port wholesale on first encounter (the
        dict-insertion position matches the full build's)."""
        if key not in self.datapath.ports:
            self.datapath.ports[key] = self.parent.datapath.ports[key]

    # -- temporaries ------------------------------------------------------------

    def _materialize_tmp_regs(self) -> None:
        """A temporary needs a register iff some consumer reads it in a
        different state than it was produced, or the controller samples it."""
        cdfg = self.cdfg
        cond_nodes = set(condition_nodes(cdfg))
        for node in cdfg.op_nodes():
            if node.carrier is not None:
                continue
            needed = node.id in cond_nodes
            if not needed:
                producer_states = set(self.stg.states_of_node(node.id))
                for edge in cdfg.out_edges(node.id):
                    if edge.is_control:
                        continue
                    consumer = cdfg.node(edge.dst)
                    if not consumer.is_schedulable:
                        needed = True  # read by an OUTPUT boundary
                        break
                    consumer_states = set(self.stg.states_of_node(edge.dst))
                    if not consumer_states <= producer_states:
                        needed = True
                        break
            if needed:
                self.datapath.tmp_regs[node.id] = node.width

    # -- source resolution ---------------------------------------------------------

    def _resolve_edge(self, edge: Edge, state_id: int) -> SourceKey:
        """The physical signal driving ``edge`` for an execution in a state."""
        return edge_source(self.arch, edge, state_id)

    def _producer_signal(self, node_id: int, state_id: int) -> SourceKey:
        """The signal a chained producer presents inside a state."""
        return producer_signal(self.arch, node_id, state_id)

    # -- wiring ------------------------------------------------------------------

    def _wire_fu_inputs(self) -> None:
        cdfg = self.cdfg
        fu_of = self.binding.fu_of
        add_driver = self.datapath.add_driver
        full = self.parent is None
        for state in self.stg.states.values():
            sid = state.id
            for op in state.ops:
                node = cdfg.node(op.node)
                if not node.needs_fu:
                    continue
                fu_id = fu_of(op.node).id
                for k, edge in enumerate(cdfg.in_edges(op.node)):
                    key = ("fu_in", fu_id, k)
                    if full:
                        add_driver(key, edge.width, op.node, sid,
                                   self._resolve_edge(edge, sid))
                    elif self._port_dirty(key):
                        self._wire(key, edge.width, op.node, sid,
                                   self._resolve_edge(edge, sid))
                    else:
                        self._share(key)

    def _wire_memory_inputs(self) -> None:
        """Route address (and store-data) buses onto each RAM port.

        Accesses sharing a (array, port) pair across states mux onto one
        address bus, exactly like operations sharing an FU input port.
        """
        cdfg = self.cdfg
        mems = self.binding.mems
        add_driver = self.datapath.add_driver
        full = self.parent is None
        for state in self.stg.states.values():
            sid = state.id
            for op in state.ops:
                node = cdfg.node(op.node)
                if node.mem is None:
                    continue
                mem = mems[node.mem]
                port = mem.port_of[op.node]
                addr_bits = max(1, (mem.depth - 1).bit_length())
                targets = [(("mem_addr", node.mem, port), addr_bits,
                            cdfg.in_edge(op.node, 0))]
                if node.kind is OpKind.STORE:
                    targets.append((("mem_din", node.mem, port), mem.width,
                                    cdfg.in_edge(op.node, 1)))
                for key, width, edge in targets:
                    if full:
                        add_driver(key, width, op.node, sid,
                                   self._resolve_edge(edge, sid))
                    elif self._port_dirty(key):
                        self._wire(key, width, op.node, sid,
                                   self._resolve_edge(edge, sid))
                    else:
                        self._share(key)

    def _wire_register_inputs(self) -> None:
        cdfg = self.cdfg
        reg_of = self.binding.reg_of
        add_driver = self.datapath.add_driver
        tmp_regs = self.datapath.tmp_regs
        full = self.parent is None
        for state in self.stg.states.values():
            sid = state.id
            for op in state.ops:
                node = cdfg.node(op.node)
                if node.carrier is not None:
                    reg = reg_of(node.carrier)
                    key = ("reg_in", reg.id)
                    width = reg.width
                elif op.node in tmp_regs:
                    key = ("tmp_in", op.node)
                    width = node.width
                else:
                    continue
                if full:
                    add_driver(key, width, op.node, sid,
                               self._producer_signal(op.node, sid))
                elif self._port_dirty(key):
                    self._wire(key, width, op.node, sid,
                               self._producer_signal(op.node, sid))
                else:
                    self._share(key)
        # Primary inputs load their variable registers at pass start.
        start = self.stg.start
        for node_id in cdfg.input_nodes:
            node = cdfg.node(node_id)
            reg = reg_of(node.carrier)
            key = ("reg_in", reg.id)
            if full:
                add_driver(key, reg.width, node_id, start, ("pin", node.carrier))
            elif self._port_dirty(key):
                self._wire(key, reg.width, node_id, start, ("pin", node.carrier))
            else:
                self._share(key)

    # -- controller -------------------------------------------------------------------

    def _controller_model(self) -> ControllerModel:
        select_lines = 0
        for port in self.datapath.ports.values():
            if port.needs_mux():
                select_lines += max(1, (len(port.sources) - 1).bit_length())
        write_enables = len(self.binding.regs) + len(self.datapath.tmp_regs)
        write_enables += sum(m.spec.ports for m in self.binding.mems.values())
        fu_enables = len(self.binding.fus)
        cond_inputs = len(self.stg.condition_inputs())
        return ControllerModel(
            n_states=self.stg.n_states,
            n_transitions=len(self.stg.transitions),
            n_condition_inputs=cond_inputs,
            n_outputs=select_lines + write_enables + fu_enables,
        )
