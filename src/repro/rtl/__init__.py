"""RT-level architecture: datapath, multiplexer trees, controller.

An :class:`~repro.rtl.architecture.Architecture` bundles the structural
result of synthesis — functional-unit instances, registers, the multiplexer
network feeding every FU input port and register input, and the controller
FSM derived from the STG.  It is rebuilt deterministically from
``(CDFG, Binding, STG)`` by :mod:`repro.rtl.builder`; multiplexer tree
*shapes* are the one overlay that moves edit in place (Section 3.2.1).
"""

from repro.rtl.mux import MuxSource, MuxTree, balanced_tree, tree_from_pairs
from repro.rtl.datapath import Datapath, MuxPort, PortKey, SourceKey
from repro.rtl.controller import ControllerModel
from repro.rtl.architecture import Architecture
from repro.rtl.builder import build_architecture

__all__ = [
    "MuxSource",
    "MuxTree",
    "balanced_tree",
    "tree_from_pairs",
    "Datapath",
    "MuxPort",
    "PortKey",
    "SourceKey",
    "ControllerModel",
    "Architecture",
    "build_architecture",
]
