"""Datapath structure: ports, sources, and the multiplexer network.

Source keys identify physical signals feeding a multiplexer input:

* ``("reg", reg_id)``    — a variable register's output;
* ``("tmp", node_id)``   — a temporary register holding one node's value;
* ``("fu", fu_id)``      — a functional unit's combinational output
  (operator chaining within a state);
* ``("wire", node_id)``  — free wiring: a chained COPY or constant shift;
* ``("const", value)``   — a constant tie-off;
* ``("pin", var)``       — a primary input pin (loads the input register).

Port keys identify where a multiplexer (tree) sits:

* ``("fu_in", fu_id, port_index)`` — a functional unit's data input;
* ``("reg_in", reg_id)``           — a variable register's data input;
* ``("tmp_in", node_id)``          — a temporary register's data input.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ArchitectureError
from repro.rtl.mux import MuxSource, MuxTree, balanced_tree

SourceKey = tuple
PortKey = tuple


@dataclass
class MuxPort:
    """One multiplexed input point in the datapath.

    ``drivers`` maps (consumer node, state id) -> the source selected when
    that consumer executes in that state; ``tree`` is None when a single
    source needs no multiplexer.
    """

    key: PortKey
    width: int
    sources: list[SourceKey] = field(default_factory=list)
    drivers: dict[tuple[int, int], SourceKey] = field(default_factory=dict)
    tree: MuxTree | None = None

    def n_sources(self) -> int:
        return len(self.sources)

    def needs_mux(self) -> bool:
        return len(self.sources) > 1

    def build_default_tree(self) -> None:
        """(Re)build the balanced tree over the port's sources."""
        if self.needs_mux():
            self.tree = balanced_tree([MuxSource(k) for k in self.sources])
        else:
            self.tree = None

    def depth_of(self, source: SourceKey) -> int:
        if self.tree is None:
            return 0
        return self.tree.depth_of(source)

    def max_depth(self) -> int:
        return 0 if self.tree is None else self.tree.max_depth()

    def n_muxes(self) -> int:
        return 0 if self.tree is None else self.tree.n_muxes()

    def clone(self) -> "MuxPort":
        """Shallow structural copy (tree object shared until replaced)."""
        return MuxPort(key=self.key, width=self.width,
                       sources=list(self.sources), drivers=dict(self.drivers),
                       tree=self.tree)

    def driver_states(self) -> set[int]:
        """All state ids with an execution selecting through this port."""
        return {state for (_consumer, state) in self.drivers}


@dataclass
class Datapath:
    """All structural elements of the synthesized datapath."""

    ports: dict[PortKey, MuxPort] = field(default_factory=dict)
    tmp_regs: dict[int, int] = field(default_factory=dict)  # node id -> width

    def port(self, key: PortKey) -> MuxPort:
        try:
            return self.ports[key]
        except KeyError:
            raise ArchitectureError(f"no datapath port {key!r}") from None

    def add_driver(self, key: PortKey, width: int, consumer: int, state: int,
                   source: SourceKey) -> None:
        port = self.ports.get(key)
        if port is None:
            port = MuxPort(key=key, width=width)
            self.ports[key] = port
        port.width = max(port.width, width)
        if source not in port.sources:
            port.sources.append(source)
        port.drivers[(consumer, state)] = source

    def finalize_trees(self) -> None:
        for port in self.ports.values():
            if port.tree is None:
                port.build_default_tree()

    def clone_port(self, key: PortKey) -> MuxPort:
        """Replace a port with its clone in place (copy-on-write edits).

        Dict assignment to an existing key keeps its position, so
        iteration order — which downstream accumulation relies on — is
        unchanged.  Architectures derived incrementally share port
        objects with their parent; cloning before mutation keeps the
        parent's datapath intact.
        """
        port = self.port(key).clone()
        self.ports[key] = port
        return port

    def total_mux_count(self) -> int:
        return sum(p.n_muxes() for p in self.ports.values())

    def mux_ports(self) -> list[MuxPort]:
        return [p for p in self.ports.values() if p.needs_mux()]
