"""RAM specifications for array (process-scoped memory) synthesis.

Arrays lower to on-chip RAM instances.  A :class:`RamSpec` characterizes
one RAM organization the way :class:`~repro.library.module.ModuleSpec`
characterizes a functional unit: delay/area/capacitance at a reference
geometry, plus the number of simultaneously usable access ports.  The
``SubstituteRam`` move swaps an array's organization (single- vs
dual-port); the ``BindMemoryPort`` move reassigns one access to another
port of a multi-port RAM — both are first-class IMPACT moves alongside
FU sharing and module substitution.

Access-delay model: a RAM access is address-decode (grows with
log2(depth)) plus bit-line/sense time (grows weakly with width).  Areas
are gate-equivalent units per bit plus a per-port decoder overhead;
capacitance is per access (one word's bit lines plus the decoder).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Reference geometry for the characterization numbers below.
REFERENCE_DEPTH = 16
REFERENCE_WIDTH = 16


@dataclass(frozen=True)
class RamSpec:
    """One RAM organization: port count and characterization.

    ``access_ns`` / ``area_per_bit`` / ``cap_pf`` are the values at
    :data:`REFERENCE_DEPTH` words of :data:`REFERENCE_WIDTH` bits, 5 V.
    """

    name: str
    ports: int
    access_ns: float
    area_per_bit: float
    cap_pf: float

    def __post_init__(self) -> None:
        if self.ports < 1:
            raise ValueError(f"{self.name}: need at least one port")
        if self.access_ns <= 0 or self.area_per_bit <= 0 or self.cap_pf <= 0:
            raise ValueError(f"{self.name}: characterization must be positive")


#: The two organizations every array can choose between.  Dual-port pays
#: roughly 30 % delay and capacitance and nearly double the cell area
#: (two word lines / two bit-line pairs per cell) for same-state access
#: parallelism.
RAM_SPECS: tuple[RamSpec, ...] = (
    RamSpec("ram_1p", ports=1, access_ns=6.0, area_per_bit=1.6, cap_pf=0.50),
    RamSpec("ram_2p", ports=2, access_ns=7.8, area_per_bit=3.0, cap_pf=0.65),
)

_BY_NAME = {spec.name: spec for spec in RAM_SPECS}


def ram_spec(name: str) -> RamSpec:
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"no RAM organization named {name!r}") from None


def _geometry_factor(width: int, depth: int) -> float:
    """Delay growth with geometry: decode is logarithmic in depth, the
    sense path weakly (logarithmically) wider with word width."""
    decode = math.log2(max(depth, 2)) / math.log2(REFERENCE_DEPTH)
    sense = math.log2(max(width, 2)) / math.log2(REFERENCE_WIDTH)
    return 0.7 * decode + 0.3 * sense


def ram_access_delay(spec: RamSpec, width: int, depth: int) -> float:
    """Address-to-data (read) / write-setup delay in ns (floor 1 ns)."""
    return max(1.0, spec.access_ns * _geometry_factor(width, depth))


def ram_area(spec: RamSpec, width: int, depth: int) -> float:
    """Area in gate-equivalent units: cell array plus per-port decoders."""
    decoder = 12.0 * spec.ports * math.log2(max(depth, 2))
    return spec.area_per_bit * width * depth + decoder


def ram_access_cap(spec: RamSpec, width: int, depth: int) -> float:
    """Effective switched capacitance (pF) of one access."""
    return spec.cap_pf * (width / REFERENCE_WIDTH) * _geometry_factor(width, depth)
