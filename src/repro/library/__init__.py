"""The RT-level module library.

The paper synthesizes against the MSU standard-cell library; each operation
has several implementations trading delay against area and energy (e.g.
array vs. Wallace-tree multipliers, Section 3.2.2).  We characterize an
equivalent library with the paper's anchor numbers: a (ripple) adder takes
10 ns, a 2:1 multiplexer 3 ns, chaining adds 10 % delay overhead, and the
nominal clock period is 15 ns at Vdd = 5 V.
"""

from repro.library.module import ModuleSpec, scale_delay, scale_area, scale_capacitance
from repro.library.library import ModuleLibrary
from repro.library.modules_data import default_library, DEFAULT_CLOCK_NS, MUX_DELAY_NS, CHAIN_OVERHEAD
from repro.library.voltage import (
    NOMINAL_VDD,
    MIN_VDD,
    THRESHOLD_V,
    delay_scale,
    power_scale,
    max_vdd_scaling,
)

__all__ = [
    "ModuleSpec",
    "ModuleLibrary",
    "default_library",
    "DEFAULT_CLOCK_NS",
    "MUX_DELAY_NS",
    "CHAIN_OVERHEAD",
    "NOMINAL_VDD",
    "MIN_VDD",
    "THRESHOLD_V",
    "delay_scale",
    "power_scale",
    "max_vdd_scaling",
    "scale_delay",
    "scale_area",
    "scale_capacitance",
]
