"""First-order CMOS supply-voltage scaling.

After synthesis, a design whose worst per-state combinational path is
shorter than the clock period can run at a reduced Vdd until the slack is
consumed — the A-Power / I-Power comparison of Section 4 relies on this.
Standard long-channel model (Chandrakasan):

    delay(V)  proportional to  V / (V - Vt)^2
    power(V)  proportional to  V^2
"""

from __future__ import annotations

from scipy.optimize import brentq

NOMINAL_VDD = 5.0
THRESHOLD_V = 0.8
MIN_VDD = 1.1


def delay_scale(vdd: float, nominal: float = NOMINAL_VDD) -> float:
    """Combinational delay multiplier at ``vdd`` relative to ``nominal``."""
    if vdd <= THRESHOLD_V:
        raise ValueError(f"vdd {vdd} must exceed the threshold {THRESHOLD_V}")
    def drive(v: float) -> float:
        return v / (v - THRESHOLD_V) ** 2
    return drive(vdd) / drive(nominal)


def power_scale(vdd: float, nominal: float = NOMINAL_VDD) -> float:
    """Dynamic power multiplier at ``vdd`` relative to ``nominal``."""
    return (vdd / nominal) ** 2


def max_vdd_scaling(slack_ratio: float) -> float:
    """Lowest Vdd whose slowed-down critical path still fits the clock.

    ``slack_ratio`` = clock period / worst per-state path delay at 5 V
    (>= 1.0 when the design is legal).  Returns the Vdd in
    ``[MIN_VDD, NOMINAL_VDD]`` such that ``delay_scale(vdd) == slack_ratio``,
    clamped at both ends.
    """
    if slack_ratio <= 1.0:
        return NOMINAL_VDD
    if delay_scale(MIN_VDD) <= slack_ratio:
        return MIN_VDD
    return float(brentq(lambda v: delay_scale(v) - slack_ratio, MIN_VDD, NOMINAL_VDD,
                        xtol=1e-6))
