"""Module specifications and width-scaling laws.

Every module is characterized at a reference width of 16 bits and 5 V; the
``*_scaling`` fields say how each quantity grows with bit width:

* ``"linear"`` — proportional to width (ripple carry chains, register files);
* ``"log"``    — proportional to log2(width) (carry-lookahead, tree muxes);
* ``"quad"``   — proportional to width^2 (array / tree multipliers);
* ``"const"``  — width-independent (bitwise logic delay).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.cdfg.node import OpKind

REFERENCE_WIDTH = 16

_SCALINGS = ("linear", "log", "quad", "const")


def _scale_factor(scaling: str, width: int) -> float:
    if scaling == "linear":
        return width / REFERENCE_WIDTH
    if scaling == "log":
        return math.log2(max(width, 2)) / math.log2(REFERENCE_WIDTH)
    if scaling == "quad":
        return (width / REFERENCE_WIDTH) ** 2
    if scaling == "const":
        return 1.0
    raise ValueError(f"unknown scaling law {scaling!r}")


@dataclass(frozen=True)
class ModuleSpec:
    """One library module: the ops it implements and its characterization.

    ``delay_ns`` / ``area`` / ``cap_pf`` are the values at
    :data:`REFERENCE_WIDTH` bits and 5 V.  ``cap_pf`` is the effective
    switched capacitance per activation at full input activity — the power
    models multiply it by measured activity factors and Vdd^2.
    """

    name: str
    ops: frozenset[OpKind]
    delay_ns: float
    area: float
    cap_pf: float
    delay_scaling: str = "linear"
    area_scaling: str = "linear"
    cap_scaling: str = "linear"

    def __post_init__(self) -> None:
        for field_name in ("delay_scaling", "area_scaling", "cap_scaling"):
            if getattr(self, field_name) not in _SCALINGS:
                raise ValueError(f"{self.name}: bad {field_name}")
        if self.delay_ns <= 0 or self.area <= 0 or self.cap_pf <= 0:
            raise ValueError(f"{self.name}: characterization must be positive")

    def implements(self, kind: OpKind) -> bool:
        return kind in self.ops

    def implements_all(self, kinds: frozenset[OpKind] | set[OpKind]) -> bool:
        return kinds <= self.ops


def scale_delay(spec: ModuleSpec, width: int) -> float:
    """Module delay (ns) at a given bit width (floor 0.3 ns)."""
    return max(0.3, spec.delay_ns * _scale_factor(spec.delay_scaling, width))


def scale_area(spec: ModuleSpec, width: int) -> float:
    """Module area (gate-equivalent units) at a given bit width."""
    return spec.area * _scale_factor(spec.area_scaling, width)


def scale_capacitance(spec: ModuleSpec, width: int) -> float:
    """Effective switched capacitance (pF per activation) at a bit width."""
    return spec.cap_pf * _scale_factor(spec.cap_scaling, width)
