"""The characterized default library.

Anchored to the paper's worked example (Section 3.2.1): adder = 10 ns, 2:1
multiplexer = 3 ns, 10 % chaining overhead, 15 ns nominal clock at 5 V.
Areas are gate-equivalent units; capacitances give energies in pJ when
multiplied by Vdd^2 (so a 1 pF module at 5 V burns 25 pJ per activation at
full activity — a continuously-busy 16-bit ripple adder then dissipates
about 1.5 mW at a 15 ns clock, in line with the example's magnitudes).

Implementation diversity per op class (the raw material of the module
selection/substitution move):

========== ==================== ====================================
op class   slow / small         fast / large
========== ==================== ====================================
add        ``add_ripple``       ``add_cla``
add+sub    ``addsub_ripple``    ``addsub_cla``
sub        ``sub_ripple``       (covered by addsub_cla)
mul        ``mul_array``        ``mul_wallace``
compare    ``cmp_ripple``       ``cmp_fast`` (+ ``eq_fast`` for ==/!=)
logic      ``logic_unit``
shift      ``barrel_shifter``
multi-op   ``alu`` (add/sub/compare on one unit)
========== ==================== ====================================
"""

from __future__ import annotations

from repro.cdfg.node import OpKind
from repro.library.library import ModuleLibrary
from repro.library.module import ModuleSpec

#: Nominal clock period (ns) at 5 V — the paper's worked-example value.
DEFAULT_CLOCK_NS = 15.0

#: Delay of one 2:1 multiplexer stage (ns) — paper value.
MUX_DELAY_NS = 3.0

#: Fractional delay overhead per chained (non-first) unit in a state.
CHAIN_OVERHEAD = 0.10

#: Register characterization (per bit).
REGISTER_AREA_PER_BIT = 8.0
REGISTER_CAP_PER_BIT = 0.020   # data-toggle capacitance, pF/bit
REGISTER_CLOCK_CAP_PER_BIT = 0.004  # clock-load capacitance, pF/bit/cycle

#: 2:1 multiplexer characterization (per bit of data width).  The
#: capacitance is calibrated so that shared CFI datapaths spend a large
#: fraction of their power in the multiplexer network, as the paper's
#: layout measurements report ([13]: interconnect > 40 %); see DESIGN.md.
MUX_AREA_PER_BIT = 3.0
MUX_CAP_PER_BIT = 0.055

_COMPARE = frozenset({OpKind.LT, OpKind.GT, OpKind.LE, OpKind.GE, OpKind.EQ, OpKind.NE})
_EQUALITY = frozenset({OpKind.EQ, OpKind.NE})
_LOGIC = frozenset({OpKind.LAND, OpKind.LOR, OpKind.LNOT,
                    OpKind.BAND, OpKind.BOR, OpKind.BXOR})
_SHIFT = frozenset({OpKind.SHL, OpKind.SHR})

_MODULES = (
    # adders / subtractors
    ModuleSpec("add_ripple", frozenset({OpKind.ADD}), 10.0, 145.0, 0.90,
               "linear", "linear", "linear"),
    ModuleSpec("add_cla", frozenset({OpKind.ADD}), 6.0, 250.0, 1.35,
               "log", "linear", "linear"),
    ModuleSpec("sub_ripple", frozenset({OpKind.SUB}), 10.0, 150.0, 0.92,
               "linear", "linear", "linear"),
    ModuleSpec("addsub_ripple", frozenset({OpKind.ADD, OpKind.SUB}), 10.5, 170.0, 1.00,
               "linear", "linear", "linear"),
    ModuleSpec("addsub_cla", frozenset({OpKind.ADD, OpKind.SUB}), 6.5, 280.0, 1.45,
               "log", "linear", "linear"),
    # multipliers
    ModuleSpec("mul_array", frozenset({OpKind.MUL}), 28.0, 1400.0, 6.0,
               "linear", "quad", "quad"),
    ModuleSpec("mul_wallace", frozenset({OpKind.MUL}), 14.0, 2100.0, 7.5,
               "log", "quad", "quad"),
    # comparators
    ModuleSpec("cmp_ripple", _COMPARE, 8.0, 95.0, 0.45,
               "linear", "linear", "linear"),
    ModuleSpec("cmp_fast", _COMPARE, 5.0, 160.0, 0.62,
               "log", "linear", "linear"),
    ModuleSpec("eq_fast", _EQUALITY, 3.0, 45.0, 0.22,
               "log", "linear", "linear"),
    # logic and shifts
    ModuleSpec("logic_unit", _LOGIC, 2.0, 50.0, 0.26,
               "const", "linear", "linear"),
    ModuleSpec("barrel_shifter", _SHIFT, 7.0, 190.0, 0.85,
               "log", "linear", "linear"),
    # multi-function unit
    ModuleSpec("alu", frozenset({OpKind.ADD, OpKind.SUB}) | _COMPARE, 11.0, 230.0, 1.20,
               "linear", "linear", "linear"),
)


def default_library() -> ModuleLibrary:
    """The library every experiment in the reproduction uses."""
    return ModuleLibrary(_MODULES)
