"""Library queries: which modules implement an op, fastest/smallest picks."""

from __future__ import annotations

from repro.errors import LibraryError
from repro.cdfg.node import OpKind
from repro.library.module import ModuleSpec, scale_area, scale_delay


class ModuleLibrary:
    """An immutable collection of :class:`ModuleSpec` with lookup helpers."""

    def __init__(self, modules: tuple[ModuleSpec, ...] | list[ModuleSpec]):
        if not modules:
            raise LibraryError("module library is empty")
        self._modules = tuple(modules)
        self._by_name = {m.name: m for m in self._modules}
        if len(self._by_name) != len(self._modules):
            raise LibraryError("duplicate module names in library")
        self._cand_memo: dict[frozenset, list[ModuleSpec]] = {}

    def __iter__(self):
        return iter(self._modules)

    def __len__(self) -> int:
        return len(self._modules)

    def get(self, name: str) -> ModuleSpec:
        try:
            return self._by_name[name]
        except KeyError:
            raise LibraryError(f"no module named {name!r}") from None

    def candidates(self, kinds: frozenset[OpKind] | set[OpKind]) -> list[ModuleSpec]:
        """Modules implementing every op kind in ``kinds``, memoized.

        The library is immutable, so each distinct kind set is scanned
        once; callers must not mutate the returned list.
        """
        kinds = frozenset(kinds)
        found = self._cand_memo.get(kinds)
        if found is None:
            found = [m for m in self._modules if m.implements_all(kinds)]
            self._cand_memo[kinds] = found
        return found

    def fastest(self, kinds: frozenset[OpKind] | set[OpKind], width: int) -> ModuleSpec:
        """The lowest-delay module implementing ``kinds`` at ``width``."""
        found = self.candidates(kinds)
        if not found:
            raise LibraryError(f"no module implements {sorted(k.value for k in kinds)}")
        return min(found, key=lambda m: (scale_delay(m, width), scale_area(m, width)))

    def smallest(self, kinds: frozenset[OpKind] | set[OpKind], width: int) -> ModuleSpec:
        """The lowest-area module implementing ``kinds`` at ``width``."""
        found = self.candidates(kinds)
        if not found:
            raise LibraryError(f"no module implements {sorted(k.value for k in kinds)}")
        return min(found, key=lambda m: (scale_area(m, width), scale_delay(m, width)))

    def alternatives(self, spec: ModuleSpec, kinds: frozenset[OpKind] | set[OpKind]) -> list[ModuleSpec]:
        """Other modules that could substitute for ``spec`` on ``kinds``."""
        return [m for m in self.candidates(kinds) if m.name != spec.name]
