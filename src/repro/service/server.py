"""The asyncio job server behind ``python -m repro serve``.

Newline-delimited JSON over TCP: each request line is an object with an
``op`` (``submit`` / ``stats`` / ``ping``) and each response line an
object with an ``event``.  Accepted jobs flow through a bounded
:class:`asyncio.Queue` into a supervised process worker pool sharing one
persistent artifact store; a full queue answers immediately with a
429-style ``rejected`` event instead of buffering unboundedly.  See
``docs/service.md`` for the protocol and a worked example.

Fault-tolerance properties the tests pin down (``tests/test_faults.py``
and the ``chaos-smoke`` CI job drive them under pinned
:mod:`repro.faults` plans):

* a worker that dies mid-job (SIGKILL, OOM) never poisons the pool —
  the slot is rebuilt (``worker_restarts`` in stats), the job is
  classified *transient* and retried with seeded jittered backoff;
* a hung or timed-out job gets its worker **hard-killed**, so capacity
  always recovers — a wedged worker cannot exist;
* deterministic failures (validation, synthesis exceptions) are never
  retried; the ``error`` event reports the classification (``class``);
* every accepted/started/finished transition is journaled durably
  (``journal.ndjson`` in the store directory), so ``repro serve
  --resume`` re-enqueues whatever a crashed server left unfinished,
  exactly once;
* SIGTERM drains: clients get a ``draining`` event, new submissions are
  rejected (503), queued work is finished within ``--drain-timeout``,
  and the rest is journaled for the next ``--resume``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os

from repro.faults import FaultPlan, plan_from_env
from repro.service.errors import (
    CLASS_TRANSIENT,
    JobTimeoutError,
    WorkerCrash,
    backoff_delay,
)
from repro.service.jobs import validate_job
from repro.service.journal import (
    JOURNAL_NAME,
    JobJournal,
    next_job_id,
    read_journal,
    unfinished_jobs,
)
from repro.service.pool import SupervisedPool
from repro.store import STORE_DIR_ENV, open_store

#: Default in-memory cache bound inside workers: long-lived pool
#: processes must not grow without bound across jobs (the store holds
#: the durable copies; memory is just the hot front).
DEFAULT_WORKER_CACHE_ENTRIES = 256

#: Default seconds a graceful shutdown waits for queued jobs to finish.
DEFAULT_DRAIN_TIMEOUT_S = 10.0


class _Conn:
    """One client connection; serializes writes so events never interleave.

    The first failed write marks the connection **dead**: later sends
    are skipped instead of re-raising into every job that still streams
    to it, and the server's ``disconnected_clients`` counter ticks once.
    """

    def __init__(self, writer: asyncio.StreamWriter, on_dead=None):
        self.writer = writer
        self.dead = False
        self._on_dead = on_dead
        self._lock = asyncio.Lock()

    async def send(self, payload: dict) -> None:
        if self.dead:
            return  # its queued jobs still run; results go to the journal
        line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        async with self._lock:
            try:
                self.writer.write(line)
                await self.writer.drain()
            except (ConnectionError, RuntimeError, OSError):
                self._mark_dead()

    def drop(self) -> None:
        """Sever this client deliberately (the ``drop_conn`` fault)."""
        self._mark_dead()

    def _mark_dead(self) -> None:
        if self.dead:
            return
        self.dead = True
        if self._on_dead is not None:
            self._on_dead(self)
        try:
            self.writer.close()
        except Exception:
            pass


class _NullConn:
    """The client of a resumed job: nobody is listening, events drop."""

    dead = False

    async def send(self, payload: dict) -> None:
        pass


_NULL_CONN = _NullConn()


class JobServer:
    """Bounded job queue + supervised worker pool over a shared store.

    ``workers=0`` starts no consumers (and no process pool): submissions
    are accepted until the queue fills, then rejected with 429 — the
    deterministic back-pressure test mode.

    ``fault_plan`` (a :class:`repro.faults.FaultPlan`, a spec string, or
    ``None`` = consult ``$REPRO_FAULTS``) scripts deterministic failures
    for chaos testing; ``resume=True`` re-enqueues the journal's
    accepted-but-unfinished jobs at startup.
    """

    def __init__(self, *, store_dir=None, queue_size: int = 8,
                 workers: int = 2, job_timeout_s: float = 600.0,
                 retries: int = 1,
                 max_cache_entries: int | None = DEFAULT_WORKER_CACHE_ENTRIES,
                 journal_path=None, resume: bool = False,
                 fault_plan: FaultPlan | str | None = None,
                 drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S,
                 backoff_base_s: float = 0.1, backoff_cap_s: float = 2.0):
        if store_dir is None:
            store_dir = os.environ.get(STORE_DIR_ENV)
        self.store_dir = str(store_dir) if store_dir else None
        self.queue_size = queue_size
        self.workers = workers
        self.job_timeout_s = job_timeout_s
        self.retries = retries
        self.max_cache_entries = max_cache_entries
        self.resume = resume
        self.drain_timeout_s = drain_timeout_s
        self.backoff_base_s = backoff_base_s
        self.backoff_cap_s = backoff_cap_s
        if journal_path is None and self.store_dir:
            journal_path = os.path.join(self.store_dir, JOURNAL_NAME)
        self.journal_path = str(journal_path) if journal_path else None
        self._journal = (JobJournal(self.journal_path)
                         if self.journal_path else None)
        if isinstance(fault_plan, str):
            fault_plan = FaultPlan.parse(fault_plan)
        self._plan = fault_plan if fault_plan is not None else plan_from_env()
        self._backoff_seed = self._plan.seed if self._plan is not None else 0
        self.port: int | None = None
        self._ids = itertools.count(1)
        self._queue: asyncio.Queue | None = None
        self._pool: SupervisedPool | None = None
        self._consumers: list[asyncio.Task] = []
        self._conns: set[_Conn] = set()
        self._open_jobs: dict[int, dict] = {}
        self._done = 0
        self._failed = 0
        self._retried = 0
        self._resumed = 0
        self._disconnected = 0
        self._draining = False
        #: Submissions past the full-check but not yet queued (the
        #: journal append awaits in between; without this, concurrent
        #: submits could overfill the bounded queue).
        self._reserved = 0

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.base_events.Server:
        """Bind and start serving; returns the asyncio server object."""
        backlog: list[tuple[int, dict]] = []
        if self.resume and self.journal_path:
            records = read_journal(self.journal_path)
            backlog = unfinished_jobs(records)
            if records:
                self._ids = itertools.count(next_job_id(records))
        # Resumed jobs must all fit even when they outnumber the bound.
        self._queue = asyncio.Queue(
            maxsize=max(self.queue_size, len(backlog)))
        if self.workers > 0:
            self._pool = SupervisedPool(self.workers,
                                        job_timeout_s=self.job_timeout_s)
            self._consumers = [asyncio.ensure_future(self._consume(slot))
                               for slot in range(self.workers)]
        if backlog:
            await self._journal_record(
                {"rec": "resumed", "ids": [job_id for job_id, _ in backlog]})
            for job_id, job in backlog:
                self._open_jobs[job_id] = job
                self._queue.put_nowait((job_id, job, _NULL_CONN))
                self._resumed += 1
        server = await asyncio.start_server(self._handle, host, port)
        self.port = server.sockets[0].getsockname()[1]
        return server

    async def drain(self, timeout_s: float | None = None) -> dict:
        """Graceful shutdown: notify, finish what fits, journal the rest.

        Broadcasts a ``draining`` event to every live client, rejects
        new submissions (503), waits up to ``timeout_s`` for the queue
        to empty, then journals the ids it could not finish — the next
        ``--resume`` picks exactly those up.
        """
        if timeout_s is None:
            timeout_s = self.drain_timeout_s
        self._draining = True
        for conn in list(self._conns):
            await conn.send({"event": "draining"})
        if self._queue is not None and self.workers > 0:
            try:
                await asyncio.wait_for(self._queue.join(), timeout=timeout_s)
            except asyncio.TimeoutError:
                pass
        pending = sorted(self._open_jobs)
        await self._journal_record({"rec": "draining", "pending": pending})
        return {"pending": pending}

    async def close(self) -> None:
        """Stop consumers (awaited, not abandoned) and join the pool."""
        for task in self._consumers:
            task.cancel()
        if self._consumers:
            await asyncio.gather(*self._consumers, return_exceptions=True)
        self._consumers = []
        if self._pool is not None:
            pool, self._pool = self._pool, None
            await asyncio.get_event_loop().run_in_executor(
                None, pool.shutdown)

    # -- journal -----------------------------------------------------------------

    async def _journal_record(self, rec: dict) -> None:
        """Append one journal record off the event loop (fsync blocks)."""
        if self._journal is None:
            return
        await asyncio.get_event_loop().run_in_executor(
            None, self._journal.record, rec)

    # -- connection handling -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn = _Conn(writer, on_dead=self._conn_died)
        self._conns.add(conn)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except ValueError:
                    await conn.send({"event": "rejected", "code": 400,
                                     "error": "request is not valid JSON"})
                    continue
                await self._dispatch(request, conn)
        finally:
            self._conns.discard(conn)
            try:
                writer.close()
            except Exception:
                pass

    def _conn_died(self, conn: _Conn) -> None:
        self._disconnected += 1
        self._conns.discard(conn)

    async def _dispatch(self, request, conn: _Conn) -> None:
        op = request.get("op") if isinstance(request, dict) else None
        if op == "ping":
            await conn.send({"event": "pong"})
        elif op == "stats":
            await conn.send({"event": "stats", **await self._stats()})
        elif op == "submit":
            await self._submit(request.get("job"), conn)
        else:
            await conn.send({"event": "rejected", "code": 400,
                             "error": f"unknown op {op!r}"})

    async def _submit(self, job, conn: _Conn) -> None:
        error = validate_job(job)
        if error is not None:
            await conn.send({"event": "rejected", "code": 400,
                             "error": error})
            return
        if self._draining:
            await conn.send({
                "event": "rejected", "code": 503, "kind": job["kind"],
                "error": "server is draining; resubmit to a fresh instance"})
            return
        if self._queue.qsize() + self._reserved >= self.queue_size:
            await conn.send({
                "event": "rejected", "code": 429, "kind": job["kind"],
                "error": f"queue full ({self.queue_size} jobs); retry later"})
            return
        job_id = next(self._ids)
        self._open_jobs[job_id] = job
        self._reserved += 1
        try:
            # Journal before queueing: a job the client saw accepted is
            # always resumable; a crash in the window between journal
            # and ack re-runs the job, never loses it.
            await self._journal_record({"rec": "accepted", "id": job_id,
                                        "kind": job["kind"], "job": job})
            self._queue.put_nowait((job_id, job, conn))
        finally:
            self._reserved -= 1
        await conn.send({"event": "accepted", "id": job_id,
                         "kind": job["kind"]})

    # -- job execution -----------------------------------------------------------

    async def _consume(self, slot: int) -> None:
        while True:
            job_id, job, conn = await self._queue.get()
            try:
                await self._run_job(slot, job_id, job, conn)
            finally:
                self._open_jobs.pop(job_id, None)
                self._queue.task_done()

    async def _run_job(self, slot: int, job_id: int, job: dict,
                       conn) -> None:
        await conn.send({"event": "started", "id": job_id})
        if self._plan is not None and self._plan.take_drop_conn(job_id):
            conn.drop()
        attempt = 0
        while True:
            attempt += 1
            await self._journal_record({"rec": "started", "id": job_id,
                                        "attempt": attempt})
            faults = (self._plan.take_worker_faults(job_id)
                      if self._plan is not None else None)
            try:
                status, payload = await self._pool.run(
                    slot, (job, self.store_dir, self.max_cache_entries,
                           faults))
            except asyncio.CancelledError:
                raise
            except (WorkerCrash, JobTimeoutError) as exc:
                message = f"{type(exc).__name__}: {exc}"
                klass = CLASS_TRANSIENT
            else:
                if status == "ok":
                    self._done += 1
                    await self._journal_record(
                        {"rec": "finished", "id": job_id,
                         "status": "result", "attempts": attempt})
                    await conn.send({"event": "result", "id": job_id,
                                     "attempts": attempt, "result": payload})
                    return
                type_name, detail, klass = payload
                message = f"{type_name}: {detail}"
            if klass == CLASS_TRANSIENT and attempt <= self.retries:
                self._retried += 1
                await asyncio.sleep(backoff_delay(
                    attempt, job_id=job_id, seed=self._backoff_seed,
                    base_s=self.backoff_base_s, cap_s=self.backoff_cap_s))
                continue
            self._failed += 1
            await self._journal_record(
                {"rec": "finished", "id": job_id, "status": "error",
                 "attempts": attempt, "class": klass, "error": message})
            await conn.send({"event": "error", "id": job_id,
                             "attempts": attempt, "class": klass,
                             "error": message})
            return

    # -- introspection -----------------------------------------------------------

    async def _stats(self) -> dict:
        stats = {
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "queue_size": self.queue_size,
            "workers": self.workers,
            "worker_pids": self._pool.pids() if self._pool else [],
            "worker_restarts": self._pool.restarts if self._pool else 0,
            "done": self._done,
            "failed": self._failed,
            "retried": self._retried,
            "resumed": self._resumed,
            "disconnected_clients": self._disconnected,
            "draining": self._draining,
            "journal": self.journal_path,
            "store": None,
        }
        if self.store_dir:
            # Directory-walking disk I/O: off the event loop.
            stats["store"] = await asyncio.get_event_loop().run_in_executor(
                None, self._store_stats)
        return stats

    def _store_stats(self) -> dict:
        try:
            store = open_store(self.store_dir)
            return {"root": self.store_dir,
                    "size_bytes": store.size_bytes()}
        except Exception:
            return {"root": self.store_dir, "error": "unreadable"}


def serve(*, host: str = "127.0.0.1", port: int = 0, store_dir=None,
          queue_size: int = 8, workers: int = 2,
          job_timeout_s: float = 600.0, retries: int = 1,
          max_cache_entries: int | None = DEFAULT_WORKER_CACHE_ENTRIES,
          journal_path=None, resume: bool = False,
          fault_plan: FaultPlan | str | None = None,
          drain_timeout_s: float = DEFAULT_DRAIN_TIMEOUT_S) -> int:
    """Run the job server until SIGTERM/SIGINT (the ``repro serve`` body).

    Prints one ``{"event": "serving", ...}`` JSON line once bound —
    with ``port=0`` that line is how callers learn the chosen port.
    Termination is graceful: drain the queue, journal the rest.
    """
    import signal as _signal

    async def _run() -> None:
        server = JobServer(store_dir=store_dir, queue_size=queue_size,
                           workers=workers, job_timeout_s=job_timeout_s,
                           retries=retries,
                           max_cache_entries=max_cache_entries,
                           journal_path=journal_path, resume=resume,
                           fault_plan=fault_plan,
                           drain_timeout_s=drain_timeout_s)
        srv = await server.start(host=host, port=port)
        print(json.dumps({
            "event": "serving", "host": host, "port": server.port,
            "store": server.store_dir, "workers": workers,
            "journal": server.journal_path, "resumed": server._resumed,
            "faults": (server._plan.spec() if server._plan else None),
        }, sort_keys=True), flush=True)
        loop = asyncio.get_event_loop()
        stop = asyncio.Event()
        for sig in (_signal.SIGTERM, _signal.SIGINT):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass  # platforms/loops without signal support
        try:
            async with srv:
                await stop.wait()
                await server.drain()
                srv.close()
                await srv.wait_closed()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0
