"""The asyncio job server behind ``python -m repro serve``.

Newline-delimited JSON over TCP: each request line is an object with an
``op`` (``submit`` / ``stats`` / ``ping``) and each response line an
object with an ``event``.  Accepted jobs flow through a bounded
:class:`asyncio.Queue` into a process worker pool sharing one persistent
artifact store; a full queue answers immediately with a 429-style
``rejected`` event instead of buffering unboundedly.  See
``docs/service.md`` for the protocol and a worked example.

Durability properties the tests pin down:

* every store publish inside a worker is atomic (write-temp +
  ``os.replace``), so killing the server mid-job never leaves a partial
  artifact visible;
* a worker that cannot read the store computes cold instead of failing
  (:func:`repro.store.attached_cache` degradation);
* per-job timeout with bounded retries — a hung job surfaces as an
  ``error`` event, not a wedged queue.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import os
from concurrent.futures import ProcessPoolExecutor

from repro.service.jobs import execute_job, validate_job
from repro.store import STORE_DIR_ENV, open_store

#: Default in-memory cache bound inside workers: long-lived pool
#: processes must not grow without bound across jobs (the store holds
#: the durable copies; memory is just the hot front).
DEFAULT_WORKER_CACHE_ENTRIES = 256


class _Conn:
    """One client connection; serializes writes so events never interleave."""

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self._lock = asyncio.Lock()

    async def send(self, payload: dict) -> None:
        line = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        async with self._lock:
            try:
                self.writer.write(line)
                await self.writer.drain()
            except (ConnectionError, RuntimeError):
                pass  # client went away; its queued jobs still run


class JobServer:
    """Bounded job queue + process worker pool over a shared artifact store.

    ``workers=0`` starts no consumers (and no process pool): submissions
    are accepted until the queue fills, then rejected with 429 — the
    deterministic back-pressure test mode.
    """

    def __init__(self, *, store_dir=None, queue_size: int = 8,
                 workers: int = 2, job_timeout_s: float = 600.0,
                 retries: int = 1,
                 max_cache_entries: int | None = DEFAULT_WORKER_CACHE_ENTRIES):
        if store_dir is None:
            store_dir = os.environ.get(STORE_DIR_ENV)
        self.store_dir = str(store_dir) if store_dir else None
        self.queue_size = queue_size
        self.workers = workers
        self.job_timeout_s = job_timeout_s
        self.retries = retries
        self.max_cache_entries = max_cache_entries
        self.port: int | None = None
        self._ids = itertools.count(1)
        self._queue: asyncio.Queue | None = None
        self._executor: ProcessPoolExecutor | None = None
        self._consumers: list[asyncio.Task] = []
        self._done = 0
        self._failed = 0

    async def start(self, host: str = "127.0.0.1",
                    port: int = 0) -> asyncio.base_events.Server:
        """Bind and start serving; returns the asyncio server object."""
        self._queue = asyncio.Queue(maxsize=self.queue_size)
        if self.workers > 0:
            self._executor = ProcessPoolExecutor(max_workers=self.workers)
            self._consumers = [asyncio.ensure_future(self._consume())
                               for _ in range(self.workers)]
        server = await asyncio.start_server(self._handle, host, port)
        self.port = server.sockets[0].getsockname()[1]
        return server

    async def close(self) -> None:
        for task in self._consumers:
            task.cancel()
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)

    # -- connection handling -----------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        conn = _Conn(writer)
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                try:
                    request = json.loads(line)
                except ValueError:
                    await conn.send({"event": "rejected", "code": 400,
                                     "error": "request is not valid JSON"})
                    continue
                await self._dispatch(request, conn)
        finally:
            writer.close()

    async def _dispatch(self, request, conn: _Conn) -> None:
        op = request.get("op") if isinstance(request, dict) else None
        if op == "ping":
            await conn.send({"event": "pong"})
        elif op == "stats":
            await conn.send({"event": "stats", **self._stats()})
        elif op == "submit":
            await self._submit(request.get("job"), conn)
        else:
            await conn.send({"event": "rejected", "code": 400,
                             "error": f"unknown op {op!r}"})

    async def _submit(self, job, conn: _Conn) -> None:
        error = validate_job(job)
        if error is not None:
            await conn.send({"event": "rejected", "code": 400,
                             "error": error})
            return
        job_id = next(self._ids)
        try:
            self._queue.put_nowait((job_id, job, conn))
        except asyncio.QueueFull:
            await conn.send({
                "event": "rejected", "code": 429, "kind": job["kind"],
                "error": f"queue full ({self.queue_size} jobs); retry later"})
            return
        await conn.send({"event": "accepted", "id": job_id,
                         "kind": job["kind"]})

    # -- job execution -----------------------------------------------------------

    async def _consume(self) -> None:
        loop = asyncio.get_event_loop()
        while True:
            job_id, job, conn = await self._queue.get()
            await conn.send({"event": "started", "id": job_id})
            attempt = 0
            while True:
                attempt += 1
                try:
                    result = await asyncio.wait_for(
                        loop.run_in_executor(
                            self._executor, execute_job, job,
                            self.store_dir, self.max_cache_entries),
                        timeout=self.job_timeout_s)
                except asyncio.CancelledError:
                    raise
                except Exception as exc:
                    if attempt <= self.retries:
                        continue  # bounded retry, then report
                    self._failed += 1
                    await conn.send({
                        "event": "error", "id": job_id, "attempts": attempt,
                        "error": f"{type(exc).__name__}: {exc}"})
                    break
                else:
                    self._done += 1
                    await conn.send({"event": "result", "id": job_id,
                                     "attempts": attempt, "result": result})
                    break
            self._queue.task_done()

    # -- introspection -----------------------------------------------------------

    def _stats(self) -> dict:
        stats = {
            "queue_depth": self._queue.qsize() if self._queue else 0,
            "queue_size": self.queue_size,
            "workers": self.workers,
            "done": self._done,
            "failed": self._failed,
            "store": None,
        }
        if self.store_dir:
            try:
                store = open_store(self.store_dir)
                stats["store"] = {"root": self.store_dir,
                                  "size_bytes": store.size_bytes()}
            except Exception:
                stats["store"] = {"root": self.store_dir, "error": "unreadable"}
        return stats


def serve(*, host: str = "127.0.0.1", port: int = 0, store_dir=None,
          queue_size: int = 8, workers: int = 2,
          job_timeout_s: float = 600.0, retries: int = 1,
          max_cache_entries: int | None = DEFAULT_WORKER_CACHE_ENTRIES) -> int:
    """Run the job server until interrupted (the ``repro serve`` body).

    Prints one ``{"event": "serving", ...}`` JSON line once bound —
    with ``port=0`` that line is how callers learn the chosen port.
    """
    async def _run() -> None:
        server = JobServer(store_dir=store_dir, queue_size=queue_size,
                           workers=workers, job_timeout_s=job_timeout_s,
                           retries=retries,
                           max_cache_entries=max_cache_entries)
        srv = await server.start(host=host, port=port)
        print(json.dumps({"event": "serving", "host": host,
                          "port": server.port, "store": server.store_dir,
                          "workers": workers}, sort_keys=True), flush=True)
        try:
            async with srv:
                await srv.serve_forever()
        finally:
            await server.close()

    try:
        asyncio.run(_run())
    except KeyboardInterrupt:
        pass
    return 0
