"""Job payloads and in-worker execution for the synthesis job server.

A job is a plain JSON object with a ``kind`` plus kind-specific fields
(see ``docs/service.md`` for the full vocabulary).  :func:`validate_job`
rejects malformed payloads before they reach the queue;
:func:`execute_job` runs one job to completion inside a worker process.

Each execution builds a *fresh* :func:`repro.store.attached_cache` over
the server's shared store directory, so nothing is reused through
process-local memory: every artifact a repeated job gets back is a disk
hit, visible in the ``store`` profiler stage the result carries.  An
unreadable store degrades to cold in-process compute (the
``attached_cache`` contract) — jobs still complete, just slower.
"""

from __future__ import annotations

import time

#: Every job kind the server accepts.  ``noop`` exists for protocol and
#: timeout testing: it sleeps ``sleep_s`` seconds and returns.
JOB_KINDS = ("synth", "verify", "explore", "fuzz", "noop")


def validate_job(job) -> str | None:
    """The reason ``job`` is malformed, or ``None`` when acceptable."""
    if not isinstance(job, dict):
        return "job must be a JSON object"
    kind = job.get("kind")
    if kind not in JOB_KINDS:
        return (f"unknown job kind {kind!r} "
                f"(expected one of: {', '.join(JOB_KINDS)})")
    if kind in ("synth", "verify", "explore") \
            and not isinstance(job.get("benchmark"), str):
        return f"{kind} job needs a 'benchmark' string"
    return None


def _search_from_job(job):
    from repro.core.search import SearchConfig

    spec = job.get("search") or {}
    return SearchConfig(max_depth=int(spec.get("depth", 4)),
                        max_candidates=int(spec.get("candidates", 10)),
                        max_iterations=int(spec.get("iterations", 5)),
                        seed=int(spec.get("seed", 0)))


def execute_job(job: dict, store_dir=None,
                max_cache_entries: int | None = None, *,
                faults=None) -> dict:
    """Run one validated job in this (worker) process; returns its result.

    The result dict always carries ``kind`` and ``store_stage`` — the
    window of the ``store`` profiler stage over just this job, where
    ``incremental`` counts cross-run disk hits and ``calls`` counts every
    store access.  A warm store shows up as ``incremental > 0``.

    ``faults`` is an optional list of fault payloads from a
    :class:`repro.faults.FaultPlan`, applied around the execution by
    :func:`repro.faults.activate` — only the supervised pool passes
    them, and a ``kill_worker`` payload really does SIGKILL the calling
    process, so never pass faults when executing inline.
    """
    if faults:
        from repro.faults import activate

        with activate(faults):
            return _execute(job, store_dir, max_cache_entries)
    return _execute(job, store_dir, max_cache_entries)


def _execute(job: dict, store_dir, max_cache_entries) -> dict:
    kind = job["kind"]
    if kind == "noop":
        time.sleep(float(job.get("sleep_s", 0.0)))
        return {"kind": "noop", "store_stage": {}}

    from repro.core.profile import PROFILER

    window = PROFILER.snapshot()
    if kind == "synth":
        result = _run_synth(job, store_dir, max_cache_entries)
    elif kind == "verify":
        result = _run_verify(job, store_dir)
    elif kind == "explore":
        result = _run_explore(job, store_dir)
    else:
        result = _run_fuzz(job, store_dir)
    result["kind"] = kind
    result["store_stage"] = PROFILER.window(window).get("store", {})
    return result


def _run_synth(job: dict, store_dir, max_cache_entries) -> dict:
    from repro.explore.driver import engine_for_benchmark

    engine = engine_for_benchmark(
        job["benchmark"], n_passes=int(job.get("passes", 20)),
        seed=int(job.get("stimulus_seed", 7)), store_dir=store_dir,
        cache_entries=max_cache_entries)
    result = engine.run(mode=job.get("mode", "power"),
                        laxity=float(job.get("laxity", 2.0)),
                        search=_search_from_job(job))
    payload = {"benchmark": job["benchmark"], "summary": result.summary()}
    if job.get("verify"):
        report = engine.verify(design=result.design,
                               use_iverilog=job.get("iverilog", "off"),
                               minimize=False)
        payload["conformance_ok"] = report.ok
        payload["divergences"] = len(report.divergences)
    return payload


def _run_verify(job: dict, store_dir) -> dict:
    from repro.verify.conformance import verify_benchmark

    report = verify_benchmark(job["benchmark"],
                              n_passes=int(job.get("passes", 25)),
                              seed=int(job.get("stimulus_seed", 0)),
                              use_iverilog=job.get("iverilog", "off"),
                              minimize=False, store_dir=store_dir)
    return {"benchmark": job["benchmark"], "ok": report.ok,
            "report": report.summary()}


def _run_explore(job: dict, store_dir) -> dict:
    from repro.explore.driver import DEFAULT_LAXITIES, explore

    result = explore(job["benchmark"],
                     laxities=tuple(job.get("laxities", DEFAULT_LAXITIES)),
                     seeds=(int(job.get("seed", 0)),),
                     shards=int(job.get("shards", 1)),
                     n_passes=int(job.get("passes", 20)),
                     stimulus_seed=int(job.get("stimulus_seed", 7)),
                     search=_search_from_job(job),
                     store_dir=store_dir)
    return {"benchmark": job["benchmark"], "summary": result.summary(),
            "frontier": result.rows()}


def _run_fuzz(job: dict, store_dir) -> dict:
    from repro.genprog.fuzz import fuzz_run

    report = fuzz_run(int(job.get("count", 2)), int(job.get("seed", 0)),
                      n_passes=int(job.get("passes", 6)),
                      use_iverilog=job.get("iverilog", "off"),
                      results_dir=job.get("results_dir", "results"),
                      store_dir=store_dir)
    return {"summary": report.summary(), "rows": report.rows()}
