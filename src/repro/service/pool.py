"""A supervised process worker pool with known pids and hard kills.

The bare ``ProcessPoolExecutor`` the server first shipped with has two
failure modes a long-running service cannot afford: a worker that dies
(OOM-kill, segfault, injected SIGKILL) breaks the whole pool —
``BrokenProcessPool`` on every later submit — and a hung job occupies
its worker forever, because ``run_in_executor`` cannot cancel running
work.  :class:`SupervisedPool` replaces it with explicitly spawned
workers, one duplex pipe each:

* every worker has a **known pid** (``pids()``), so a timed-out job's
  worker is simply SIGKILLed and respawned — capacity always recovers;
* a worker death surfaces as :class:`WorkerCrash` (EOF on its pipe) on
  exactly the job it owned; the slot is rebuilt and **only** that job is
  affected — the classification/retry layer above decides its fate;
* ``restarts`` counts every rebuild, surfaced in server ``stats``.

Each slot is owned by exactly one consumer task, so there is no work
queue here — the server's bounded queue is the queue; this class only
supervises processes.  Blocking pipe waits run on a private thread pool
(one thread per slot) so the event loop never blocks.
"""

from __future__ import annotations

import asyncio
import multiprocessing
from concurrent.futures import ThreadPoolExecutor

from repro.service.errors import JobTimeoutError, WorkerCrash


def _worker_main(conn) -> None:
    """Worker-process loop: recv task, execute, send outcome, repeat.

    A task is ``(job, store_dir, max_cache_entries, faults)``; the reply
    is ``("ok", result)`` or ``("error", (type_name, message, class))``.
    ``None`` (or a closed pipe) means exit.  The fault payloads are
    applied by :func:`repro.service.jobs.execute_job` itself — a
    ``kill_worker`` fault SIGKILLs this process mid-loop, which is the
    point.
    """
    from repro.service.errors import classify_exception
    from repro.service.jobs import execute_job

    while True:
        try:
            task = conn.recv()
        except (EOFError, OSError):
            return
        if task is None:
            conn.close()
            return
        job, store_dir, max_cache_entries, faults = task
        try:
            result = execute_job(job, store_dir, max_cache_entries,
                                 faults=faults)
        except BaseException as exc:  # report, never kill the loop
            reply = ("error", (type(exc).__name__, str(exc),
                               classify_exception(exc)))
        else:
            reply = ("ok", result)
        try:
            conn.send(reply)
        except (OSError, ValueError):
            return


class _Worker:
    """One spawned worker process plus the parent end of its pipe."""

    def __init__(self, ctx):
        self.conn, child = ctx.Pipe()
        self.proc = ctx.Process(target=_worker_main, args=(child,),
                                daemon=True)
        self.proc.start()
        child.close()

    @property
    def pid(self) -> int | None:
        return self.proc.pid

    def call(self, task, timeout_s: float | None):
        """Run one task to completion (blocking; runs on a pool thread).

        Raises :class:`JobTimeoutError` when no reply arrives in time
        (the caller must kill+replace this worker — it is still busy)
        and :class:`WorkerCrash` when the process died mid-job.
        """
        try:
            self.conn.send(task)
        except (OSError, ValueError):
            raise WorkerCrash("worker died before the job could be sent")
        if timeout_s is not None and not self.conn.poll(timeout_s):
            raise JobTimeoutError(
                f"job exceeded its {timeout_s:g}s timeout in a worker")
        try:
            return self.conn.recv()
        except (EOFError, OSError):
            raise WorkerCrash("worker died while running the job")

    def kill(self) -> None:
        """SIGKILL the process and reap it; safe on an already-dead worker."""
        try:
            self.proc.kill()
        except Exception:
            pass
        self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass

    def stop(self) -> None:
        """Graceful exit: send the sentinel, join, escalate to kill."""
        try:
            self.conn.send(None)
        except (OSError, ValueError):
            pass
        self.proc.join(timeout=2.0)
        if self.proc.is_alive():
            self.proc.kill()
            self.proc.join(timeout=5.0)
        try:
            self.conn.close()
        except OSError:
            pass


class SupervisedPool:
    """Fixed-size set of supervised worker slots (one consumer each)."""

    def __init__(self, workers: int, *, job_timeout_s: float | None = None,
                 start_method: str | None = None):
        try:
            self._ctx = multiprocessing.get_context(start_method or "fork")
        except ValueError:  # platform without fork: the default context
            self._ctx = multiprocessing.get_context()
        self.job_timeout_s = job_timeout_s
        #: Workers rebuilt after a crash or a hard kill (server stats).
        self.restarts = 0
        self._workers = [_Worker(self._ctx) for _ in range(workers)]
        self._threads = ThreadPoolExecutor(max_workers=max(workers, 1),
                                           thread_name_prefix="repro-pool")
        self._closed = False

    def pids(self) -> list[int | None]:
        """Current worker pids, by slot (stats / kill-the-worker tests)."""
        return [worker.pid for worker in self._workers]

    async def run(self, slot: int, task):
        """Run ``task`` on ``slot``'s worker; supervise the outcome.

        On :class:`WorkerCrash` or :class:`JobTimeoutError` the slot's
        worker is hard-killed and respawned *before* the exception
        propagates, so the pool is whole again by the time the caller
        decides whether to retry.
        """
        loop = asyncio.get_event_loop()
        worker = self._workers[slot]
        try:
            return await loop.run_in_executor(
                self._threads, worker.call, task, self.job_timeout_s)
        except (WorkerCrash, JobTimeoutError):
            await loop.run_in_executor(None, self._replace, slot)
            raise

    def _replace(self, slot: int) -> None:
        self._workers[slot].kill()
        self._workers[slot] = _Worker(self._ctx)
        self.restarts += 1

    def shutdown(self) -> None:
        """Stop every worker and join the wait threads (blocking).

        Call off the event loop (``run_in_executor(None, ...)``) — and
        never from one of this pool's own wait threads.
        """
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            worker.stop()
        self._workers = []
        self._threads.shutdown(wait=True)
