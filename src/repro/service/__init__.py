"""Async synthesis job server over the persistent artifact store.

``python -m repro serve`` starts a :class:`~repro.service.server.JobServer`:
a newline-JSON TCP protocol feeding a bounded queue and a process worker
pool, every worker reading and publishing through one shared
:mod:`repro.store` directory.  :class:`~repro.service.client.ServiceClient`
is the matching blocking client.  See ``docs/service.md``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.jobs import JOB_KINDS, execute_job, validate_job
from repro.service.server import (
    DEFAULT_WORKER_CACHE_ENTRIES,
    JobServer,
    serve,
)

__all__ = [
    "DEFAULT_WORKER_CACHE_ENTRIES",
    "JOB_KINDS",
    "JobServer",
    "ServiceClient",
    "ServiceError",
    "execute_job",
    "serve",
    "validate_job",
]
