"""Async synthesis job server over the persistent artifact store.

``python -m repro serve`` starts a :class:`~repro.service.server.JobServer`:
a newline-JSON TCP protocol feeding a bounded queue and a **supervised**
process worker pool (:mod:`repro.service.pool` — known pids, hard kills
on timeout, automatic rebuild on worker death), every worker reading and
publishing through one shared :mod:`repro.store` directory.  Failures
are classified transient vs deterministic (:mod:`repro.service.errors`)
and only transient ones retried; every job transition is journaled
durably (:mod:`repro.service.journal`) so ``--resume`` survives crashes.
:class:`~repro.service.client.ServiceClient` is the matching blocking
client.  See ``docs/service.md``.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.errors import (
    CLASS_DETERMINISTIC,
    CLASS_TRANSIENT,
    JobTimeoutError,
    WorkerCrash,
    backoff_delay,
    classify_exception,
)
from repro.service.jobs import JOB_KINDS, execute_job, validate_job
from repro.service.journal import (
    JOURNAL_NAME,
    JobJournal,
    next_job_id,
    read_journal,
    unfinished_jobs,
)
from repro.service.pool import SupervisedPool
from repro.service.server import (
    DEFAULT_DRAIN_TIMEOUT_S,
    DEFAULT_WORKER_CACHE_ENTRIES,
    JobServer,
    serve,
)

__all__ = [
    "CLASS_DETERMINISTIC",
    "CLASS_TRANSIENT",
    "DEFAULT_DRAIN_TIMEOUT_S",
    "DEFAULT_WORKER_CACHE_ENTRIES",
    "JOB_KINDS",
    "JOURNAL_NAME",
    "JobJournal",
    "JobServer",
    "JobTimeoutError",
    "ServiceClient",
    "ServiceError",
    "SupervisedPool",
    "WorkerCrash",
    "backoff_delay",
    "classify_exception",
    "execute_job",
    "next_job_id",
    "read_journal",
    "serve",
    "unfinished_jobs",
    "validate_job",
]
