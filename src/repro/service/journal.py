"""The durable job journal: append-only newline-JSON, crash-resumable.

Every job-state transition the server makes is appended (via
:func:`repro.store.atomic.append_jsonl` — ``O_APPEND`` single write +
``fsync``) to ``journal.ndjson`` in the artifact-store directory, so a
server killed at *any* moment can be restarted with ``--resume`` and
re-enqueue exactly the jobs that were accepted but never finished.

Record vocabulary (every record also carries a ``ts`` wall-clock field,
the only nondeterministic one — two runs under the same fault plan and
seed journal byte-identically modulo ``ts``):

| ``rec`` | fields | written when |
|---|---|---|
| ``accepted`` | ``id``, ``kind``, ``job`` (full payload) | the job entered the queue |
| ``started``  | ``id``, ``attempt`` | a worker began an attempt |
| ``finished`` | ``id``, ``status`` (``result``/``error``), ``attempts``, ``class``+``error`` on failure | terminal outcome |
| ``resumed``  | ``ids`` | a ``--resume`` start re-enqueued these |
| ``draining`` | ``pending`` | graceful shutdown; these ids were left unfinished |

Readers are torn-line tolerant: a crash mid-append leaves at worst one
partial final line, which :func:`read_journal` skips.
"""

from __future__ import annotations

import json
import pathlib
import threading
import time

from repro.store.atomic import append_jsonl

#: Journal file name inside the artifact-store directory.
JOURNAL_NAME = "journal.ndjson"


class JobJournal:
    """Append-side handle; thread-safe, one record per call."""

    def __init__(self, path: pathlib.Path | str):
        self.path = pathlib.Path(path)
        self._lock = threading.Lock()

    def record(self, rec: dict) -> None:
        """Durably append one record, stamped with ``ts`` (blocking I/O).

        The server calls this through ``run_in_executor`` so the fsync
        never stalls the event loop.
        """
        stamped = dict(rec)
        stamped["ts"] = round(time.time(), 6)
        with self._lock:
            append_jsonl(self.path, stamped)


def read_journal(path: pathlib.Path | str) -> list[dict]:
    """Every parseable record in the journal, in append order.

    Unparseable lines (a torn final line from a crash mid-append) are
    skipped, never fatal; a missing journal reads as empty.
    """
    path = pathlib.Path(path)
    records = []
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return records
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            rec = json.loads(line)
        except ValueError:
            continue
        if isinstance(rec, dict):
            records.append(rec)
    return records


def unfinished_jobs(records: list[dict]) -> list[tuple[int, dict]]:
    """``(id, job)`` pairs accepted but never finished, in id order.

    The resume set: each appears exactly once regardless of how many
    ``started`` attempts the crashed server logged for it.
    """
    accepted: dict[int, dict] = {}
    finished: set[int] = set()
    for rec in records:
        kind = rec.get("rec")
        if kind == "accepted" and isinstance(rec.get("job"), dict):
            accepted[int(rec["id"])] = rec["job"]
        elif kind == "finished":
            finished.add(int(rec["id"]))
    return [(job_id, accepted[job_id])
            for job_id in sorted(accepted) if job_id not in finished]


def next_job_id(records: list[dict]) -> int:
    """The first id a resumed server may assign to *new* submissions."""
    highest = 0
    for rec in records:
        if "id" in rec:
            try:
                highest = max(highest, int(rec["id"]))
            except (TypeError, ValueError):
                continue
    return highest + 1
