"""A minimal blocking client for the ``repro serve`` protocol.

One TCP connection, newline-delimited JSON both ways.  This is the
client the tests and ``tools/service_smoke.py`` use; anything that can
write a JSON line to a socket (``nc``, a five-line script) speaks the
same protocol — see ``docs/service.md``.
"""

from __future__ import annotations

import json
import socket
import time

from repro.service.errors import backoff_delay


class ServiceError(RuntimeError):
    """The server reported an error or closed the connection."""


class ServiceClient:
    """Synchronous line-oriented client; safe for sequential use.

    ``retry_attempts`` (default 0 — off, so back-pressure behavior stays
    exact) turns on bounded resubmission after a 429 ``rejected`` event,
    sleeping a seeded jittered backoff between attempts so a fleet of
    clients pointed at one server does not retry in lockstep.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0,
                 timeout: float = 600.0, *, retry_attempts: int = 0,
                 retry_base_s: float = 0.05, retry_seed: int = 0):
        self._retry_attempts = retry_attempts
        self._retry_base_s = retry_base_s
        self._retry_seed = retry_seed
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")

    def close(self) -> None:
        try:
            self._file.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- wire primitives ---------------------------------------------------------

    def send(self, payload: dict) -> None:
        self._file.write((json.dumps(payload) + "\n").encode("utf-8"))
        self._file.flush()

    def recv(self) -> dict:
        line = self._file.readline()
        if not line:
            raise ServiceError("server closed the connection")
        return json.loads(line)

    # -- protocol ops ------------------------------------------------------------

    def ping(self) -> dict:
        self.send({"op": "ping"})
        return self.recv()

    def stats(self) -> dict:
        self.send({"op": "stats"})
        return self.recv()

    def submit(self, job: dict) -> dict:
        """Submit one job; returns the ``accepted`` or ``rejected`` event.

        With ``retry_attempts > 0``, a 429 (queue full) rejection is
        retried up to that many times with seeded jittered backoff; any
        other rejection — including 503 ``draining`` — returns
        immediately.
        """
        attempt = 0
        while True:
            self.send({"op": "submit", "job": job})
            ack = self.recv()
            if (ack.get("event") == "rejected" and ack.get("code") == 429
                    and attempt < self._retry_attempts):
                attempt += 1
                time.sleep(backoff_delay(attempt, seed=self._retry_seed,
                                         base_s=self._retry_base_s))
                continue
            return ack

    def run(self, job: dict) -> dict:
        """Submit one job and block until its terminal event.

        Returns the ``result`` event; raises :class:`ServiceError` on
        rejection or job failure.  Intermediate ``started`` events (and
        events for other jobs on a shared connection) are skipped.
        """
        ack = self.submit(job)
        if ack.get("event") != "accepted":
            raise ServiceError(f"job rejected: {ack}")
        job_id = ack["id"]
        while True:
            event = self.recv()
            if event.get("id") != job_id:
                continue
            if event.get("event") == "result":
                return event
            if event.get("event") == "error":
                raise ServiceError(f"job {job_id} failed: {event}")
