"""Job-failure taxonomy and seeded retry backoff for the job server.

Every failure a job can surface is either **transient** — the job
itself may be fine, the machinery under it hiccuped (a worker process
died, a job attempt timed out, store disk I/O failed) — or
**deterministic** — re-running the same job reproduces the same failure
bit-identically (payload validation, synthesis exceptions).  The server
retries only transient failures; deterministic ones are reported on the
first attempt, because retrying them only burns worker time.  The
classification travels in the ``error`` event (``"class"``) and the
journal's ``finished`` records.

Backoff between transient retries is capped exponential with jitter
seeded per ``(seed, job id, attempt)``, so a pinned fault plan replays
with identical retry timing — the reproducibility contract of
``tests/test_faults.py``.
"""

from __future__ import annotations

import random

#: Classification labels (the ``class`` field of ``error`` events).
CLASS_TRANSIENT = "transient"
CLASS_DETERMINISTIC = "deterministic"


class WorkerCrash(RuntimeError):
    """A pool worker died (SIGKILL/OOM/segfault) while owning a job."""


class JobTimeoutError(TimeoutError):
    """A job attempt exceeded the per-job timeout; its worker was killed."""


def classify_exception(exc: BaseException) -> str:
    """``CLASS_TRANSIENT`` or ``CLASS_DETERMINISTIC`` for ``exc``.

    Transient: worker death, timeouts, and OS-level I/O errors (a store
    read that failed mid-job — ``ConnectionError`` is an ``OSError``
    subclass and lands here too).  Everything else — validation errors,
    synthesis exceptions — is deterministic: the job would fail the same
    way again.
    """
    try:
        from concurrent.futures.process import BrokenProcessPool
    except ImportError:  # pragma: no cover - stdlib always has it
        BrokenProcessPool = ()
    transient = (WorkerCrash, JobTimeoutError, TimeoutError, OSError,
                 BrokenProcessPool)
    return CLASS_TRANSIENT if isinstance(exc, transient) \
        else CLASS_DETERMINISTIC


def backoff_delay(attempt: int, *, job_id: int = 0, seed: int = 0,
                  base_s: float = 0.1, cap_s: float = 2.0) -> float:
    """Seconds to sleep before retry ``attempt + 1``.

    Capped exponential (``base_s * 2**(attempt-1)``, at most ``cap_s``)
    scaled by a jitter factor in ``[0.5, 1.0]`` drawn from an RNG seeded
    by ``(seed, job_id, attempt)`` — reproducible per job, decorrelated
    across jobs.
    """
    rng = random.Random(f"repro-backoff:{seed}:{job_id}:{attempt}")
    bounded = min(cap_s, base_s * (2 ** max(attempt - 1, 0)))
    return bounded * (0.5 + 0.5 * rng.random())
