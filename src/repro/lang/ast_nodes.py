"""AST node classes for the behavioral language.

All nodes are immutable dataclasses; statements carry their source line for
error reporting.  The AST is deliberately small: the language only needs to
express what the paper's benchmarks use (straight-line arithmetic, nested
conditionals, ``for``/``while`` loops).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class Type:
    """A value type: signedness plus bit width (``bool`` is ``uint1``)."""

    width: int
    signed: bool = True

    def __post_init__(self) -> None:
        if not 1 <= self.width <= 32:
            raise ValueError(f"bit width must be in [1, 32], got {self.width}")

    @staticmethod
    def bool_type() -> "Type":
        return Type(1, signed=False)

    def __str__(self) -> str:
        if self.width == 1 and not self.signed:
            return "bool"
        return ("int" if self.signed else "uint") + str(self.width)


# --------------------------------------------------------------------------
# Expressions
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Expr:
    line: int


@dataclass(frozen=True)
class IntLit(Expr):
    value: int


@dataclass(frozen=True)
class BoolLit(Expr):
    value: bool


@dataclass(frozen=True)
class VarRef(Expr):
    name: str


@dataclass(frozen=True)
class IndexExpr(Expr):
    """An indexed array read: ``name[index]``."""

    name: str
    index: Expr


@dataclass(frozen=True)
class UnaryOp(Expr):
    op: str  # "-" or "!"
    operand: Expr


@dataclass(frozen=True)
class BinaryOp(Expr):
    op: str  # one of the operators in lang/__init__ grammar
    left: Expr
    right: Expr


# --------------------------------------------------------------------------
# Statements
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Stmt:
    line: int


@dataclass(frozen=True)
class VarDecl(Stmt):
    name: str
    declared_type: Type | None
    init: Expr | None


@dataclass(frozen=True)
class ArrayDecl(Stmt):
    """A fixed-size array declaration: ``var name: elem_type[size];``.

    Arrays are process-level memory: every location powers on at zero and
    the contents persist across stimulus passes (they lower to RAMs, not
    registers).  ``size`` must be a power of two so index arithmetic wraps
    identically in every backend.
    """

    name: str
    elem_type: Type
    size: int


@dataclass(frozen=True)
class Assign(Stmt):
    name: str
    value: Expr


@dataclass(frozen=True)
class ArrayAssign(Stmt):
    """An indexed array write: ``name[index] = value;``."""

    name: str
    index: Expr
    value: Expr


@dataclass(frozen=True)
class If(Stmt):
    cond: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...]


@dataclass(frozen=True)
class For(Stmt):
    init: Assign
    cond: Expr
    update: Assign
    body: tuple[Stmt, ...]


@dataclass(frozen=True)
class While(Stmt):
    cond: Expr
    body: tuple[Stmt, ...]


# --------------------------------------------------------------------------
# Top level
# --------------------------------------------------------------------------

@dataclass(frozen=True)
class Param:
    name: str
    type: Type


@dataclass(frozen=True)
class Process:
    """A behavioral process: named inputs, named outputs, and a body."""

    name: str
    inputs: tuple[Param, ...]
    outputs: tuple[Param, ...]
    body: tuple[Stmt, ...]
    line: int = 1

    def input_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.inputs)

    def output_names(self) -> tuple[str, ...]:
        return tuple(p.name for p in self.outputs)


def walk_statements(body: tuple[Stmt, ...]):
    """Yield every statement in ``body``, recursing into compound bodies."""
    for stmt in body:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_statements(stmt.then_body)
            yield from walk_statements(stmt.else_body)
        elif isinstance(stmt, For):
            yield stmt.init
            yield stmt.update
            yield from walk_statements(stmt.body)
        elif isinstance(stmt, While):
            yield from walk_statements(stmt.body)


def assigned_names(body: tuple[Stmt, ...]) -> set[str]:
    """Names assigned anywhere inside ``body`` (including loop iterators)."""
    names: set[str] = set()
    for stmt in walk_statements(body):
        if isinstance(stmt, (Assign, VarDecl)):
            names.add(stmt.name)
    return names


def used_names(expr: Expr) -> set[str]:
    """Variable names read by an expression (array reads count the array)."""
    if isinstance(expr, VarRef):
        return {expr.name}
    if isinstance(expr, IndexExpr):
        return {expr.name} | used_names(expr.index)
    if isinstance(expr, UnaryOp):
        return used_names(expr.operand)
    if isinstance(expr, BinaryOp):
        return used_names(expr.left) | used_names(expr.right)
    return set()


def array_names(body: tuple[Stmt, ...]) -> set[str]:
    """Names declared as arrays anywhere inside ``body``."""
    return {stmt.name for stmt in walk_statements(body)
            if isinstance(stmt, ArrayDecl)}


def uses_arrays(body: tuple[Stmt, ...]) -> bool:
    """True when ``body`` declares or accesses any array."""
    for stmt in walk_statements(body):
        if isinstance(stmt, (ArrayDecl, ArrayAssign)):
            return True
        for expr in exprs_of(stmt):
            if _expr_uses_index(expr):
                return True
    return False


def exprs_of(stmt: Stmt):
    """Top-level expressions of one statement (non-recursive)."""
    if isinstance(stmt, VarDecl):
        if stmt.init is not None:
            yield stmt.init
    elif isinstance(stmt, ArrayAssign):
        yield stmt.index
        yield stmt.value
    elif isinstance(stmt, Assign):
        yield stmt.value
    elif isinstance(stmt, (If, For, While)):
        yield stmt.cond


def _expr_uses_index(expr: Expr) -> bool:
    if isinstance(expr, IndexExpr):
        return True
    if isinstance(expr, UnaryOp):
        return _expr_uses_index(expr.operand)
    if isinstance(expr, BinaryOp):
        return _expr_uses_index(expr.left) or _expr_uses_index(expr.right)
    return False
