"""Semantic checks and width inference for the behavioral language.

Widths follow hardware conventions: ``add``/``sub`` grow by one bit,
``mul`` sums operand widths, comparisons and logical connectives are 1-bit,
bitwise operators take the wider operand, shifts keep the left operand's
width.  Everything is capped at 32 bits.  Assignment wraps the value to the
target variable's declared (or first-inferred) width.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TypeCheckError
from repro.lang import ast_nodes as ast

MAX_WIDTH = 32

#: Width given to undeclared variables whose first assignment is a bare
#: integer literal (e.g. loop iterators: ``for (i = 0; ...)``).  A literal's
#: natural width (1 bit for ``0``) would make the iterator wrap immediately;
#: 8 signed bits covers every benchmark loop bound.  Declare the variable
#: explicitly to get a different width.
DEFAULT_INFERRED_WIDTH = 8

# Operators whose result is a single bit.
BOOLEAN_OPS = frozenset({"==", "!=", "<", ">", "<=", ">=", "&&", "||"})


def result_type(op: str, left: ast.Type, right: ast.Type) -> ast.Type:
    """Hardware result type of ``left op right``."""
    if op in BOOLEAN_OPS:
        return ast.Type.bool_type()
    signed = left.signed or right.signed
    if op in ("+", "-"):
        width = max(left.width, right.width) + 1
    elif op == "*":
        width = left.width + right.width
    elif op in ("&", "|", "^"):
        width = max(left.width, right.width)
        signed = left.signed and right.signed
    elif op in ("<<", ">>"):
        width = left.width
        signed = left.signed
    else:
        raise TypeCheckError(f"unknown binary operator {op!r}")
    return ast.Type(min(width, MAX_WIDTH), signed)


def unary_result_type(op: str, operand: ast.Type) -> ast.Type:
    if op == "-":
        return ast.Type(min(operand.width + 1, MAX_WIDTH), signed=True)
    if op == "!":
        return ast.Type.bool_type()
    raise TypeCheckError(f"unknown unary operator {op!r}")


def literal_type(value: int) -> ast.Type:
    """Narrowest type holding an integer literal (signed iff negative)."""
    if value < 0:
        width = 1
        while -(1 << (width - 1)) > value:
            width += 1
        return ast.Type(min(width, MAX_WIDTH), signed=True)
    width = max(1, value.bit_length())
    return ast.Type(min(width, MAX_WIDTH), signed=False)


#: Array sizes the memory layer accepts: powers of two so index wrapping
#: (``index & (size - 1)``) is identical in every backend, and bounded so
#: a single inferred RAM stays plausible.
MAX_ARRAY_SIZE = 1024


@dataclass
class CheckResult:
    """Outcome of :func:`check_process`: per-variable and array types."""

    var_types: dict[str, ast.Type] = field(default_factory=dict)
    #: name -> (element type, size); kept apart from ``var_types`` because
    #: arrays bind to RAM ports, never to registers.
    array_types: dict[str, tuple[ast.Type, int]] = field(default_factory=dict)


class _Checker:
    def __init__(self, process: ast.Process):
        self._process = process
        self._types: dict[str, ast.Type] = {}
        self._arrays: dict[str, tuple[ast.Type, int]] = {}
        self._defined: set[str] = set()
        self._inputs = set(process.input_names())
        self._outputs = set(process.output_names())
        self._depth = 0
        self._in_loop_cond = False

    def run(self) -> CheckResult:
        process = self._process
        seen: set[str] = set()
        for param in process.inputs + process.outputs:
            if param.name in seen:
                raise TypeCheckError(f"duplicate parameter name {param.name!r}", process.line)
            seen.add(param.name)
            self._types[param.name] = param.type
        self._defined |= self._inputs
        self._check_body(process.body)
        missing = self._outputs - self._defined
        if missing:
            raise TypeCheckError(
                f"output(s) never assigned: {', '.join(sorted(missing))}", process.line)
        return CheckResult(var_types=dict(self._types),
                           array_types=dict(self._arrays))

    # -- statements ----------------------------------------------------------

    def _check_body(self, body: tuple[ast.Stmt, ...]) -> None:
        for stmt in body:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.ArrayDecl):
            self._check_array_decl(stmt)
        elif isinstance(stmt, ast.ArrayAssign):
            if stmt.name not in self._arrays:
                raise TypeCheckError(
                    f"indexed store into undeclared array {stmt.name!r}", stmt.line)
            self._check_index(stmt.name, stmt.index, stmt.line)
            self._check_expr(stmt.value)  # wraps to the element type on store
        elif isinstance(stmt, ast.VarDecl):
            if stmt.name in self._inputs:
                raise TypeCheckError(f"cannot redeclare input {stmt.name!r}", stmt.line)
            if stmt.name in self._arrays:
                raise TypeCheckError(
                    f"{stmt.name!r} is an array; cannot redeclare as a scalar", stmt.line)
            init_type = self._check_expr(stmt.init) if stmt.init is not None else None
            declared = stmt.declared_type
            if declared is None:
                if init_type is None:
                    raise TypeCheckError(
                        f"var {stmt.name!r} needs a type or an initializer", stmt.line)
                declared = self._widen_inferred(stmt.init, init_type)
            self._types[stmt.name] = declared
            if stmt.init is not None:
                self._defined.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            if stmt.name in self._inputs:
                raise TypeCheckError(f"cannot assign to input {stmt.name!r}", stmt.line)
            if stmt.name in self._arrays:
                raise TypeCheckError(
                    f"array {stmt.name!r} needs an index to be assigned", stmt.line)
            value_type = self._check_expr(stmt.value)
            if stmt.name not in self._types:
                self._types[stmt.name] = self._widen_inferred(stmt.value, value_type)
            self._defined.add(stmt.name)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond)
            # Definitions inside a branch only count as definite if both
            # branches define them; we approximate conservatively by keeping
            # the union (the CDFG builder routes undefined-else values from
            # the pre-branch value, which must itself exist -- checked there).
            before = set(self._defined)
            self._depth += 1
            self._check_body(stmt.then_body)
            after_then = set(self._defined)
            self._defined = set(before)
            self._check_body(stmt.else_body)
            self._depth -= 1
            self._defined |= after_then
        elif isinstance(stmt, ast.For):
            self._check_stmt(stmt.init)
            self._check_loop_cond(stmt.cond)
            self._depth += 1
            self._check_body(stmt.body)
            self._depth -= 1
            self._check_stmt(stmt.update)
        elif isinstance(stmt, ast.While):
            self._check_loop_cond(stmt.cond)
            self._depth += 1
            self._check_body(stmt.body)
            self._depth -= 1
        else:
            raise TypeCheckError(f"unknown statement {type(stmt).__name__}", stmt.line)

    def _check_array_decl(self, stmt: ast.ArrayDecl) -> None:
        if self._depth > 0:
            raise TypeCheckError(
                f"array {stmt.name!r} must be declared at the top level "
                f"(arrays are process-scoped memory)", stmt.line)
        if stmt.name in self._inputs or stmt.name in self._outputs:
            raise TypeCheckError(
                f"cannot redeclare port {stmt.name!r} as an array", stmt.line)
        if stmt.name in self._types or stmt.name in self._arrays:
            raise TypeCheckError(f"duplicate declaration of {stmt.name!r}", stmt.line)
        size = stmt.size
        if size < 2 or size > MAX_ARRAY_SIZE or size & (size - 1):
            raise TypeCheckError(
                f"array {stmt.name!r} size must be a power of two in "
                f"[2, {MAX_ARRAY_SIZE}], got {size}", stmt.line)
        self._arrays[stmt.name] = (stmt.elem_type, size)

    def _check_loop_cond(self, cond: ast.Expr) -> None:
        """Loop conditions may not read arrays: the scheduler hoists loop
        tests into kernel states that evaluate the *next* iteration's test
        alongside the current body, which would reorder a test-side load
        around the body's stores."""
        self._in_loop_cond = True
        try:
            self._check_expr(cond)
        finally:
            self._in_loop_cond = False

    def _check_index(self, name: str, index: ast.Expr, line: int) -> ast.Type:
        # Any integer expression indexes; it wraps modulo the (power-of-two)
        # size, so out-of-range values are well-defined in every backend.
        self._check_expr(index)
        elem_type, _size = self._arrays[name]
        return elem_type

    @staticmethod
    def _widen_inferred(expr: ast.Expr | None, inferred: ast.Type) -> ast.Type:
        """Widen constant-literal inferences to the default variable width."""
        if isinstance(expr, ast.IntLit):
            natural = inferred.width + (0 if inferred.signed else 1)
            return ast.Type(min(max(natural, DEFAULT_INFERRED_WIDTH), MAX_WIDTH), signed=True)
        return inferred

    # -- expressions -----------------------------------------------------------

    def _check_expr(self, expr: ast.Expr) -> ast.Type:
        if isinstance(expr, ast.IntLit):
            return literal_type(expr.value)
        if isinstance(expr, ast.BoolLit):
            return ast.Type.bool_type()
        if isinstance(expr, ast.VarRef):
            if expr.name in self._arrays:
                raise TypeCheckError(
                    f"array {expr.name!r} needs an index to be read", expr.line)
            if expr.name not in self._types:
                raise TypeCheckError(f"use of undefined variable {expr.name!r}", expr.line)
            return self._types[expr.name]
        if isinstance(expr, ast.IndexExpr):
            if expr.name not in self._arrays:
                raise TypeCheckError(
                    f"indexed read of undeclared array {expr.name!r}", expr.line)
            if self._in_loop_cond:
                raise TypeCheckError(
                    f"array read {expr.name!r}[...] not allowed in a loop "
                    f"condition (loop tests are hoisted past body stores)",
                    expr.line)
            return self._check_index(expr.name, expr.index, expr.line)
        if isinstance(expr, ast.UnaryOp):
            return unary_result_type(expr.op, self._check_expr(expr.operand))
        if isinstance(expr, ast.BinaryOp):
            left = self._check_expr(expr.left)
            right = self._check_expr(expr.right)
            return result_type(expr.op, left, right)
        raise TypeCheckError(f"unknown expression {type(expr).__name__}", expr.line)


def check_process(process: ast.Process) -> CheckResult:
    """Validate a process AST; returns inferred variable types.

    Raises :class:`TypeCheckError` on use-before-definition, assignment to
    inputs, unassigned outputs, or malformed operators.
    """
    return _Checker(process).run()
