"""Semantic checks and width inference for the behavioral language.

Widths follow hardware conventions: ``add``/``sub`` grow by one bit,
``mul`` sums operand widths, comparisons and logical connectives are 1-bit,
bitwise operators take the wider operand, shifts keep the left operand's
width.  Everything is capped at 32 bits.  Assignment wraps the value to the
target variable's declared (or first-inferred) width.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import TypeCheckError
from repro.lang import ast_nodes as ast

MAX_WIDTH = 32

#: Width given to undeclared variables whose first assignment is a bare
#: integer literal (e.g. loop iterators: ``for (i = 0; ...)``).  A literal's
#: natural width (1 bit for ``0``) would make the iterator wrap immediately;
#: 8 signed bits covers every benchmark loop bound.  Declare the variable
#: explicitly to get a different width.
DEFAULT_INFERRED_WIDTH = 8

# Operators whose result is a single bit.
BOOLEAN_OPS = frozenset({"==", "!=", "<", ">", "<=", ">=", "&&", "||"})


def result_type(op: str, left: ast.Type, right: ast.Type) -> ast.Type:
    """Hardware result type of ``left op right``."""
    if op in BOOLEAN_OPS:
        return ast.Type.bool_type()
    signed = left.signed or right.signed
    if op in ("+", "-"):
        width = max(left.width, right.width) + 1
    elif op == "*":
        width = left.width + right.width
    elif op in ("&", "|", "^"):
        width = max(left.width, right.width)
        signed = left.signed and right.signed
    elif op in ("<<", ">>"):
        width = left.width
        signed = left.signed
    else:
        raise TypeCheckError(f"unknown binary operator {op!r}")
    return ast.Type(min(width, MAX_WIDTH), signed)


def unary_result_type(op: str, operand: ast.Type) -> ast.Type:
    if op == "-":
        return ast.Type(min(operand.width + 1, MAX_WIDTH), signed=True)
    if op == "!":
        return ast.Type.bool_type()
    raise TypeCheckError(f"unknown unary operator {op!r}")


def literal_type(value: int) -> ast.Type:
    """Narrowest type holding an integer literal (signed iff negative)."""
    if value < 0:
        width = 1
        while -(1 << (width - 1)) > value:
            width += 1
        return ast.Type(min(width, MAX_WIDTH), signed=True)
    width = max(1, value.bit_length())
    return ast.Type(min(width, MAX_WIDTH), signed=False)


@dataclass
class CheckResult:
    """Outcome of :func:`check_process`: per-variable types."""

    var_types: dict[str, ast.Type] = field(default_factory=dict)


class _Checker:
    def __init__(self, process: ast.Process):
        self._process = process
        self._types: dict[str, ast.Type] = {}
        self._defined: set[str] = set()
        self._inputs = set(process.input_names())
        self._outputs = set(process.output_names())

    def run(self) -> CheckResult:
        process = self._process
        seen: set[str] = set()
        for param in process.inputs + process.outputs:
            if param.name in seen:
                raise TypeCheckError(f"duplicate parameter name {param.name!r}", process.line)
            seen.add(param.name)
            self._types[param.name] = param.type
        self._defined |= self._inputs
        self._check_body(process.body)
        missing = self._outputs - self._defined
        if missing:
            raise TypeCheckError(
                f"output(s) never assigned: {', '.join(sorted(missing))}", process.line)
        return CheckResult(var_types=dict(self._types))

    # -- statements ----------------------------------------------------------

    def _check_body(self, body: tuple[ast.Stmt, ...]) -> None:
        for stmt in body:
            self._check_stmt(stmt)

    def _check_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in self._inputs:
                raise TypeCheckError(f"cannot redeclare input {stmt.name!r}", stmt.line)
            init_type = self._check_expr(stmt.init) if stmt.init is not None else None
            declared = stmt.declared_type
            if declared is None:
                if init_type is None:
                    raise TypeCheckError(
                        f"var {stmt.name!r} needs a type or an initializer", stmt.line)
                declared = self._widen_inferred(stmt.init, init_type)
            self._types[stmt.name] = declared
            if stmt.init is not None:
                self._defined.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            if stmt.name in self._inputs:
                raise TypeCheckError(f"cannot assign to input {stmt.name!r}", stmt.line)
            value_type = self._check_expr(stmt.value)
            if stmt.name not in self._types:
                self._types[stmt.name] = self._widen_inferred(stmt.value, value_type)
            self._defined.add(stmt.name)
        elif isinstance(stmt, ast.If):
            self._check_expr(stmt.cond)
            # Definitions inside a branch only count as definite if both
            # branches define them; we approximate conservatively by keeping
            # the union (the CDFG builder routes undefined-else values from
            # the pre-branch value, which must itself exist -- checked there).
            before = set(self._defined)
            self._check_body(stmt.then_body)
            after_then = set(self._defined)
            self._defined = set(before)
            self._check_body(stmt.else_body)
            self._defined |= after_then
        elif isinstance(stmt, ast.For):
            self._check_stmt(stmt.init)
            self._check_expr(stmt.cond)
            self._check_body(stmt.body)
            self._check_stmt(stmt.update)
        elif isinstance(stmt, ast.While):
            self._check_expr(stmt.cond)
            self._check_body(stmt.body)
        else:
            raise TypeCheckError(f"unknown statement {type(stmt).__name__}", stmt.line)

    @staticmethod
    def _widen_inferred(expr: ast.Expr | None, inferred: ast.Type) -> ast.Type:
        """Widen constant-literal inferences to the default variable width."""
        if isinstance(expr, ast.IntLit):
            natural = inferred.width + (0 if inferred.signed else 1)
            return ast.Type(min(max(natural, DEFAULT_INFERRED_WIDTH), MAX_WIDTH), signed=True)
        return inferred

    # -- expressions -----------------------------------------------------------

    def _check_expr(self, expr: ast.Expr) -> ast.Type:
        if isinstance(expr, ast.IntLit):
            return literal_type(expr.value)
        if isinstance(expr, ast.BoolLit):
            return ast.Type.bool_type()
        if isinstance(expr, ast.VarRef):
            if expr.name not in self._types:
                raise TypeCheckError(f"use of undefined variable {expr.name!r}", expr.line)
            return self._types[expr.name]
        if isinstance(expr, ast.UnaryOp):
            return unary_result_type(expr.op, self._check_expr(expr.operand))
        if isinstance(expr, ast.BinaryOp):
            left = self._check_expr(expr.left)
            right = self._check_expr(expr.right)
            return result_type(expr.op, left, right)
        raise TypeCheckError(f"unknown expression {type(expr).__name__}", expr.line)


def check_process(process: ast.Process) -> CheckResult:
    """Validate a process AST; returns inferred variable types.

    Raises :class:`TypeCheckError` on use-before-definition, assignment to
    inputs, unassigned outputs, or malformed operators.
    """
    return _Checker(process).run()
