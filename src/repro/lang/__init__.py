"""Behavioral-description language frontend.

The paper's benchmarks are written in a small C-like behavioral language
(Figure 1 and Figure 8 show fragments).  This package provides a faithful
equivalent: a lexer, a recursive-descent parser producing a typed AST, a
width-inference pass, and the entry points used by the rest of the system.

Grammar (EBNF, ``//`` comments and whitespace are skipped)::

    program   := process
    process   := "process" IDENT "(" [param {"," param}] ")"
                 ["->" "(" param {"," param} ")"] block
    param     := IDENT ":" type
    type      := "int" INT | "uint" INT | "bool"
    block     := "{" {stmt} "}"
    stmt      := "var" IDENT [":" type] ["=" expr] ";"
               | IDENT "=" expr ";"
               | IDENT "++" ";"  |  IDENT "--" ";"
               | "if" "(" expr ")" block ["else" (block | if_stmt)]
               | "for" "(" simple ";" expr ";" simple ")" block
               | "while" "(" expr ")" block
    simple    := IDENT "=" expr | IDENT "++" | IDENT "--"
    expr      := or_e
    or_e      := and_e {"||" and_e}
    and_e     := eq_e {"&&" eq_e}
    eq_e      := rel_e {("==" | "!=") rel_e}
    rel_e     := bor_e {("<" | ">" | "<=" | ">=") bor_e}
    bor_e     := bxor_e {"|" bxor_e}
    bxor_e    := band_e {"^" band_e}
    band_e    := shift_e {"&" shift_e}
    shift_e   := add_e {("<<" | ">>") add_e}
    add_e     := mul_e {("+" | "-") mul_e}
    mul_e     := unary {"*" unary}
    unary     := ("-" | "!") unary | primary
    primary   := IDENT | INT | "(" expr ")" | "true" | "false"

Division is deliberately absent (the paper's library has no divider).
"""

from repro.lang.frontend import parse, parse_process
from repro.lang.tokens import Token, TokenKind, tokenize
from repro.lang import ast_nodes as ast

__all__ = ["parse", "parse_process", "tokenize", "Token", "TokenKind", "ast"]
