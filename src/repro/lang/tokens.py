"""Lexer for the behavioral language."""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import LexError


class TokenKind(enum.Enum):
    IDENT = "IDENT"
    INT = "INT"
    KEYWORD = "KEYWORD"
    PUNCT = "PUNCT"
    EOF = "EOF"


KEYWORDS = frozenset(
    {"process", "var", "if", "else", "for", "while", "true", "false", "int", "uint", "bool"}
)

# Longest-match-first punctuation table.
_PUNCTS = (
    "->", "++", "--", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "(", ")", "{", "}", "[", "]", ",", ";", ":", "=", "<", ">", "+", "-", "*",
    "&", "|", "^", "!",
)


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based line/column)."""

    kind: TokenKind
    text: str
    line: int
    column: int

    def is_punct(self, text: str) -> bool:
        return self.kind is TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind is TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.text!r}, {self.line}:{self.column})"


def tokenize(source: str) -> list[Token]:
    """Tokenize behavioral source text.

    Skips whitespace and ``//`` line comments; raises :class:`LexError` on
    any unrecognized character.  The returned list always ends with an EOF
    token.
    """
    tokens: list[Token] = []
    pos = 0
    line = 1
    line_start = 0
    n = len(source)
    while pos < n:
        ch = source[pos]
        if ch == "\n":
            line += 1
            pos += 1
            line_start = pos
            continue
        if ch in " \t\r":
            pos += 1
            continue
        if source.startswith("//", pos):
            while pos < n and source[pos] != "\n":
                pos += 1
            continue
        column = pos - line_start + 1
        if ch.isdigit():
            end = pos
            while end < n and source[end].isdigit():
                end += 1
            tokens.append(Token(TokenKind.INT, source[pos:end], line, column))
            pos = end
            continue
        if ch.isalpha() or ch == "_":
            end = pos
            while end < n and (source[end].isalnum() or source[end] == "_"):
                end += 1
            text = source[pos:end]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, line, column))
            pos = end
            continue
        for punct in _PUNCTS:
            if source.startswith(punct, pos):
                tokens.append(Token(TokenKind.PUNCT, punct, line, column))
                pos += len(punct)
                break
        else:
            raise LexError(f"unexpected character {ch!r}", line, column)
    tokens.append(Token(TokenKind.EOF, "", line, n - line_start + 1))
    return tokens
