"""Recursive-descent parser for the behavioral language."""

from __future__ import annotations

from repro.errors import ParseError
from repro.lang import ast_nodes as ast
from repro.lang.tokens import Token, TokenKind, tokenize

# Binary operator precedence tiers, lowest first.  Each tier is left
# associative; this table drives a single precedence-climbing routine.
_PRECEDENCE: tuple[tuple[str, ...], ...] = (
    ("||",),
    ("&&",),
    ("==", "!="),
    ("<", ">", "<=", ">="),
    ("|",),
    ("^",),
    ("&",),
    ("<<", ">>"),
    ("+", "-"),
    ("*",),
)


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast_nodes.Process`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ------------------------------------------------------

    def _peek(self) -> Token:
        return self._tokens[self._pos]

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect_punct(self, text: str) -> Token:
        token = self._peek()
        if not token.is_punct(text):
            raise ParseError(f"expected {text!r}, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        token = self._peek()
        if not token.is_keyword(text):
            raise ParseError(f"expected keyword {text!r}, found {token.text!r}", token.line, token.column)
        return self._advance()

    def _expect_ident(self) -> Token:
        token = self._peek()
        if token.kind is not TokenKind.IDENT:
            raise ParseError(f"expected identifier, found {token.text!r}", token.line, token.column)
        return self._advance()

    # -- grammar ------------------------------------------------------------

    def parse_process(self) -> ast.Process:
        start = self._expect_keyword("process")
        name = self._expect_ident().text
        self._expect_punct("(")
        inputs = self._parse_param_list(")")
        self._expect_punct(")")
        outputs: tuple[ast.Param, ...] = ()
        if self._peek().is_punct("->"):
            self._advance()
            self._expect_punct("(")
            outputs = self._parse_param_list(")")
            self._expect_punct(")")
        body = self._parse_block()
        eof = self._peek()
        if eof.kind is not TokenKind.EOF:
            raise ParseError(f"trailing input after process body: {eof.text!r}", eof.line, eof.column)
        if not outputs:
            raise ParseError("process must declare at least one output", start.line, start.column)
        return ast.Process(name=name, inputs=inputs, outputs=outputs, body=body, line=start.line)

    def _parse_param_list(self, closer: str) -> tuple[ast.Param, ...]:
        params: list[ast.Param] = []
        if self._peek().is_punct(closer):
            return ()
        while True:
            name = self._expect_ident().text
            self._expect_punct(":")
            params.append(ast.Param(name, self._parse_type()))
            if self._peek().is_punct(","):
                self._advance()
                continue
            return tuple(params)

    def _parse_type(self) -> ast.Type:
        token = self._peek()
        if token.is_keyword("bool"):
            self._advance()
            return ast.Type.bool_type()
        signed: bool | None = None
        width: int | None = None
        if token.is_keyword("int") or token.is_keyword("uint"):
            # "int 8" style: keyword followed by a width literal.
            self._advance()
            width_token = self._peek()
            if width_token.kind is not TokenKind.INT:
                raise ParseError("expected bit width after type keyword",
                                 width_token.line, width_token.column)
            self._advance()
            signed = token.text == "int"
            width = int(width_token.text)
        elif token.kind is TokenKind.IDENT:
            # "int8" / "uint16" style: a single identifier token.
            for prefix, is_signed in (("uint", False), ("int", True)):
                rest = token.text.removeprefix(prefix)
                if rest != token.text and rest.isdigit():
                    self._advance()
                    signed = is_signed
                    width = int(rest)
                    break
        if width is None or signed is None:
            raise ParseError(f"expected a type, found {token.text!r}", token.line, token.column)
        if not 1 <= width <= 32:
            raise ParseError(f"bit width must be in [1, 32], got {width}", token.line, token.column)
        return ast.Type(width, signed=signed)

    def _parse_block(self) -> tuple[ast.Stmt, ...]:
        self._expect_punct("{")
        stmts: list[ast.Stmt] = []
        while not self._peek().is_punct("}"):
            stmts.append(self._parse_stmt())
        self._expect_punct("}")
        return tuple(stmts)

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        if token.is_keyword("var"):
            return self._parse_var_decl()
        if token.is_keyword("if"):
            return self._parse_if()
        if token.is_keyword("for"):
            return self._parse_for()
        if token.is_keyword("while"):
            return self._parse_while()
        if token.kind is TokenKind.IDENT:
            stmt = self._parse_simple()
            self._expect_punct(";")
            return stmt
        raise ParseError(f"expected a statement, found {token.text!r}", token.line, token.column)

    def _parse_var_decl(self) -> ast.Stmt:
        start = self._expect_keyword("var")
        name = self._expect_ident().text
        declared: ast.Type | None = None
        init: ast.Expr | None = None
        if self._peek().is_punct(":"):
            self._advance()
            declared = self._parse_type()
            if self._peek().is_punct("["):
                # "var a: int8[16];" — a fixed-size array declaration.
                self._advance()
                size_token = self._peek()
                if size_token.kind is not TokenKind.INT:
                    raise ParseError("expected a constant array size",
                                     size_token.line, size_token.column)
                self._advance()
                self._expect_punct("]")
                self._expect_punct(";")
                return ast.ArrayDecl(line=start.line, name=name,
                                     elem_type=declared,
                                     size=int(size_token.text))
        if self._peek().is_punct("="):
            self._advance()
            init = self._parse_expr()
        self._expect_punct(";")
        return ast.VarDecl(line=start.line, name=name, declared_type=declared, init=init)

    def _parse_simple(self) -> ast.Stmt:
        """An assignment, indexed store, ``x++`` or ``x--`` (statements
        and for-headers; the for-header grammar never uses the store form)."""
        name_token = self._expect_ident()
        name = name_token.text
        token = self._peek()
        if token.is_punct("["):
            self._advance()
            index = self._parse_expr()
            self._expect_punct("]")
            self._expect_punct("=")
            return ast.ArrayAssign(line=name_token.line, name=name,
                                   index=index, value=self._parse_expr())
        if token.is_punct("++") or token.is_punct("--"):
            self._advance()
            op = "+" if token.text == "++" else "-"
            one = ast.IntLit(line=name_token.line, value=1)
            ref = ast.VarRef(line=name_token.line, name=name)
            return ast.Assign(line=name_token.line, name=name,
                              value=ast.BinaryOp(line=name_token.line, op=op, left=ref, right=one))
        self._expect_punct("=")
        return ast.Assign(line=name_token.line, name=name, value=self._parse_expr())

    def _parse_if(self) -> ast.If:
        start = self._expect_keyword("if")
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        then_body = self._parse_block()
        else_body: tuple[ast.Stmt, ...] = ()
        if self._peek().is_keyword("else"):
            self._advance()
            if self._peek().is_keyword("if"):
                else_body = (self._parse_if(),)
            else:
                else_body = self._parse_block()
        return ast.If(line=start.line, cond=cond, then_body=then_body, else_body=else_body)

    def _parse_for(self) -> ast.For:
        start = self._expect_keyword("for")
        self._expect_punct("(")
        init = self._parse_simple()
        if not isinstance(init, ast.Assign):
            raise ParseError("for-header init must assign a scalar variable",
                             start.line, start.column)
        self._expect_punct(";")
        cond = self._parse_expr()
        self._expect_punct(";")
        update = self._parse_simple()
        if not isinstance(update, ast.Assign):
            raise ParseError("for-header update must assign a scalar variable",
                             start.line, start.column)
        self._expect_punct(")")
        body = self._parse_block()
        return ast.For(line=start.line, init=init, cond=cond, update=update, body=body)

    def _parse_while(self) -> ast.While:
        start = self._expect_keyword("while")
        self._expect_punct("(")
        cond = self._parse_expr()
        self._expect_punct(")")
        body = self._parse_block()
        return ast.While(line=start.line, cond=cond, body=body)

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_binary(0)

    def _parse_binary(self, tier: int) -> ast.Expr:
        if tier >= len(_PRECEDENCE):
            return self._parse_unary()
        left = self._parse_binary(tier + 1)
        ops = _PRECEDENCE[tier]
        while self._peek().kind is TokenKind.PUNCT and self._peek().text in ops:
            op_token = self._advance()
            right = self._parse_binary(tier + 1)
            left = ast.BinaryOp(line=op_token.line, op=op_token.text, left=left, right=right)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.is_punct("-") or token.is_punct("!"):
            self._advance()
            operand = self._parse_unary()
            return ast.UnaryOp(line=token.line, op=token.text, operand=operand)
        return self._parse_primary()

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(line=token.line, value=int(token.text))
        if token.is_keyword("true"):
            self._advance()
            return ast.BoolLit(line=token.line, value=True)
        if token.is_keyword("false"):
            self._advance()
            return ast.BoolLit(line=token.line, value=False)
        if token.kind is TokenKind.IDENT:
            self._advance()
            if self._peek().is_punct("["):
                self._advance()
                index = self._parse_expr()
                self._expect_punct("]")
                return ast.IndexExpr(line=token.line, name=token.text,
                                     index=index)
            return ast.VarRef(line=token.line, name=token.text)
        if token.is_punct("("):
            self._advance()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise ParseError(f"expected an expression, found {token.text!r}", token.line, token.column)


def parse_source(source: str) -> ast.Process:
    """Parse behavioral source text into a :class:`Process` AST."""
    return Parser(tokenize(source)).parse_process()
