"""Entry points tying the language pipeline together."""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_source
from repro.lang.typecheck import check_process


def parse_process(source: str) -> ast.Process:
    """Parse and semantically check behavioral source; returns the AST."""
    process = parse_source(source)
    check_process(process)
    return process


def parse(source: str):
    """Parse behavioral source text and compile it to a CDFG.

    This is the main user-facing entry point::

        cdfg = repro.parse(source_text)

    ``source`` is one ``process`` definition in the behavioral language
    (typed ports, ``var`` declarations, assignments, ``if``/``while`` —
    see docs/tutorial.md); it is tokenized, parsed and semantically
    checked before compilation.  Returns a
    :class:`repro.cdfg.graph.CDFG`.  Raises
    :class:`repro.errors.ReproError` subclasses on lexical, syntax or
    type errors.
    """
    # Imported here to avoid a circular import at package load time
    # (repro.cdfg.builder needs the AST classes from this package).
    from repro.cdfg.builder import build_cdfg

    return build_cdfg(parse_process(source))
