"""Entry points tying the language pipeline together."""

from __future__ import annotations

from repro.lang import ast_nodes as ast
from repro.lang.parser import parse_source
from repro.lang.typecheck import check_process


def parse_process(source: str) -> ast.Process:
    """Parse and semantically check behavioral source; returns the AST."""
    process = parse_source(source)
    check_process(process)
    return process


def parse(source: str):
    """Parse behavioral source text and compile it to a CDFG.

    This is the main user-facing entry point::

        cdfg = repro.lang.parse(source_text)

    Returns a :class:`repro.cdfg.graph.CDFG`.
    """
    # Imported here to avoid a circular import at package load time
    # (repro.cdfg.builder needs the AST classes from this package).
    from repro.cdfg.builder import build_cdfg

    return build_cdfg(parse_process(source))
