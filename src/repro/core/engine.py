"""The reusable synthesis engine: one facade over the whole pipeline.

A :class:`SynthesisEngine` owns everything that is shared between the
synthesis runs of one behavioral description — the module library, the
profiled trace store, the minimum-ENC initial design point, and the
content-addressed memo tables of :mod:`repro.core.cache` — so laxity
sweeps, multi-start searches and repeated experiments stop recomputing
identical schedules, replays and merged traces.

:meth:`SynthesisEngine.run` executes one IMPACT flow (Figure 7) and is the
single entry point behind :func:`repro.core.impact.synthesize`; it runs
independent search starts concurrently via :mod:`concurrent.futures`.
:meth:`SynthesisEngine.run_many` executes a batch of runs against the same
shared state.  Results are bit-identical with caching or parallelism
toggled off: every cached artifact is immutable and content-addressed, and
start selection always happens in submission order.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import ConstraintError
from repro.cdfg.graph import CDFG
from repro.cdfg.interpreter import simulate
from repro.core.cache import SynthesisCache
from repro.core.design import DesignPoint
from repro.core.profile import PROFILER
from repro.core.search import (
    SearchConfig,
    SearchHistory,
    design_cost,
    iterative_improvement,
)
from repro.library.library import ModuleLibrary
from repro.library.modules_data import default_library
from repro.sched.engine import ScheduleOptions
from repro.sim.traces import TraceStore


@dataclass
class SynthesisResult:
    """Everything a caller needs about one synthesis run."""

    design: DesignPoint
    initial: DesignPoint
    #: "power", "area", or the WeightedObjective the search minimized.
    mode: object
    laxity: float
    enc_min: float
    enc_budget: float
    history: SearchHistory
    store: TraceStore
    #: Run-window pipeline-cache counters: {"schedule"|"replay"|"traces"|
    #: "total": {"hits", "misses", "hit_rate"}}.  Empty when no cache.
    cache_stats: dict = field(default_factory=dict)
    #: Run-window per-stage timing: {stage: {"calls", "seconds",
    #: "incremental", "full"}} from :data:`repro.core.profile.PROFILER`.
    #: Under parallel multi-start the sibling searches' windows overlap,
    #: so per-run numbers are indicative the same way cache stats are.
    profile: dict = field(default_factory=dict)

    @property
    def enc(self) -> float:
        return self.design.enc

    def summary(self) -> dict:
        """One JSON-serializable dict of the run's headline numbers."""
        total = self.cache_stats.get("total", {})
        mode = getattr(self.mode, "label", self.mode)
        return {
            "mode": mode,
            "laxity": self.laxity,
            "enc_min": round(self.enc_min, 2),
            "enc": round(self.design.enc, 2),
            **self.design.summary(),
            "moves": self.history.total_moves(),
            "evaluations": self.history.evaluations,
            "cache_hits": total.get("hits", 0),
            "cache_misses": total.get("misses", 0),
            "cache_hit_rate": total.get("hit_rate", 0.0),
        }


class SynthesisEngine:
    """Shared-state facade for synthesizing one behavioral description.

    Parameters
    ----------
    cdfg, stimulus:
        The behavioral description and the profiling stimulus.
    library, options:
        Module library and schedule options shared by every run.
    caching:
        The config flag for the memo tables.  ``False`` recomputes every
        pipeline stage (results are bit-identical either way) while still
        counting computations, so speedups stay measurable.
    incremental:
        The config flag for delta-based candidate evaluation: moves with
        a dirty set derive architecture, traces and power estimate by
        patching the parent design point's.  ``False`` forces the full
        path for every candidate; results are bit-identical either way
        (the equivalence suite enforces it).
    cache:
        An optional pre-built pipeline cache.  This is the factory seam
        for the persistent artifact store: pass a
        :class:`~repro.store.persistent.PersistentCache` (e.g. from
        :func:`repro.store.attached_cache`) and every schedule/replay the
        engine computes is read from / published to the shared on-disk
        store.  ``None`` builds a plain in-process
        :class:`~repro.core.cache.SynthesisCache`; when a cache is given
        its own ``enabled`` flag governs and ``caching`` is ignored.
    store, initial:
        Optional pre-computed trace store / initial design point (e.g.
        from an earlier engine); both are lazily built when omitted.
    max_workers:
        Thread budget for parallel multi-start searches (defaults to the
        CPU count, capped by the number of starts).
    """

    def __init__(self, cdfg: CDFG, stimulus: list[dict[str, int]], *,
                 library: ModuleLibrary | None = None,
                 options: ScheduleOptions | None = None,
                 caching: bool = True,
                 incremental: bool = True,
                 cache: SynthesisCache | None = None,
                 store: TraceStore | None = None,
                 initial: DesignPoint | None = None,
                 max_workers: int | None = None):
        self.cdfg = cdfg
        self.stimulus = stimulus
        self.library = library or default_library()
        self.options = options or ScheduleOptions()
        self.cache = cache if cache is not None else SynthesisCache(enabled=caching)
        self._bind_cache(cdfg=cdfg)
        self.incremental = incremental
        self.max_workers = max_workers
        self._store = store
        if store is not None:
            self._bind_cache(trace_store=store)
        self._initial = self._adopt(initial)

    def _bind_cache(self, **objects) -> None:
        """Register id-keyed objects with a store-backed cache, if any."""
        bind = getattr(self.cache, "bind", None)
        if bind is not None:
            bind(**objects)

    # -- shared state ---------------------------------------------------------------

    @property
    def store(self) -> TraceStore:
        """The behavioral profile, simulated once per engine."""
        if self._store is None:
            self._store = simulate(self.cdfg, self.stimulus)
            self._bind_cache(trace_store=self._store)
        return self._store

    @property
    def initial(self) -> DesignPoint:
        """The minimum-ENC fully-parallel design point, built once."""
        if self._initial is None:
            self._initial = DesignPoint.initial(
                self.cdfg, self.library, self.store, self.options,
                cache=self.cache, incremental=self.incremental)
        return self._initial

    def _adopt(self, design: DesignPoint | None) -> DesignPoint | None:
        """Point an externally-built design at this engine's cache.

        Guards the memo tables first: keys embed ``id(cdfg)``/``id(store)``,
        so a design built on foreign objects must be rejected rather than
        allowed to seed entries that could alias a later object at the
        same address.  Re-binding is in place so object identity survives
        (callers hold references); it only changes which memo tables
        future derivations consult, never any synthesized value.
        """
        if design is None:
            return None
        if design.cdfg is not self.cdfg:
            raise ConstraintError(
                "design point was built on a different CDFG than the engine's")
        if self._store is None:
            self._store = design.store
            self._bind_cache(trace_store=self._store)
        elif design.store is not self._store:
            raise ConstraintError(
                "design point was profiled against a different trace store "
                "than the engine's")
        if design.cache is not self.cache:
            design.cache = self.cache
        return design

    # -- the IMPACT flow ------------------------------------------------------------

    def run(self, mode="power", laxity: float = 1.0, *,
            search: SearchConfig | None = None,
            starts: list[DesignPoint] | None = None,
            area_cap: float | None = None,
            parallel_starts: bool = True,
            observer=None) -> SynthesisResult:
        """Run the full IMPACT flow once (see :func:`repro.core.impact.synthesize`).

        ``mode`` is ``"power"``, ``"area"`` or a
        :class:`~repro.core.search.WeightedObjective`.  ``starts`` adds
        extra search starting points (the initial design is always
        included and always defines ``enc_min``); the search runs from
        each — concurrently when ``parallel_starts`` — and the best final
        design wins, with ties broken in start order regardless of
        completion order.  Every start's evaluation count lands in the
        returned history, including the losers'.

        ``observer`` is forwarded to every start's
        :func:`~repro.core.search.iterative_improvement` as the archive
        hook (called for each feasible visited design).  Pass
        ``parallel_starts=False`` with an observer unless it is
        thread-safe — concurrent starts would interleave their offers.

        Returns a :class:`SynthesisResult`.
        """
        if laxity < 1.0:
            raise ConstraintError(f"laxity factor must be >= 1.0, got {laxity}")
        initial = self.initial
        enc_min = initial.enc
        enc_budget = laxity * enc_min
        window = self.cache.snapshot()
        profile_window = PROFILER.snapshot()

        def feasible(design: DesignPoint) -> bool:
            evaluation = design.evaluate()
            if not evaluation.legal or evaluation.enc > enc_budget + 1e-9:
                return False
            return area_cap is None or evaluation.area <= area_cap + 1e-9

        start_points = [initial] + [
            self._adopt(s) for s in (starts or [])
            if s.evaluate().legal and s.enc <= enc_budget + 1e-9
        ]
        results = self._search_starts(start_points, mode, enc_budget, search,
                                      area_cap, parallel_starts, observer)

        best_design: DesignPoint | None = None
        best_history: SearchHistory | None = None
        best_key = (True, float("inf"))  # (infeasible, cost) -- feasible wins
        for design, history in results:
            key = (not feasible(design), design_cost(design, mode, enc_budget))
            if best_design is None or key < best_key:
                best_key = key
                best_design = design
                best_history = history
        # Losing starts' effort counts toward the run, whichever start won.
        best_history.evaluations = sum(h.evaluations for _, h in results)

        return SynthesisResult(
            design=best_design,
            initial=initial,
            mode=mode,
            laxity=laxity,
            enc_min=enc_min,
            enc_budget=enc_budget,
            history=best_history,
            store=self.store,
            cache_stats=self.cache.window_stats(window),
            profile=PROFILER.window(profile_window),
        )

    def _search_starts(self, start_points, mode, enc_budget, search, area_cap,
                       parallel, observer=None):
        """One iterative-improvement search per start, results in start order."""
        if parallel and len(start_points) > 1:
            workers = self.max_workers or os.cpu_count() or 2
            workers = max(1, min(workers, len(start_points)))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                futures = [
                    pool.submit(iterative_improvement, start, mode, enc_budget,
                                search, area_cap=area_cap, observer=observer)
                    for start in start_points
                ]
                return [future.result() for future in futures]
        return [iterative_improvement(start, mode, enc_budget, search,
                                      area_cap=area_cap, observer=observer)
                for start in start_points]

    def run_many(self, runs: Iterable[Mapping], *,
                 parallel: bool = False) -> list[SynthesisResult]:
        """Execute a batch of :meth:`run` calls against the shared state.

        Each element of ``runs`` is a kwargs mapping for :meth:`run`.
        Sequential by default (later runs then reuse everything earlier
        ones cached); ``parallel=True`` dispatches independent runs to a
        thread pool — correct for runs that do not feed each other's
        ``starts``, since the caches are content-addressed and
        thread-safe.
        """
        specs = [dict(spec) for spec in runs]
        self.initial  # materialize shared state once, outside any pool
        if parallel and len(specs) > 1:
            workers = self.max_workers or os.cpu_count() or 2
            workers = max(1, min(workers, len(specs)))
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # Nested pools would deadlock a small worker budget; each
                # run's starts stay sequential inside its worker thread.
                futures = [
                    pool.submit(self.run, **{**spec, "parallel_starts": False})
                    for spec in specs
                ]
                return [future.result() for future in futures]
        return [self.run(**spec) for spec in specs]

    def cache_stats(self) -> dict:
        """Lifetime hit/miss counters of the engine's memo tables."""
        return self.cache.stats()

    # -- differential verification ----------------------------------------------------

    def verify(self, *, design: DesignPoint | None = None,
               stimulus: list[dict[str, int]] | None = None,
               use_iverilog: str = "auto", minimize: bool = True,
               name: str | None = None):
        """Differentially cosimulate a design point across every execution
        model (see :mod:`repro.verify.conformance`).

        Drives ``stimulus`` (default: the engine's profiling stimulus)
        through the CDFG interpreter, duration-normalized STG replay,
        gatesim, and the emitted Verilog's netlist simulator — plus
        iverilog on the printed text when available — and reports any
        output-value or cycle-count disagreement with the first divergent
        stimulus minimized.  Defaults to the initial design point; pass
        ``design`` to verify a searched result.

        Returns a :class:`~repro.verify.conformance.ConformanceReport`;
        call ``report.raise_if_failed()`` to turn divergence into an
        exception.
        """
        from repro.verify.conformance import verify_architecture

        design = self.initial if design is None else self._adopt(design)
        if stimulus is None:
            stimulus, store = self.stimulus, self.store
        else:
            store = None
        report = verify_architecture(
            self.cdfg, design.arch, stimulus, store=store,
            name=name or getattr(self.cdfg, "name", None) or "impact",
            use_iverilog=use_iverilog, minimize=minimize)
        self._publish_verified(design, report, n_passes=len(stimulus))
        return report

    def _publish_verified(self, design: DesignPoint, report,
                          *, n_passes: int) -> None:
        """File the verdict and emitted netlist in the artifact store.

        Only runs against a store-backed cache; publication is provenance
        (signature-keyed verdicts and Verilog text a service client can
        fetch), never a verification shortcut — conformance always
        re-runs, so a stale artifact can never mask a divergence.
        Best-effort: an unwritable store silently degrades.
        """
        design_key = getattr(self.cache, "design_key", None)
        art_store = getattr(self.cache, "store", None)
        if design_key is None or art_store is None:
            return
        try:
            key = design_key(design)
            if key is None:
                return
            art_store.put_json("conformance", key,
                               {"passes": n_passes, **report.summary()})
            from repro.hdl import emit_verilog, lower_architecture
            art_store.put_json(
                "netlist", key,
                {"verilog": emit_verilog(lower_architecture(
                    design.arch, name=report.name))})
        except Exception:
            pass
