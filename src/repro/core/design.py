"""A design point: one (binding, schedule, architecture) triple.

The iterative-improvement search explores a graph of design points; this
class makes each point cheap to derive from its predecessor:

* moves that change only the binding or the multiplexer shapes reuse the
  STG *and* the replay (replay depends only on the schedule, not the
  binding), and — when they declare a :class:`~repro.core.delta.DirtySet`
  — derive the architecture, the merged unit traces and the power
  estimate *incrementally*: clean ports, streams and per-component
  energy terms are shared with the parent point, and only the dirty
  subset is recomputed (Section 2.3's trace manipulation applied to the
  whole evaluation pipeline);
* moves that change the resource constraints re-schedule first and take
  the full path.

The evaluation bundle (ENC, legality, area, Vdd-scaled power) is computed
once per point and cached; its power half is *lazy*, so area-mode
searches never pay for a power estimate.  Incremental and full
evaluation are bit-identical — the randomized equivalence suite
(``tests/test_incremental_equivalence.py``) enforces it.
"""

from __future__ import annotations

from repro.cdfg.graph import CDFG
from repro.core.binding import Binding
from repro.core.delta import DirtySet
from repro.core.mux_restructure import huffman_tree
from repro.library.library import ModuleLibrary
from repro.power.estimator import PowerEstimate, estimate_power
from repro.power.trace_manip import UnitTraces, merge_unit_traces
from repro.rtl.architecture import Architecture
from repro.rtl.builder import build_architecture, derive_architecture
from repro.rtl.mux import MuxSource
from repro.sched.engine import ScheduleOptions, schedule
from repro.sched.replay import ReplayResult, replay
from repro.sched.stg import STG
from repro.sim.traces import TraceStore


class Evaluation:
    """The numbers the search needs about one design point.

    ``slack_ratio`` is the *in-cycle* headroom (cycle window over real
    critical path); ``vdd``/``power_scaled`` use it alone.  The search and
    the Figure 13 experiment additionally exploit *cycle* slack — a design
    whose ENC is under the laxity budget may scale Vdd further at equal
    throughput (see :func:`equal_throughput_vdd`).

    The power half of the bundle is lazy: ``estimate`` (and with it
    ``power_5v``/``power_scaled``) is materialized on first access, so
    area-only consumers never trigger trace merging or power estimation.
    """

    __slots__ = ("enc", "legal", "area", "slack_ratio", "vdd",
                 "_power_fn", "_estimate")

    def __init__(self, enc: float, legal: bool, area: float,
                 slack_ratio: float, vdd: float, power_fn=None,
                 estimate: PowerEstimate | None = None):
        self.enc = enc
        self.legal = legal
        self.area = area
        self.slack_ratio = slack_ratio
        self.vdd = vdd
        self._power_fn = power_fn
        self._estimate = estimate

    @property
    def estimate(self) -> PowerEstimate:
        """The 5 V power estimate, materialized on first use."""
        if self._estimate is None:
            self._estimate = self._power_fn()
        return self._estimate

    @property
    def power_materialized(self) -> bool:
        return self._estimate is not None

    @property
    def power_5v(self) -> float:
        return self.estimate.total

    @property
    def power_scaled(self) -> float:
        scale = (self.vdd / 5.0) ** 2
        return self.estimate.total * scale

    def cost(self, mode: str) -> float:
        if mode == "power":
            return self.power_scaled
        if mode == "area":
            return self.area
        raise ValueError(f"unknown optimization mode {mode!r}")


def equal_throughput_vdd(evaluation: Evaluation, enc_budget: float) -> float:
    """Lowest Vdd at which the design still meets the real-time budget.

    The comparison of Section 4 equalizes performance: every design gets
    ``enc_budget`` cycles of real time per pass, so a design finishing in
    fewer cycles may slow down by ``enc_budget / enc`` on top of its
    in-cycle slack.
    """
    from repro.library.voltage import max_vdd_scaling

    if evaluation.enc <= 0:
        return 5.0
    total = evaluation.slack_ratio * max(1.0, enc_budget / evaluation.enc)
    return max_vdd_scaling(total)


def energy_cost(design: "DesignPoint", enc_budget: float) -> float:
    """Power-mode cost: energy per pass at the equal-throughput Vdd.

    Proportional to the average power at fixed throughput (the denominator
    ``enc_budget x Tclk`` is shared by every candidate), so minimizing it
    minimizes the paper's I-Power.
    """
    evaluation = design.evaluate()
    vdd = equal_throughput_vdd(evaluation, enc_budget)
    return evaluation.power_5v * evaluation.enc * (vdd / 5.0) ** 2


class DesignPoint:
    """One point in the design space; immutable once evaluated.

    Construction is *lazy*: only the schedule and its replay (the inputs a
    derivation needs for legality checks) are materialized eagerly.  The
    architecture, the merged unit traces and the evaluation bundle are
    cached properties built on first use, so candidates the search rejects
    early — an interfering register share, an illegal derivation — never
    pay for RTL construction or trace merging.  When a
    :class:`~repro.core.cache.SynthesisCache` is attached, the schedule,
    replay and trace-merge stages are additionally memoized across design
    points by content signature.

    A point derived with a :class:`~repro.core.delta.DirtySet` (and
    ``incremental`` enabled) keeps a reference to its parent and builds
    its architecture, traces and power estimate by patching the parent's,
    recomputing only the dirty units/ports.
    """

    def __init__(self, cdfg: CDFG, library: ModuleLibrary, store: TraceStore,
                 options: ScheduleOptions, binding: Binding, stg: STG,
                 rep: ReplayResult, tree_policy: frozenset = frozenset(),
                 cache=None, parent: "DesignPoint | None" = None,
                 dirty: DirtySet | None = None, incremental: bool = True):
        self.cdfg = cdfg
        self.library = library
        self.store = store
        self.options = options
        self.binding = binding
        self.stg = stg
        self.rep = rep
        self.tree_policy = tree_policy  # port keys with Huffman-restructured trees
        self.cache = cache
        self.incremental = incremental
        self._parent = parent if (incremental and dirty is not None
                                  and not dirty.reschedule) else None
        self._dirty = dirty
        self._rebuilt_ports: frozenset | None = None
        self._arch: Architecture | None = None
        self._traces: UnitTraces | None = None
        self._liveness: dict[int, set[str]] | None = None
        self._evaluation: Evaluation | None = None

    # -- construction ---------------------------------------------------------------

    @classmethod
    def initial(cls, cdfg: CDFG, library: ModuleLibrary, store: TraceStore,
                options: ScheduleOptions | None = None,
                cache=None, incremental: bool = True) -> "DesignPoint":
        """The paper's starting point: fully parallel, fastest modules."""
        options = options or ScheduleOptions()
        bind = getattr(cache, "bind", None)
        if bind is not None:
            # A store-backed cache needs content digests for the id-keyed
            # memo keys before the first schedule/replay lookup.
            bind(cdfg=cdfg, trace_store=store)
        binding = Binding.initial_parallel(cdfg, library)
        stg = schedule(cdfg, binding, options, cache=cache)
        rep = replay(stg, cdfg, store, cache=cache)
        return cls(cdfg, library, store, options, binding, stg, rep,
                   cache=cache, incremental=incremental)

    def with_binding(self, binding: Binding, reschedule: bool,
                     dirty: DirtySet | None = None) -> "DesignPoint":
        """Derive a new point after a binding edit.

        Re-scheduling invalidates earlier register-sharing legality proofs
        (lifetimes are a property of the schedule), so the derived point is
        re-checked and rejected if any shared register's carriers now
        interfere.  Rejection happens before any architecture is built.

        ``dirty`` is the applying move's declaration of what it touched;
        for non-rescheduling moves it enables the incremental evaluation
        path.  For rescheduling moves a dirty set with ``reschedule``
        (see :meth:`DirtySet.for_reschedule`) enables *incremental
        rescheduling*: the scheduler replays this point's recorded
        fragment scripts where the binding edit left their fingerprints
        intact, and replay reuses this point's per-pass traces for passes
        avoiding re-scheduled states — both bit-identical to the full
        path.  Passing no dirty set falls back to full evaluation.
        """
        memo = self.cache.designs if self.cache is not None else None
        if reschedule:
            # The schedule is a function of (CDFG, binding, options), so
            # the binding signature alone keys the derived point — a hit
            # skips scheduling and replay entirely.  A disabled memo
            # still counts the derivation as a miss, keeping cached and
            # uncached miss counters comparable.
            if memo is not None:
                key = (id(self.cdfg), id(self.store), self.options,
                       binding.signature(), self.tree_policy, True)
                return memo.get_or_compute(
                    key, lambda: self._derive_rescheduled(binding, dirty))
            return self._derive_rescheduled(binding, dirty)
        # A non-rescheduling derivation keeps this point's STG, which is
        # a product of its move history, not of ``binding`` — the key
        # needs the STG signature too.
        if memo is not None:
            key = (id(self.cdfg), id(self.store), self.options,
                   binding.signature(), self.tree_policy, False,
                   self.stg.signature())
            return memo.get_or_compute(
                key, lambda: self._derive_rebound(binding, dirty))
        return self._derive_rebound(binding, dirty)

    def _derive_rescheduled(self, binding: Binding,
                            dirty: DirtySet | None) -> "DesignPoint":
        use_parent = (self.incremental and dirty is not None
                      and dirty.reschedule)
        stg = schedule(self.cdfg, binding, self.options, cache=self.cache,
                       parent=self.stg if use_parent else None)
        rep = replay(stg, self.cdfg, self.store, cache=self.cache,
                     parent=(self.stg, self.rep) if use_parent else None)
        # A rescheduling move usually perturbs only unit assignment,
        # not timing: when the new STG is replay-equivalent to the
        # parent's (same states, durations, op placements and
        # transitions — only ``op.fu`` may differ), every lifetime
        # is unchanged and the named units are the only dirty ones,
        # so the architecture/traces/power can be *derived* exactly
        # as for a non-rescheduling move instead of rebuilt.
        if (use_parent and
                stg.replay_signature() == self.stg.replay_signature()):
            dirty = DirtySet(fu_ids=dirty.fu_ids, reg_ids=dirty.reg_ids,
                             port_keys=dirty.port_keys)
        else:
            dirty = None
        derived = DesignPoint(self.cdfg, self.library, self.store, self.options,
                              binding, stg, rep, self.tree_policy,
                              cache=self.cache, parent=self, dirty=dirty,
                              incremental=self.incremental)
        if dirty is not None:
            # Replay-equivalent STG: liveness is a function of the
            # STG's replay content, so the parent's solve is exact.
            derived._liveness = self._liveness
        derived.check_register_sharing()
        return derived

    def _derive_rebound(self, binding: Binding,
                        dirty: DirtySet | None) -> "DesignPoint":
        derived = DesignPoint(self.cdfg, self.library, self.store, self.options,
                              binding, self.stg, self.rep, self.tree_policy,
                              cache=self.cache, parent=self, dirty=dirty,
                              incremental=self.incremental)
        # Liveness depends only on (CDFG, STG), both shared.
        derived._liveness = self._liveness
        return derived

    def check_register_sharing(self) -> None:
        """Raise if two carriers of one register are simultaneously alive."""
        from itertools import combinations

        from repro.errors import BindingError
        from repro.core.liveness import carriers_interfere

        shared = [r for r in self.binding.regs.values() if len(r.carriers) > 1]
        if not shared:
            return
        liveness = self.liveness()
        for reg in shared:
            for a, b in combinations(sorted(reg.carriers), 2):
                if carriers_interfere(liveness, a, b):
                    raise BindingError(
                        f"register {reg.id}: carriers {a!r} and {b!r} interfere "
                        f"under the new schedule")

    def with_tree_policy(self, port_key: tuple) -> "DesignPoint":
        """Derive a new point with one more Huffman-restructured mux tree."""
        policy = self.tree_policy | {port_key}
        memo = self.cache.designs if self.cache is not None else None
        if memo is not None:
            # Same key space as the non-rescheduling binding derivation:
            # (binding, STG, policy) determine the point either way.
            key = (id(self.cdfg), id(self.store), self.options,
                   self.binding.signature(), policy, False,
                   self.stg.signature())
            return memo.get_or_compute(
                key, lambda: self._derive_policy(policy, port_key))
        return self._derive_policy(policy, port_key)

    def _derive_policy(self, policy: frozenset,
                       port_key: tuple) -> "DesignPoint":
        derived = DesignPoint(self.cdfg, self.library, self.store, self.options,
                              self.binding, self.stg, self.rep, policy,
                              cache=self.cache, parent=self,
                              dirty=DirtySet.for_ports(port_key),
                              incremental=self.incremental)
        derived._liveness = self._liveness
        return derived

    # -- lazy pipeline stages --------------------------------------------------------

    @property
    def arch(self) -> Architecture:
        """The RT architecture, built (and tree-restructured) on first use."""
        if self._arch is None:
            parent = self._parent
            if parent is not None:
                arch, rebuilt = derive_architecture(parent.arch, self.binding,
                                                    self._dirty)
                self._rebuilt_ports = rebuilt
                # Only re-wired ports can carry a stale balanced tree; a
                # shared port inherited its (possibly restructured) tree
                # — and the critical paths computed with it — wholesale.
                pending = [k for k in self.tree_policy if k in rebuilt]
            else:
                arch = build_architecture(self.cdfg, self.binding, self.stg,
                                          clock_ns=self.options.clock_ns)
                pending = list(self.tree_policy)
            if pending:
                # Restructuring needs the merged port statistics, and
                # changes timing — invalidate the affected states after.
                traces = self._merge_traces(arch)
                self._apply_tree_policy(arch, traces, pending)
                self._traces = traces
            self._arch = arch
        return self._arch

    @property
    def traces(self) -> UnitTraces:
        """Merged per-unit traces, computed on first use."""
        if self._traces is None:
            # Building the architecture may already merge the traces as a
            # side effect (tree-policy restructuring needs them).
            arch = self.arch
            if self._traces is None:
                self._traces = self._merge_traces(arch)
        return self._traces

    def _merge_traces(self, arch: Architecture) -> UnitTraces:
        parent = self._parent
        if parent is not None and self._rebuilt_ports is not None:
            return merge_unit_traces(arch, self.store, self.rep,
                                     cache=self.cache, parent=parent.traces,
                                     dirty=self._dirty,
                                     dirty_ports=self._rebuilt_ports)
        return merge_unit_traces(arch, self.store, self.rep, cache=self.cache)

    def liveness(self) -> dict[int, set[str]]:
        """Carrier liveness over this point's STG, computed once.

        Depends only on (CDFG, STG), so every register-sharing candidate
        generated from this point reuses one fixpoint solve.
        """
        if self._liveness is None:
            from repro.core.liveness import carrier_liveness

            self._liveness = carrier_liveness(self)
        return self._liveness

    def _apply_tree_policy(self, arch: Architecture, traces: UnitTraces,
                           pending: list[tuple]) -> None:
        touched: set[int] = set()
        for key in pending:
            port = arch.datapath.ports.get(key)
            if port is None or port.tree is None:
                continue  # the port vanished under a later binding change
            stats = {s: (a, p) for s, a, p in traces.port_stats.get(key, [])}
            sources = [MuxSource(s, *stats.get(s, (0.0, 0.0))) for s in port.sources]
            arch.set_tree(key, huffman_tree(sources), invalidate=False)
            touched |= arch.datapath.ports[key].driver_states()
        arch.invalidate_timing(sorted(touched))

    # -- evaluation -----------------------------------------------------------------

    def evaluate(self) -> Evaluation:
        if self._evaluation is None:
            legal = not self.arch.check_timing()
            slack = self.arch.worst_slack_ratio() if legal else 1.0
            if slack == float("inf"):
                slack = 5.0
            vdd = self.arch.scaled_vdd() if legal else 5.0
            self._evaluation = Evaluation(
                enc=self.enc,
                legal=legal,
                area=self.arch.area(),
                slack_ratio=slack,
                vdd=vdd,
                power_fn=self._estimate_5v,
            )
        return self._evaluation

    def _estimate_5v(self) -> PowerEstimate:
        """The 5 V power estimate, patched from the parent's when possible."""
        parent = self._parent
        if (parent is not None and self._rebuilt_ports is not None
                and parent.rep is self.rep
                and parent._evaluation is not None
                and parent._evaluation.power_materialized):
            estimate = estimate_power(
                self.arch, self.traces, vdd=5.0,
                reuse=parent._evaluation.estimate,
                dirty_fus=self._dirty.fu_ids,
                dirty_regs=self._dirty.reg_ids,
                dirty_ports=self._rebuilt_ports)
        else:
            estimate = estimate_power(self.arch, self.traces, vdd=5.0)
        # Every parent-derived artifact is now materialized (the estimate
        # forced arch and traces): release the parent so a committed
        # chain does not pin every ancestor's architecture and streams.
        self._parent = None
        return estimate

    @property
    def enc(self) -> float:
        """Empirical ENC under the architecture's (normalized) durations."""
        total = sum(visits * self.arch.state_duration(sid)
                    for sid, visits in self.rep.state_visits.items())
        return total / self.store.n_passes if self.store.n_passes else 0.0

    def summary(self) -> dict[str, float]:
        ev = self.evaluate()
        return {
            "enc": round(ev.enc, 2),
            "area": round(ev.area, 1),
            "vdd": round(ev.vdd, 2),
            "power_5v_mw": round(ev.power_5v, 4),
            "power_scaled_mw": round(ev.power_scaled, 4),
            "legal": ev.legal,
            "fus": len(self.binding.fus),
            "registers": len(self.binding.regs),
            "mux2": self.arch.datapath.total_mux_count(),
            "states": self.stg.n_states,
        }
