"""IMPACT's core: binding, moves, the iterative-improvement search.

This package is the paper's primary contribution — everything else in the
library is substrate.  :mod:`repro.core.impact` wires the Figure 7 flow
together; :mod:`repro.core.search` is the SCALP-style variable-depth search;
:mod:`repro.core.moves` the move set; :mod:`repro.core.mux_restructure` the
Huffman multiplexer-tree restructuring of Figure 12.
"""

from repro.core.binding import Binding, FUInstance, RegInstance
from repro.core.cache import CacheStats, MemoTable, SynthesisCache
from repro.core.delta import DirtySet
from repro.core.engine import SynthesisEngine, SynthesisResult
from repro.core.profile import PROFILER, Profiler

__all__ = [
    "Binding",
    "FUInstance",
    "RegInstance",
    "CacheStats",
    "DirtySet",
    "MemoTable",
    "PROFILER",
    "Profiler",
    "SynthesisCache",
    "SynthesisEngine",
    "SynthesisResult",
]
