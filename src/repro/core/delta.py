"""Dirty sets: what one move invalidates in a derived design point.

The paper's trace-manipulation premise (Section 2.3) is that a synthesis
step edits a *small* part of the design, so the analyses — merged unit
traces, the power estimate, the RT structure itself — should be patched,
not recomputed.  A :class:`DirtySet` is a move's declaration of exactly
what it touched: the functional units whose operation sets or modules
changed, the registers whose carrier sets changed, and any multiplexer
ports it edited directly (tree restructuring).  Everything else in the
derived point is structurally shared with its parent.

The unit-level sets are closed over the datapath by
:func:`affected_ports`: a port is dirty when its key names a dirty unit
(its driver set changes with the unit's operations) or when any of its
*sources* names one (the signal feeding it merges differently, so both
its selection statistics and its source activities change).  Moves that
re-schedule invalidate the STG itself, which invalidates every lifetime
and every port — they declare ``reschedule`` and the derivation falls
back to the full path.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Port/source keys are the plain tuples of :mod:`repro.rtl.datapath`.
PortKey = tuple


@dataclass(frozen=True)
class DirtySet:
    """What a move invalidates, relative to the parent design point.

    ``fu_ids`` are units whose merged trace, energy term, datapath ports
    or delays may differ (operation set, width or module changed —
    including units the move created); ``reg_ids`` likewise for registers
    (including registers the move deleted); ``port_keys`` are multiplexer
    ports the move edits directly (tree restructuring).  ``reschedule``
    marks moves that build a new STG: every schedule-derived artifact is
    invalid and the derivation must take the full path.
    """

    fu_ids: frozenset[int] = frozenset()
    reg_ids: frozenset[int] = frozenset()
    port_keys: frozenset[PortKey] = frozenset()
    reschedule: bool = False

    @classmethod
    def for_fus(cls, *fu_ids: int) -> "DirtySet":
        return cls(fu_ids=frozenset(fu_ids))

    @classmethod
    def for_regs(cls, *reg_ids: int) -> "DirtySet":
        return cls(reg_ids=frozenset(reg_ids))

    @classmethod
    def for_ports(cls, *port_keys: PortKey) -> "DirtySet":
        return cls(port_keys=frozenset(port_keys))

    @classmethod
    def full(cls) -> "DirtySet":
        return cls(reschedule=True)

    @classmethod
    def for_reschedule(cls, *fu_ids: int) -> "DirtySet":
        """A rescheduling move that names the units it touched.

        Unlike :meth:`full`, the derivation keeps the parent design point
        as a reference: the scheduler replays recorded fragment scripts
        whose fingerprints survive the binding edit, and replay reuses the
        parent's per-pass traces for passes that avoid re-scheduled
        states (see docs/architecture.md, "Incremental scheduling").
        """
        return cls(fu_ids=frozenset(fu_ids), reschedule=True)

    def dirty_sources(self) -> frozenset[tuple]:
        """Source keys whose signal content or activity may have changed."""
        return (frozenset(("fu", f) for f in self.fu_ids)
                | frozenset(("reg", r) for r in self.reg_ids))


def affected_ports(parent_arch, dirty: DirtySet) -> frozenset[PortKey]:
    """Close a move's dirty set over the parent's datapath ports.

    Returns every *parent* port that cannot be shared by the derived
    architecture.  Ports of units the move created do not exist in the
    parent; the incremental builder catches them by key
    (:func:`port_key_dirty`) while re-wiring.
    """
    dirty_sources = dirty.dirty_sources()
    keys = set(dirty.port_keys)
    for key, port in parent_arch.datapath.ports.items():
        if port_key_dirty(key, dirty):
            keys.add(key)
        elif dirty_sources and any(s in dirty_sources for s in port.sources):
            keys.add(key)
    return frozenset(keys)


def port_key_dirty(key: PortKey, dirty: DirtySet) -> bool:
    """True when a port's key names a dirty unit (or is listed directly)."""
    if key in dirty.port_keys:
        return True
    if key[0] == "fu_in":
        return key[1] in dirty.fu_ids
    if key[0] == "reg_in":
        return key[1] in dirty.reg_ids
    return False
