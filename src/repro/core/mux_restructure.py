"""Huffman multiplexer-tree restructuring — Figure 12 of the paper.

Ranking mux inputs by increasing activity-probability (ap) product and
ignoring the normalizing denominators turns tree construction into source
coding: give high-ap signals short paths to the output.  The Huffman
construction is greedy (the normalizing terms make it approximate, as the
paper notes) but fast and effective; the worked example drops the tree
activity from 1.09 to 0.72 (-34 %).

``ap_new`` of a merged subtree follows the paper's pseudo-code: the summed
probability of the subtree times the total activity of the multiplexers
inside it.
"""

from __future__ import annotations

import heapq
import itertools

from repro.errors import ArchitectureError
from repro.rtl.mux import MuxSource, MuxTree, TreeShape


def huffman_tree(sources: list[MuxSource]) -> MuxTree:
    """RESTRUCTURE_MUX of Figure 12: Huffman construction over ap products."""
    if not sources:
        raise ArchitectureError("cannot restructure a mux with no sources")
    if len(sources) == 1:
        return MuxTree(sources[0])

    counter = itertools.count()
    # Heap entries: (ap, tiebreak, shape, sum_p, subtree_mux_activity)
    heap: list[tuple[float, int, TreeShape, float, float]] = []
    for source in sources:
        ap = source.activity * source.prob
        heapq.heappush(heap, (ap, next(counter), source, source.prob, 0.0))

    while len(heap) > 1:
        ap_a, _, shape_a, p_a, act_a = heapq.heappop(heap)
        ap_b, _, shape_b, p_b, act_b = heapq.heappop(heap)
        merged: TreeShape = (shape_a, shape_b)
        p_sum = p_a + p_b
        # Activity of the new 2:1 mux: weighted-ap of everything beneath it.
        sub_ap = _subtree_ap(merged)
        node_activity = sub_ap / p_sum if p_sum > 0.0 else 0.0
        subtree_activity = act_a + act_b + node_activity
        ap_new = p_sum * subtree_activity
        heapq.heappush(heap, (ap_new, next(counter), merged, p_sum, subtree_activity))

    return MuxTree(heap[0][2])


def _subtree_ap(shape: TreeShape) -> float:
    if isinstance(shape, MuxSource):
        return shape.activity * shape.prob
    return _subtree_ap(shape[0]) + _subtree_ap(shape[1])


def restructure_mux(tree: MuxTree) -> MuxTree:
    """Huffman-restructure an existing tree, keeping its source stats."""
    return huffman_tree(tree.sources())
