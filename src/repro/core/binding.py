"""Resource binding: operation -> functional unit, variable -> register.

The binding is the mutable half of an RT-level design point: the IMPACT
moves (Section 3.2) edit it — sharing merges FU instances or registers,
splitting separates them, module substitution swaps a unit's library
module.  The initial binding is the paper's starting point: a fully
parallel architecture with each operation on its own fastest-module unit
and each variable in its own register.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import BindingError
from repro.cdfg.graph import CDFG
from repro.cdfg.node import MEMORY_KINDS, OpKind
from repro.library.library import ModuleLibrary
from repro.library.memory import RamSpec, ram_access_delay, ram_spec
from repro.library.module import ModuleSpec, scale_delay


@dataclass
class FUInstance:
    """One functional-unit instance in the datapath."""

    id: int
    module: ModuleSpec
    ops: set[int] = field(default_factory=set)
    width: int = 1

    def kinds(self, cdfg: CDFG) -> frozenset[OpKind]:
        return frozenset(cdfg.node(op).kind for op in self.ops)


@dataclass
class RegInstance:
    """One register in the datapath, holding one or more variables."""

    id: int
    width: int
    carriers: set[str] = field(default_factory=set)


@dataclass
class MemInstance:
    """One RAM instance in the datapath, realizing one array.

    ``port_of`` assigns every LOAD/STORE node of the array to one of the
    RAM's access ports; the scheduler serializes accesses sharing a port,
    and the ``BindMemoryPort`` move re-balances that assignment.
    """

    name: str
    spec: RamSpec
    width: int
    depth: int
    port_of: dict[int, int] = field(default_factory=dict)

    def access_delay(self) -> float:
        return ram_access_delay(self.spec, self.width, self.depth)

    def ports_used(self) -> set[int]:
        return set(self.port_of.values())


def op_width(cdfg: CDFG, node_id: int) -> int:
    """Width a functional unit must have to execute a node: max of ports."""
    node = cdfg.node(node_id)
    width = node.width
    for edge in cdfg.in_edges(node_id):
        width = max(width, edge.width)
    return width


class Binding:
    """Mutable op->FU and variable->register assignment."""

    def __init__(self, cdfg: CDFG, library: ModuleLibrary):
        self.cdfg = cdfg
        self.library = library
        self.fus: dict[int, FUInstance] = {}
        self.op_to_fu: dict[int, int] = {}
        self.regs: dict[int, RegInstance] = {}
        self.carrier_to_reg: dict[str, int] = {}
        self.mems: dict[str, MemInstance] = {}
        self._next_fu = 0
        self._next_reg = 0
        # Lazily computed content signatures; every mutating method clears
        # this (all edits flow through them), so a signature is computed at
        # most once per binding state.
        self._sig_memo: dict[str, tuple] = {}

    # -- construction ----------------------------------------------------------

    @classmethod
    def initial_parallel(cls, cdfg: CDFG, library: ModuleLibrary) -> "Binding":
        """The paper's initial architecture: one fastest FU per op, one
        register per variable."""
        binding = cls(cdfg, library)
        for node in cdfg.fu_nodes():
            width = op_width(cdfg, node.id)
            module = library.fastest({node.kind}, width)
            binding._add_fu(module, {node.id})
        for var, (width, _signed) in sorted(cdfg.var_types.items()):
            binding._add_reg(width, {var})
        # Arrays start on dual-port RAMs with loads spread across both
        # ports (fully parallel, like the FU side); SubstituteRam trades
        # the second port away for area/power.  Stores all take port 0 —
        # a store can never share a state with another access anyway.
        for name, (width, _signed, size) in sorted(cdfg.array_types.items()):
            spec = ram_spec("ram_2p")
            mem = MemInstance(name=name, spec=spec, width=width, depth=size)
            next_load_port = 0
            for node in cdfg.mem_nodes():
                if node.mem != name:
                    continue
                if node.kind is OpKind.LOAD:
                    mem.port_of[node.id] = next_load_port
                    next_load_port = (next_load_port + 1) % spec.ports
                else:
                    mem.port_of[node.id] = 0
            binding.mems[name] = mem
        return binding

    def _add_fu(self, module: ModuleSpec, ops: set[int]) -> FUInstance:
        self._sig_memo.clear()
        fu = FUInstance(id=self._next_fu, module=module, ops=set(ops))
        fu.width = max(op_width(self.cdfg, op) for op in ops)
        self._next_fu += 1
        self.fus[fu.id] = fu
        for op in ops:
            self.op_to_fu[op] = fu.id
        return fu

    def _add_reg(self, width: int, carriers: set[str]) -> RegInstance:
        self._sig_memo.clear()
        reg = RegInstance(id=self._next_reg, width=width, carriers=set(carriers))
        self._next_reg += 1
        self.regs[reg.id] = reg
        for carrier in carriers:
            self.carrier_to_reg[carrier] = reg.id
        return reg

    def clone(self) -> "Binding":
        other = Binding(self.cdfg, self.library)
        other._next_fu = self._next_fu
        other._next_reg = self._next_reg
        for fu in self.fus.values():
            other.fus[fu.id] = FUInstance(fu.id, fu.module, set(fu.ops), fu.width)
        other.op_to_fu = dict(self.op_to_fu)
        for reg in self.regs.values():
            other.regs[reg.id] = RegInstance(reg.id, reg.width, set(reg.carriers))
        other.carrier_to_reg = dict(self.carrier_to_reg)
        for mem in self.mems.values():
            other.mems[mem.name] = MemInstance(
                mem.name, mem.spec, mem.width, mem.depth, dict(mem.port_of))
        return other

    # -- queries -----------------------------------------------------------------

    def fu_of(self, node_id: int) -> FUInstance | None:
        fu_id = self.op_to_fu.get(node_id)
        return None if fu_id is None else self.fus[fu_id]

    def reg_of(self, carrier: str) -> RegInstance:
        try:
            return self.regs[self.carrier_to_reg[carrier]]
        except KeyError:
            raise BindingError(f"no register holds carrier {carrier!r}") from None

    def op_delay(self, node_id: int) -> float:
        """Combinational delay (ns) of one node at 5 V under this binding."""
        node = self.cdfg.node(node_id)
        if node.kind in MEMORY_KINDS:
            mem = self.mems.get(node.mem)
            if mem is None:
                raise BindingError(f"array {node.mem!r} has no RAM instance")
            return mem.access_delay()
        if not node.needs_fu:
            return 0.0
        fu = self.fu_of(node_id)
        if fu is None:
            raise BindingError(f"op {node.name} is not bound to any FU")
        return scale_delay(fu.module, fu.width)

    def delays(self) -> dict[int, float]:
        """Delay of every schedulable node (zero for transfers)."""
        return {n.id: self.op_delay(n.id) for n in self.cdfg.op_nodes()}

    def signature(self) -> tuple:
        """Content signature of the resource constraints (hashable).

        Captures everything scheduling and architecture construction read
        from the binding: the op->unit partition with module and width per
        unit, and the variable->register partition — including instance
        ids, since they key datapath ports.  Two bindings with equal
        signatures yield identical schedules, architectures and merged
        traces for the same CDFG, options and trace store; the memo tables
        in :mod:`repro.core.cache` key on it.
        """
        got = self._sig_memo.get("full")
        if got is not None:
            return got
        fus = tuple(
            (fu_id, fu.module.name, fu.width, tuple(sorted(fu.ops)))
            for fu_id, fu in sorted(self.fus.items())
        )
        regs = tuple(
            (reg_id, reg.width, tuple(sorted(reg.carriers)))
            for reg_id, reg in sorted(self.regs.items())
        )
        got = (fus, regs, self._mem_sig())
        self._sig_memo["full"] = got
        return got

    def _mem_sig(self) -> tuple:
        """Array names are stable program identifiers, so one signature
        form serves all three binding signatures."""
        return tuple(
            (mem.name, mem.spec.name, mem.width, mem.depth,
             tuple(sorted(mem.port_of.items())))
            for mem in sorted(self.mems.values(), key=lambda m: m.name)
        )

    def merge_signature(self) -> tuple:
        """Content signature of exactly what trace merging reads (hashable).

        The merge consumes each unit's (id, width, op set) and each
        register's (id, width, carrier set) — plus the datapath's port
        structure, which is likewise module-free — but never the module
        assignments, so bindings that differ only in module selection
        share one merged-trace object.  Instance ids are included: they
        key streams and datapath ports.
        """
        got = self._sig_memo.get("merge")
        if got is not None:
            return got
        fus = tuple(
            (fu_id, fu.width, tuple(sorted(fu.ops)))
            for fu_id, fu in sorted(self.fus.items())
        )
        regs = tuple(
            (reg_id, reg.width, tuple(sorted(reg.carriers)))
            for reg_id, reg in sorted(self.regs.items())
        )
        got = (fus, regs, self._mem_sig())
        self._sig_memo["merge"] = got
        return got

    def schedule_signature(self) -> tuple:
        """Id-free signature of exactly what scheduling reads (hashable).

        The engine consumes the binding only through its *partitions*: each
        unit's (module, width, op set) fixes delays, occupancy conflicts
        and the input-mux estimate, and each register's carrier set fixes
        write conflicts — instance ids never influence the schedule (the
        ``ScheduledOp.fu`` annotation is not read downstream; architecture
        construction re-resolves units from its own binding).  Bindings
        that differ only in id numbering therefore share one memoized STG.
        """
        got = self._sig_memo.get("schedule")
        if got is not None:
            return got
        fus = tuple(sorted(
            (fu.module.name, fu.width, tuple(sorted(fu.ops)))
            for fu in self.fus.values()
        ))
        regs = tuple(sorted(
            (reg.width, tuple(sorted(reg.carriers)))
            for reg in self.regs.values()
        ))
        got = (fus, regs, self._mem_sig())
        self._sig_memo["schedule"] = got
        return got

    def validate(self) -> None:
        """Every FU op must be bound to a module that implements it."""
        for node in self.cdfg.fu_nodes():
            fu = self.fu_of(node.id)
            if fu is None:
                raise BindingError(f"op {node.name} unbound")
            if not fu.module.implements(node.kind):
                raise BindingError(
                    f"op {node.name} ({node.kind.value}) bound to {fu.module.name} "
                    f"which does not implement it")
            if op_width(self.cdfg, node.id) > fu.width:
                raise BindingError(f"op {node.name} wider than its FU")
        for fu in self.fus.values():
            if not fu.ops:
                raise BindingError(f"FU {fu.id} ({fu.module.name}) has no ops")
            for op in fu.ops:
                if self.op_to_fu.get(op) != fu.id:
                    raise BindingError(f"op {op} back-reference mismatch on FU {fu.id}")
        for var in self.cdfg.var_types:
            if var not in self.carrier_to_reg:
                raise BindingError(f"variable {var!r} has no register")
        for name in self.cdfg.array_types:
            if name not in self.mems:
                raise BindingError(f"array {name!r} has no RAM instance")
        for node in self.cdfg.mem_nodes():
            mem = self.mems.get(node.mem)
            if mem is None:
                raise BindingError(f"array {node.mem!r} has no RAM instance")
            port = mem.port_of.get(node.id)
            if port is None:
                raise BindingError(
                    f"memory op {node.name} has no port on array {node.mem!r}")
            if not 0 <= port < mem.spec.ports:
                raise BindingError(
                    f"memory op {node.name} on port {port} but {mem.spec.name} "
                    f"has only {mem.spec.ports} port(s)")

    # -- moves (mechanics only; legality/cost handled by repro.core.moves) -------

    def merge_fus(self, keep: int, absorb: int, module: ModuleSpec | None = None) -> None:
        """Move every op of ``absorb`` onto ``keep`` (resource sharing)."""
        if keep == absorb:
            raise BindingError("cannot merge an FU with itself")
        self._sig_memo.clear()
        fu_keep = self.fus[keep]
        fu_absorb = self.fus.pop(absorb)
        fu_keep.ops |= fu_absorb.ops
        for op in fu_absorb.ops:
            self.op_to_fu[op] = keep
        if module is not None:
            fu_keep.module = module
        fu_keep.width = max(op_width(self.cdfg, op) for op in fu_keep.ops)
        kinds = fu_keep.kinds(self.cdfg)
        if not fu_keep.module.implements_all(kinds):
            raise BindingError(
                f"module {fu_keep.module.name} cannot implement merged ops "
                f"{sorted(k.value for k in kinds)}")

    def split_fu(self, fu_id: int, ops_out: set[int]) -> FUInstance:
        """Give ``ops_out`` their own new FU of the same module type."""
        fu = self.fus[fu_id]
        if not ops_out or ops_out == fu.ops:
            raise BindingError("split must move a strict non-empty subset of ops")
        if not ops_out <= fu.ops:
            raise BindingError("split ops are not all on the source FU")
        self._sig_memo.clear()
        fu.ops -= ops_out
        fu.width = max(op_width(self.cdfg, op) for op in fu.ops)
        return self._add_fu(fu.module, ops_out)

    def substitute_module(self, fu_id: int, module: ModuleSpec) -> None:
        """Swap an FU's library module (module selection, Section 3.2.2)."""
        fu = self.fus[fu_id]
        kinds = fu.kinds(self.cdfg)
        if not module.implements_all(kinds):
            raise BindingError(
                f"module {module.name} cannot implement {sorted(k.value for k in kinds)}")
        self._sig_memo.clear()
        fu.module = module

    def merge_regs(self, keep: int, absorb: int) -> None:
        """Store ``absorb``'s variables in ``keep`` (register sharing)."""
        if keep == absorb:
            raise BindingError("cannot merge a register with itself")
        self._sig_memo.clear()
        reg_keep = self.regs[keep]
        reg_absorb = self.regs.pop(absorb)
        reg_keep.carriers |= reg_absorb.carriers
        reg_keep.width = max(reg_keep.width, reg_absorb.width)
        for carrier in reg_absorb.carriers:
            self.carrier_to_reg[carrier] = keep

    def split_reg(self, reg_id: int, carriers_out: set[str]) -> RegInstance:
        """Give ``carriers_out`` their own new register."""
        reg = self.regs[reg_id]
        if not carriers_out or carriers_out == reg.carriers:
            raise BindingError("split must move a strict non-empty subset of carriers")
        if not carriers_out <= reg.carriers:
            raise BindingError("split carriers are not all in the source register")
        self._sig_memo.clear()
        reg.carriers -= carriers_out
        reg.width = max(self.cdfg.var_types[c][0] for c in reg.carriers)
        width = max(self.cdfg.var_types[c][0] for c in carriers_out)
        return self._add_reg(width, carriers_out)

    def bind_mem_port(self, array: str, node_id: int, port: int) -> None:
        """Reassign one memory access to another port of its RAM."""
        mem = self.mems.get(array)
        if mem is None:
            raise BindingError(f"array {array!r} has no RAM instance")
        if node_id not in mem.port_of:
            raise BindingError(
                f"node {node_id} is not an access of array {array!r}")
        if not 0 <= port < mem.spec.ports:
            raise BindingError(
                f"port {port} out of range for {mem.spec.name} "
                f"({mem.spec.ports} port(s))")
        self._sig_memo.clear()
        mem.port_of[node_id] = port

    def substitute_ram(self, array: str, spec: RamSpec) -> None:
        """Swap an array's RAM organization (RAM-level module selection).

        Narrowing to fewer ports rebinds every access to port 0 — always
        legal, since the scheduler re-serializes port conflicts on the
        next reschedule.
        """
        mem = self.mems.get(array)
        if mem is None:
            raise BindingError(f"array {array!r} has no RAM instance")
        self._sig_memo.clear()
        mem.spec = spec
        for node_id, port in mem.port_of.items():
            if port >= spec.ports:
                mem.port_of[node_id] = 0

    def summary(self) -> dict[str, int]:
        return {
            "fus": len(self.fus),
            "registers": len(self.regs),
            "memories": len(self.mems),
            "bound_ops": len(self.op_to_fu),
        }
