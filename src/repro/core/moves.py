"""The IMPACT move set (Section 3.2).

Every move is a small immutable object with a signature (for tabu lists), a
``needs_reschedule`` property, and ``apply(design) -> DesignPoint``.  Moves
never mutate their input design point; application clones the binding.

Each move also declares its **dirty set** — :meth:`Move.affected` returns
the :class:`~repro.core.delta.DirtySet` of functional units, registers and
multiplexer ports the move invalidates — and passes it into the
derivation, which is what lets the evaluation pipeline patch the parent's
architecture, merged traces and power estimate instead of recomputing
them.  Rescheduling moves declare a full dirty set and take the full
evaluation path.

========================= ============================ =============
move                      paper section                re-schedule?
========================= ============================ =============
ShareFU                   3.2.3 resource sharing       yes
SplitFU                   3.2.3 resource splitting     no
SubstituteModule          3.2.2 module selection       only on a
                                                       timing violation
ShareRegisters            3.2.3 (registers)            no
SplitRegister             3.2.3 (registers)            no
RestructureMux            3.2.1 mux restructuring      no
BindMemoryPort            3.2.3 (RAM ports)            yes
SubstituteRam             3.2.2 (RAM organization)     yes
========================= ============================ =============

The two memory moves extend the paper's move vocabulary to the RAM
instances arrays are bound to: ``BindMemoryPort`` re-balances accesses
across the ports of a multi-port RAM (more same-state load parallelism,
or fewer address-bus muxes), and ``SubstituteRam`` swaps the RAM
organization the way ``SubstituteModule`` swaps an FU's module —
trading the dual-port RAM's area and capacitance for the single-port
RAM's serialized accesses.  Both always re-schedule: port assignment
feeds the scheduler's same-state conflict checks, and the organization
sets the access delay.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import BindingError, ReproError
from repro.cdfg.node import OpKind
from repro.core.delta import DirtySet
from repro.core.design import DesignPoint
from repro.core.liveness import carriers_interfere
from repro.library.module import scale_area, scale_delay


class Move:
    """Base class; subclasses define signature(), affected() and apply()."""

    def signature(self) -> tuple:
        raise NotImplementedError

    def affected(self, design: DesignPoint) -> DirtySet:
        """What this move invalidates when applied at ``design``.

        Conservative by construction: every unit the move creates,
        deletes or edits — the incremental evaluation layer recomputes
        exactly this set and shares the rest with the parent point.
        ``apply()`` passes this same declaration into the derivation, so
        there is a single source of truth per move.  The one exception
        is :class:`SubstituteModule`, whose application *escalates* to a
        full reschedule when the slower module breaks a cycle window —
        the declaration here describes the non-escalated application.
        """
        raise NotImplementedError

    def apply(self, design: DesignPoint) -> DesignPoint:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.signature()[1:]}>"


@dataclass(frozen=True)
class ShareFU(Move):
    """Merge two functional units (operations share one unit)."""

    keep: int
    absorb: int
    module_name: str

    def signature(self) -> tuple:
        return ("share_fu", self.keep, self.absorb, self.module_name)

    def affected(self, design: DesignPoint) -> DirtySet:
        # Re-schedules — every port and lifetime may move — but only the
        # merged units' regions actually change, so the schedule/replay
        # layer can reuse the parent's untouched fragments and passes.
        return DirtySet.for_reschedule(self.keep, self.absorb)

    def apply(self, design: DesignPoint) -> DesignPoint:
        binding = design.binding.clone()
        module = design.library.get(self.module_name)
        binding.merge_fus(self.keep, self.absorb, module)
        return design.with_binding(binding, reschedule=True,
                                   dirty=self.affected(design))


@dataclass(frozen=True)
class SplitFU(Move):
    """Give one operation of a shared unit its own new unit."""

    fu: int
    op: int

    def signature(self) -> tuple:
        return ("split_fu", self.fu, self.op)

    def affected(self, design: DesignPoint) -> DirtySet:
        return DirtySet.for_fus(self.fu, design.binding._next_fu)

    def apply(self, design: DesignPoint) -> DesignPoint:
        dirty = self.affected(design)
        binding = design.binding.clone()
        new_fu = binding.split_fu(self.fu, {self.op})
        assert new_fu.id in dirty.fu_ids  # the declaration predicted the id
        # The schedule stays legal: the new unit performs the op in the
        # same states the old one did (the assignment set is a superset).
        return design.with_binding(binding, reschedule=False, dirty=dirty)


@dataclass(frozen=True)
class SubstituteModule(Move):
    """Swap a unit's library module (e.g. array -> Wallace multiplier)."""

    fu: int
    module_name: str

    def signature(self) -> tuple:
        return ("substitute", self.fu, self.module_name)

    def affected(self, design: DesignPoint) -> DirtySet:
        return DirtySet.for_fus(self.fu)

    def apply(self, design: DesignPoint) -> DesignPoint:
        binding = design.binding.clone()
        module = design.library.get(self.module_name)
        old_delay = scale_delay(binding.fus[self.fu].module, binding.fus[self.fu].width)
        binding.substitute_module(self.fu, module)
        new_delay = scale_delay(module, binding.fus[self.fu].width)
        candidate = design.with_binding(binding, reschedule=False,
                                        dirty=self.affected(design))
        if new_delay > old_delay and candidate.arch.check_timing():
            # Slower module broke a state's cycle window: re-schedule
            # (the paper re-schedules exactly on cycle-time violations).
            candidate = design.with_binding(
                binding, reschedule=True,
                dirty=DirtySet.for_reschedule(self.fu))
        return candidate


@dataclass(frozen=True)
class ShareRegisters(Move):
    """Store two variables in one register (lifetimes must not overlap)."""

    keep: int
    absorb: int

    def signature(self) -> tuple:
        return ("share_reg", self.keep, self.absorb)

    def affected(self, design: DesignPoint) -> DirtySet:
        return DirtySet.for_regs(self.keep, self.absorb)

    def apply(self, design: DesignPoint) -> DesignPoint:
        # Memoized on the design point: every register-sharing candidate
        # at one search depth shares a single liveness fixpoint.
        liveness = design.liveness()
        keep_carriers = design.binding.regs[self.keep].carriers
        absorb_carriers = design.binding.regs[self.absorb].carriers
        # A register holds one typed view in the emitted RTL: merging a
        # signed and an unsigned carrier would produce a design the HDL
        # backend cannot lower, so it is illegal like an interference.
        var_types = design.cdfg.var_types
        signs = {var_types[c][1] for c in keep_carriers}
        signs |= {var_types[c][1] for c in absorb_carriers}
        if len(signs) > 1:
            raise BindingError(
                f"registers {self.keep}/{self.absorb}: carriers mix signed "
                f"and unsigned views; not representable as one RTL register")
        for a in keep_carriers:
            for b in absorb_carriers:
                if carriers_interfere(liveness, a, b):
                    raise BindingError(
                        f"registers {self.keep}/{self.absorb}: carriers {a!r} and "
                        f"{b!r} are simultaneously alive")
        binding = design.binding.clone()
        binding.merge_regs(self.keep, self.absorb)
        return design.with_binding(binding, reschedule=False,
                                   dirty=self.affected(design))


@dataclass(frozen=True)
class SplitRegister(Move):
    """Give one variable of a shared register its own register."""

    reg: int
    carrier: str

    def signature(self) -> tuple:
        return ("split_reg", self.reg, self.carrier)

    def affected(self, design: DesignPoint) -> DirtySet:
        return DirtySet.for_regs(self.reg, design.binding._next_reg)

    def apply(self, design: DesignPoint) -> DesignPoint:
        dirty = self.affected(design)
        binding = design.binding.clone()
        new_reg = binding.split_reg(self.reg, {self.carrier})
        assert new_reg.id in dirty.reg_ids  # the declaration predicted the id
        return design.with_binding(binding, reschedule=False, dirty=dirty)


def _mem_port_keys(array: str) -> frozenset:
    """All datapath port keys a RAM's buses can occupy (over every
    organization, so spec swaps dirty the ports they grow into)."""
    from repro.library.memory import RAM_SPECS

    max_ports = max(spec.ports for spec in RAM_SPECS)
    return frozenset(
        (kind, array, port)
        for kind in ("mem_addr", "mem_din")
        for port in range(max_ports)
    )


@dataclass(frozen=True)
class BindMemoryPort(Move):
    """Reassign one array access to another port of its RAM."""

    array: str
    node: int
    port: int

    def signature(self) -> tuple:
        return ("bind_mem_port", self.array, self.node, self.port)

    def affected(self, design: DesignPoint) -> DirtySet:
        # Rescheduling; when the new STG turns out replay-equivalent the
        # derivation still rewires the RAM's buses (named here) — port
        # assignment changes which bus each access drives even when no
        # op moved state.
        return DirtySet(port_keys=_mem_port_keys(self.array), reschedule=True)

    def apply(self, design: DesignPoint) -> DesignPoint:
        binding = design.binding.clone()
        binding.bind_mem_port(self.array, self.node, self.port)
        return design.with_binding(binding, reschedule=True,
                                   dirty=self.affected(design))


@dataclass(frozen=True)
class SubstituteRam(Move):
    """Swap an array's RAM organization (single- vs dual-port)."""

    array: str
    spec_name: str

    def signature(self) -> tuple:
        return ("substitute_ram", self.array, self.spec_name)

    def affected(self, design: DesignPoint) -> DirtySet:
        return DirtySet(port_keys=_mem_port_keys(self.array), reschedule=True)

    def apply(self, design: DesignPoint) -> DesignPoint:
        from repro.library.memory import ram_spec

        binding = design.binding.clone()
        binding.substitute_ram(self.array, ram_spec(self.spec_name))
        return design.with_binding(binding, reschedule=True,
                                   dirty=self.affected(design))


@dataclass(frozen=True)
class RestructureMux(Move):
    """Huffman-restructure one multiplexer tree (Figure 12)."""

    port_key: tuple

    def signature(self) -> tuple:
        return ("restructure_mux", self.port_key)

    def affected(self, design: DesignPoint) -> DirtySet:
        return DirtySet.for_ports(self.port_key)

    def apply(self, design: DesignPoint) -> DesignPoint:
        if self.port_key in design.tree_policy:
            raise ReproError(f"port {self.port_key!r} already restructured")
        return design.with_tree_policy(self.port_key)


def generate_moves(design: DesignPoint) -> list[Move]:
    """All applicable moves at a design point (legality pre-filtered
    cheaply; expensive checks happen at apply time)."""
    moves: list[Move] = []
    cdfg = design.cdfg
    binding = design.binding
    library = design.library

    fu_ids = sorted(binding.fus)
    kind_sets = {fu_id: binding.fus[fu_id].kinds(cdfg) for fu_id in fu_ids}
    for i, a in enumerate(fu_ids):
        for b in fu_ids[i + 1:]:
            kinds = kind_sets[a] | kind_sets[b]
            width = max(binding.fus[a].width, binding.fus[b].width)
            candidates = library.candidates(kinds)
            if not candidates:
                continue
            keep_module = binding.fus[a].module
            if not keep_module.implements_all(kinds):
                keep_module = min(candidates, key=lambda m: scale_area(m, width))
            moves.append(ShareFU(a, b, keep_module.name))

    for fu_id, fu in binding.fus.items():
        if len(fu.ops) >= 2:
            for op in sorted(fu.ops):
                moves.append(SplitFU(fu_id, op))
        kinds = kind_sets[fu_id]
        for alt in library.alternatives(fu.module, kinds):
            moves.append(SubstituteModule(fu_id, alt.name))

    reg_ids = sorted(binding.regs)
    for i, a in enumerate(reg_ids):
        for b in reg_ids[i + 1:]:
            moves.append(ShareRegisters(a, b))
    for reg_id, reg in binding.regs.items():
        if len(reg.carriers) >= 2:
            for carrier in sorted(reg.carriers):
                moves.append(SplitRegister(reg_id, carrier))

    for port in design.arch.datapath.mux_ports():
        if port.n_sources() >= 3 and port.key not in design.tree_policy:
            moves.append(RestructureMux(port.key))

    from repro.library.memory import RAM_SPECS

    for name in sorted(binding.mems):
        mem = binding.mems[name]
        for spec in RAM_SPECS:
            if spec.name != mem.spec.name:
                moves.append(SubstituteRam(name, spec.name))
        if mem.spec.ports > 1:
            # Only loads are worth rebalancing: a store never shares a
            # state with another access, so its port never constrains.
            for node_id in sorted(mem.port_of):
                if cdfg.node(node_id).kind is not OpKind.LOAD:
                    continue
                for port in range(mem.spec.ports):
                    if port != mem.port_of[node_id]:
                        moves.append(BindMemoryPort(name, node_id, port))

    return moves
