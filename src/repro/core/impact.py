"""IMPACT: the top-level synthesis flow (Figure 7).

1. Behavioral simulation of the CDFG over a typical stimulus records the
   traces and statistics for power estimation.
2. The initial RT architecture is fully parallel (fastest modules, one
   register per variable) and is scheduled with Wavesched at the designer's
   clock period; its ENC is the minimum achievable with the library, so the
   laxity factor times it is the performance budget.
3. The variable-depth iterative-improvement search explores move sequences
   (scheduling, module selection, resource sharing/splitting, multiplexer
   restructuring are all interleaved) until no sequence reduces the cost.

``mode="power"`` optimizes the Vdd-scaled power estimate (what the paper's
I-Power designs minimize); ``mode="area"`` the area model (the paper's
area-optimization mode, used as the comparison base).

:func:`synthesize` is the one-shot convenience wrapper; callers running
several related flows (laxity sweeps, repeated experiments) should hold a
:class:`~repro.core.engine.SynthesisEngine` instead, which keeps the trace
store, the initial design point and the pipeline memo tables warm across
runs.
"""

from __future__ import annotations

from repro.cdfg.graph import CDFG
from repro.core.design import DesignPoint
from repro.core.engine import SynthesisEngine, SynthesisResult
from repro.core.search import SearchConfig
from repro.library.library import ModuleLibrary
from repro.sched.engine import ScheduleOptions
from repro.sim.traces import TraceStore

__all__ = ["SynthesisResult", "SynthesisEngine", "synthesize"]


def synthesize(
    cdfg: CDFG,
    stimulus: list[dict[str, int]],
    *,
    mode: str = "power",
    laxity: float = 1.0,
    library: ModuleLibrary | None = None,
    options: ScheduleOptions | None = None,
    search: SearchConfig | None = None,
    store: TraceStore | None = None,
    initial: DesignPoint | None = None,
    starts: list[DesignPoint] | None = None,
    area_cap: float | None = None,
    caching: bool = True,
    parallel_starts: bool = False,
) -> SynthesisResult:
    """Run the full IMPACT flow on a CDFG.

    ``store``/``initial`` allow callers sweeping the laxity factor to reuse
    the behavioral simulation and the initial design point across runs.
    ``starts`` adds extra search starting points (e.g. the area-optimized
    design when optimizing power, or the previous laxity point's result);
    the search runs from each and the best final design wins.  ``initial``
    always defines ``enc_min`` (the minimum-ENC parallel design) and is
    always included as a starting point.

    ``caching`` toggles the content-addressed pipeline memo tables
    (bit-identical results either way); ``parallel_starts`` runs the extra
    starting points' searches on a thread pool.
    """
    engine = SynthesisEngine(cdfg, stimulus, library=library, options=options,
                             caching=caching, store=store, initial=initial)
    return engine.run(mode=mode, laxity=laxity, search=search, starts=starts,
                      area_cap=area_cap, parallel_starts=parallel_starts)
