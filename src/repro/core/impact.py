"""IMPACT: the top-level synthesis flow (Figure 7).

1. Behavioral simulation of the CDFG over a typical stimulus records the
   traces and statistics for power estimation.
2. The initial RT architecture is fully parallel (fastest modules, one
   register per variable) and is scheduled with Wavesched at the designer's
   clock period; its ENC is the minimum achievable with the library, so the
   laxity factor times it is the performance budget.
3. The variable-depth iterative-improvement search explores move sequences
   (scheduling, module selection, resource sharing/splitting, multiplexer
   restructuring are all interleaved) until no sequence reduces the cost.

``mode="power"`` optimizes the Vdd-scaled power estimate (what the paper's
I-Power designs minimize); ``mode="area"`` the area model (the paper's
area-optimization mode, used as the comparison base).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConstraintError
from repro.cdfg.graph import CDFG
from repro.cdfg.interpreter import simulate
from repro.core.design import DesignPoint
from repro.core.search import (
    SearchConfig,
    SearchHistory,
    design_cost,
    iterative_improvement,
)
from repro.library.library import ModuleLibrary
from repro.library.modules_data import default_library
from repro.sched.engine import ScheduleOptions
from repro.sim.traces import TraceStore


@dataclass
class SynthesisResult:
    """Everything a caller needs about one synthesis run."""

    design: DesignPoint
    initial: DesignPoint
    mode: str
    laxity: float
    enc_min: float
    enc_budget: float
    history: SearchHistory
    store: TraceStore

    @property
    def enc(self) -> float:
        return self.design.enc

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "laxity": self.laxity,
            "enc_min": round(self.enc_min, 2),
            "enc": round(self.design.enc, 2),
            **self.design.summary(),
            "moves": self.history.total_moves(),
            "evaluations": self.history.evaluations,
        }


def synthesize(
    cdfg: CDFG,
    stimulus: list[dict[str, int]],
    *,
    mode: str = "power",
    laxity: float = 1.0,
    library: ModuleLibrary | None = None,
    options: ScheduleOptions | None = None,
    search: SearchConfig | None = None,
    store: TraceStore | None = None,
    initial: DesignPoint | None = None,
    starts: list[DesignPoint] | None = None,
    area_cap: float | None = None,
) -> SynthesisResult:
    """Run the full IMPACT flow on a CDFG.

    ``store``/``initial`` allow callers sweeping the laxity factor to reuse
    the behavioral simulation and the initial design point across runs.
    ``starts`` adds extra search starting points (e.g. the area-optimized
    design when optimizing power, or the previous laxity point's result);
    the search runs from each and the best final design wins.  ``initial``
    always defines ``enc_min`` (the minimum-ENC parallel design) and is
    always included as a starting point.
    """
    if laxity < 1.0:
        raise ConstraintError(f"laxity factor must be >= 1.0, got {laxity}")
    library = library or default_library()
    options = options or ScheduleOptions()
    if store is None:
        store = simulate(cdfg, stimulus)
    if initial is None:
        initial = DesignPoint.initial(cdfg, library, store, options)
    enc_min = initial.enc
    enc_budget = laxity * enc_min

    def feasible(design: DesignPoint) -> bool:
        evaluation = design.evaluate()
        if not evaluation.legal or evaluation.enc > enc_budget + 1e-9:
            return False
        return area_cap is None or evaluation.area <= area_cap + 1e-9

    best_design: DesignPoint | None = None
    best_history: SearchHistory | None = None
    best_key = (False, float("inf"))  # (feasible, cost) -- feasible wins
    start_points = [initial] + [
        s for s in (starts or [])
        if s.evaluate().legal and s.enc <= enc_budget + 1e-9
    ]
    for start in start_points:
        design, history = iterative_improvement(start, mode, enc_budget, search,
                                                area_cap=area_cap)
        key = (not feasible(design), design_cost(design, mode, enc_budget))
        if best_design is None or key < best_key:
            best_key = key
            best_design = design
            best_history = history
        elif best_history is not None:
            best_history.evaluations += history.evaluations

    return SynthesisResult(
        design=best_design,
        initial=initial,
        mode=mode,
        laxity=laxity,
        enc_min=enc_min,
        enc_budget=enc_budget,
        history=best_history,
        store=store,
    )
