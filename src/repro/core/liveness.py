"""Register liveness over the STG.

Register sharing (Section 3.2.3) may only merge variables whose lifetimes
never overlap.  Lifetimes are computed by a standard backward dataflow
fixpoint over the (cyclic) state transition graph at carrier granularity:

* a state *uses* carrier v if any of its operations reads v's value
  (conservatively including chained reads — safe, never unsound);
* a state *defines* v if an operation writing v executes in it;
* inputs are defined in the start state (loaded from pins).

Two carriers interfere if some state has both alive (live-out or defined).
"""

from __future__ import annotations

from repro.cdfg.node import OpKind


def carrier_liveness(design) -> dict[int, set[str]]:
    """live-out-or-defined carrier sets per state of a design point."""
    cdfg = design.cdfg
    stg = design.stg

    uses: dict[int, set[str]] = {s: set() for s in stg.states}
    defs: dict[int, set[str]] = {s: set() for s in stg.states}
    for state in stg.states.values():
        for op in state.ops:
            node = cdfg.node(op.node)
            if node.carrier is not None:
                defs[state.id].add(node.carrier)
            for edge in cdfg.in_edges(op.node):
                src = cdfg.node(edge.src)
                if src.carrier is not None and src.kind is not OpKind.CONST:
                    uses[state.id].add(src.carrier)
    for node_id in cdfg.input_nodes:
        defs[stg.start].add(cdfg.node(node_id).carrier)
    # Output reads keep their carriers live through the done state.
    for out_id in cdfg.output_nodes:
        edge = cdfg.in_edge(out_id, 0)
        src = cdfg.node(edge.src)
        if src.carrier is not None:
            uses[stg.done].add(src.carrier)

    preds: dict[int, list[int]] = {s: [] for s in stg.states}
    for transition in stg.transitions:
        preds[transition.dst].append(transition.src)

    live_in: dict[int, set[str]] = {s: set() for s in stg.states}
    live_out: dict[int, set[str]] = {s: set() for s in stg.states}
    changed = True
    while changed:
        changed = False
        for state_id in stg.states:
            out = set()
            for transition in stg.out_transitions(state_id):
                out |= live_in[transition.dst]
            new_in = uses[state_id] | (out - defs[state_id])
            if out != live_out[state_id] or new_in != live_in[state_id]:
                live_out[state_id] = out
                live_in[state_id] = new_in
                changed = True

    return {s: live_out[s] | defs[s] for s in stg.states}


def carriers_interfere(liveness: dict[int, set[str]], a: str, b: str) -> bool:
    """True if carriers ``a`` and ``b`` are ever alive in the same state."""
    for alive in liveness.values():
        if a in alive and b in alive:
            return True
    return False
