"""Lightweight per-stage timing for the synthesis hot path.

The iterative-improvement search funnels every candidate evaluation
through the same pipeline stages (schedule, replay, architecture build,
trace merge, power estimate); knowing where the wall time goes — and how
often the incremental evaluation layer short-circuits a stage — is what
lets successive PRs attack the right bottleneck.  A :class:`Profiler` is
a thread-safe bag of per-stage counters with windowed deltas, mirroring
the :class:`~repro.core.cache.SynthesisCache` accounting style, so the
engine can attach an exact per-run breakdown to each
:class:`~repro.core.engine.SynthesisResult`.

Timing uses ``time.perf_counter`` around stage bodies; the overhead is a
dict update under a lock per stage call (microseconds against stage
bodies that run for milliseconds).  The module-level :data:`PROFILER` is
what the pipeline stages record into by default.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field


@dataclass
class StageToken:
    """Mutable marker yielded by :meth:`Profiler.stage`.

    Stages that only discover mid-flight whether they took the
    incremental path (schedule fragment replay, per-pass replay reuse)
    set ``incremental`` on the token before the block exits.
    """

    incremental: bool = False


@dataclass
class StageStats:
    """Accumulated timing of one pipeline stage."""

    calls: int = 0
    seconds: float = 0.0
    #: Calls served by the delta-based incremental path (a strict subset
    #: of ``calls``; the rest ran the full recomputation).
    incremental: int = 0

    def as_dict(self) -> dict[str, float]:
        return {
            "calls": self.calls,
            "seconds": round(self.seconds, 4),
            "incremental": self.incremental,
            "full": self.calls - self.incremental,
        }


class Profiler:
    """Thread-safe per-stage wall-time and incremental-hit accounting."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._stages: dict[str, StageStats] = {}

    @contextmanager
    def stage(self, name: str, incremental: bool = False):
        """Time one stage execution (``incremental`` marks a delta path).

        Yields a :class:`StageToken`; a stage that only knows *after* the
        fact whether it short-circuited (e.g. schedule fragment replay)
        may set ``token.incremental`` inside the block instead of passing
        the flag up front.
        """
        token = StageToken(incremental=incremental)
        t0 = time.perf_counter()
        try:
            yield token
        finally:
            elapsed = time.perf_counter() - t0
            with self._lock:
                stats = self._stages.get(name)
                if stats is None:
                    stats = self._stages[name] = StageStats()
                stats.calls += 1
                stats.seconds += elapsed
                if token.incremental:
                    stats.incremental += 1

    def record(self, name: str, seconds: float = 0.0,
               incremental: bool = False) -> None:
        """Count one stage event without timing a block.

        The counter-only entry point for stages whose cost is not the
        interesting part — coverage extraction in the fuzz fleet,
        explore checkpoint hits — where callers want the event visible
        in :meth:`stats` next to the timed stages.
        """
        with self._lock:
            stats = self._stages.get(name)
            if stats is None:
                stats = self._stages[name] = StageStats()
            stats.calls += 1
            stats.seconds += seconds
            if incremental:
                stats.incremental += 1

    # -- windows ---------------------------------------------------------------

    def snapshot(self) -> dict[str, tuple[int, float, int]]:
        """(calls, seconds, incremental) per stage — for windowed deltas."""
        with self._lock:
            return {name: (s.calls, s.seconds, s.incremental)
                    for name, s in self._stages.items()}

    def window(self, since: dict[str, tuple[int, float, int]]) -> dict[str, dict]:
        """Per-stage stats accumulated after a :meth:`snapshot`."""
        out: dict[str, dict] = {}
        with self._lock:
            for name, stats in self._stages.items():
                calls0, seconds0, inc0 = since.get(name, (0, 0.0, 0))
                delta = StageStats(stats.calls - calls0,
                                   stats.seconds - seconds0,
                                   stats.incremental - inc0)
                if delta.calls:
                    out[name] = delta.as_dict()
        return out

    def stats(self) -> dict[str, dict]:
        """Lifetime per-stage stats."""
        with self._lock:
            return {name: s.as_dict() for name, s in self._stages.items()}

    def incremental_hits(self) -> dict[str, int]:
        """Incremental-path call counts per stage (lifetime)."""
        with self._lock:
            return {name: s.incremental for name, s in self._stages.items()
                    if s.incremental}

    def reset(self) -> None:
        with self._lock:
            self._stages.clear()


#: The process-wide profiler every pipeline stage records into.
PROFILER = Profiler()
