"""Variable-depth iterative improvement (SCALP-style, Section 3.1).

One iteration builds a *sequence* of moves: at each depth every sampled
candidate move is evaluated and the best-gain move is taken — even when its
gain is negative (that is how the search escapes local minima).  The
longest prefix of the sequence with the best cumulative gain over a legal,
constraint-satisfying design is then committed; the search stops when no
iteration improves.

Constraint handling follows the paper: intermediate points in a sequence
may violate the cycle-time constraint or the ENC budget, but a prefix only
qualifies for commitment if its endpoint is legal and within budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.core.design import DesignPoint, energy_cost
from repro.core.moves import Move, generate_moves


@dataclass(frozen=True)
class SearchConfig:
    """Knobs bounding the search effort."""

    max_depth: int = 6
    max_candidates: int = 16
    max_iterations: int = 10
    seed: int = 0
    min_gain: float = 1e-9


@dataclass
class SearchStep:
    move_signature: tuple
    cost: float
    gain: float
    legal: bool
    within_budget: bool


@dataclass
class SearchHistory:
    iterations: list[list[SearchStep]] = field(default_factory=list)
    committed: list[int] = field(default_factory=list)  # prefix length per iteration
    evaluations: int = 0
    #: Pipeline-cache hits/misses accumulated while this search ran
    #: (schedule + replay + trace-merge tables; zero without a cache).
    #: Under parallel multi-start the windows of sibling searches overlap,
    #: so per-search numbers are indicative — the run-level stats on
    #: :class:`~repro.core.engine.SynthesisResult` are exact.
    cache_hits: int = 0
    cache_misses: int = 0

    def total_moves(self) -> int:
        return sum(self.committed)

    @property
    def cache_hit_rate(self) -> float:
        calls = self.cache_hits + self.cache_misses
        return self.cache_hits / calls if calls else 0.0


def design_cost(design: DesignPoint, mode: str, enc_budget: float) -> float:
    """The search objective: area, or equal-throughput energy per pass."""
    if mode == "area":
        return design.evaluate().area
    if mode == "power":
        return energy_cost(design, enc_budget)
    raise ReproError(f"unknown optimization mode {mode!r}")


def iterative_improvement(
    initial: DesignPoint,
    mode: str,
    enc_budget: float,
    config: SearchConfig | None = None,
    area_cap: float | None = None,
) -> tuple[DesignPoint, SearchHistory]:
    """Run the IMPACT search from an initial design point.

    ``mode`` is "power" or "area"; ``enc_budget`` the laxity-scaled ENC
    ceiling; ``area_cap`` an optional absolute area ceiling a committed
    prefix must respect (the paper's designs stay within ~1.3x of the
    area-optimized base).  Returns the best design and the history.
    """
    config = config or SearchConfig()
    rng = random.Random(config.seed)
    history = SearchHistory()
    cache = initial.cache
    cache_snapshot = cache.snapshot() if cache is not None else None

    current = initial
    current_eval = current.evaluate()
    if not current_eval.legal:
        raise ReproError("initial design point violates timing")
    current_cost = design_cost(current, mode, enc_budget)

    for _iteration in range(config.max_iterations):
        steps: list[SearchStep] = []
        work = current
        work_cost = current_cost
        tabu: set[tuple] = set()
        snapshots: list[DesignPoint] = []
        best_prefix_gain = 0.0
        best_prefix_len = 0

        for _depth in range(config.max_depth):
            candidates = [m for m in generate_moves(work)
                          if m.signature() not in tabu]
            if len(candidates) > config.max_candidates:
                candidates = rng.sample(candidates, config.max_candidates)
            best_move: Move | None = None
            best_design: DesignPoint | None = None
            best_cost = float("inf")
            for move in candidates:
                # Candidates rejected inside apply() (interfering register
                # shares, illegal merges) are search effort too — count
                # them before the attempt so reported evaluation counts
                # reflect what the search actually tried.
                history.evaluations += 1
                try:
                    candidate = move.apply(work)
                except ReproError:
                    continue
                cost = design_cost(candidate, mode, enc_budget)
                if cost < best_cost:
                    best_cost = cost
                    best_move = move
                    best_design = candidate
            if best_move is None:
                break

            gain = work_cost - best_cost
            work = best_design
            work_cost = best_cost
            tabu.add(best_move.signature())
            evaluation = work.evaluate()
            within = evaluation.enc <= enc_budget + 1e-9
            if area_cap is not None:
                within = within and evaluation.area <= area_cap + 1e-9
            steps.append(SearchStep(best_move.signature(), best_cost, gain,
                                    evaluation.legal, within))
            snapshots.append(work)

            cumulative = current_cost - work_cost
            if evaluation.legal and within and cumulative > best_prefix_gain:
                best_prefix_gain = cumulative
                best_prefix_len = len(snapshots)

        history.iterations.append(steps)
        history.committed.append(best_prefix_len)
        if best_prefix_gain > config.min_gain and best_prefix_len > 0:
            current = snapshots[best_prefix_len - 1]
            current_cost = design_cost(current, mode, enc_budget)
        else:
            break

    if cache_snapshot is not None:
        delta = cache.delta(cache_snapshot)
        history.cache_hits = delta.hits
        history.cache_misses = delta.misses
    return current, history
