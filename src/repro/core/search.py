"""Variable-depth iterative improvement (SCALP-style, Section 3.1).

One iteration builds a *sequence* of moves: at each depth every sampled
candidate move is evaluated and the best-gain move is taken — even when its
gain is negative (that is how the search escapes local minima).  The
longest prefix of the sequence with the best cumulative gain over a legal,
constraint-satisfying design is then committed; the search stops when no
iteration improves.

Constraint handling follows the paper: intermediate points in a sequence
may violate the cycle-time constraint or the ENC budget, but a prefix only
qualifies for commitment if its endpoint is legal and within budget.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError
from repro.core.design import DesignPoint, Evaluation, energy_cost
from repro.core.moves import Move, generate_moves

#: An archive hook: called with every legal, within-budget design point the
#: search visits (see :func:`iterative_improvement`).
Observer = Callable[[DesignPoint, Evaluation], None]


@dataclass(frozen=True)
class SearchConfig:
    """Knobs bounding the search effort."""

    max_depth: int = 6
    max_candidates: int = 16
    max_iterations: int = 10
    seed: int = 0
    min_gain: float = 1e-9


@dataclass
class SearchStep:
    move_signature: tuple
    cost: float
    gain: float
    legal: bool
    within_budget: bool


@dataclass
class SearchHistory:
    iterations: list[list[SearchStep]] = field(default_factory=list)
    committed: list[int] = field(default_factory=list)  # prefix length per iteration
    evaluations: int = 0
    #: Pipeline-cache hits/misses accumulated while this search ran
    #: (schedule + replay + trace-merge tables; zero without a cache).
    #: Under parallel multi-start the windows of sibling searches overlap,
    #: so per-search numbers are indicative — the run-level stats on
    #: :class:`~repro.core.engine.SynthesisResult` are exact.
    cache_hits: int = 0
    cache_misses: int = 0

    def total_moves(self) -> int:
        return sum(self.committed)

    @property
    def cache_hit_rate(self) -> float:
        calls = self.cache_hits + self.cache_misses
        return self.cache_hits / calls if calls else 0.0


@dataclass(frozen=True)
class WeightedObjective:
    """A scalarized multi-objective cost over (area, energy, latency).

    The cost of a design is the weighted sum of its three objectives,
    each normalized by a reference value (typically the initial design's)
    so the weights are unit-free and comparable:

    ``w_area * area/area_ref + w_power * energy/power_ref
    + w_latency * enc/latency_ref``

    where *energy* is :func:`energy_cost` (energy per pass at the
    equal-throughput Vdd — what ``mode="power"`` minimizes) and *enc* the
    empirical number of cycles per pass.  Any subset of the weights may
    be zero; ``WeightedObjective(1, 0, 0)`` degenerates to area mode.

    Instances are accepted anywhere a ``mode`` string is (``engine.run``,
    :func:`design_cost`); :func:`repro.explore.explore` builds one per
    weight vector to trace out the Pareto surface.
    """

    w_area: float = 0.0
    w_power: float = 0.0
    w_latency: float = 0.0
    area_ref: float = 1.0
    power_ref: float = 1.0
    latency_ref: float = 1.0

    @classmethod
    def for_engine(cls, engine, weights, laxity: float) -> "WeightedObjective":
        """Build an objective normalized by an engine's initial design.

        ``weights`` is the ``(w_area, w_power, w_latency)`` triple;
        ``laxity`` fixes the ENC budget the energy reference is computed
        under.  The reference values come from the engine's minimum-ENC
        initial design point, so a cost of 1.0 per unit weight means
        "as good as the fully-parallel start".
        """
        try:
            w_area, w_power, w_latency = weights
        except (TypeError, ValueError):
            raise ReproError(
                f"weights must be a (w_area, w_power, w_latency) triple, "
                f"got {weights!r}") from None
        initial = engine.initial
        evaluation = initial.evaluate()
        return cls(
            w_area, w_power, w_latency,
            area_ref=evaluation.area or 1.0,
            power_ref=energy_cost(initial, laxity * initial.enc) or 1.0,
            latency_ref=initial.enc or 1.0)

    def cost(self, design: DesignPoint, enc_budget: float) -> float:
        """The scalarized cost of ``design`` under this weight vector."""
        evaluation = design.evaluate()
        total = 0.0
        if self.w_area:
            total += self.w_area * evaluation.area / self.area_ref
        if self.w_power:
            total += self.w_power * energy_cost(design, enc_budget) / self.power_ref
        if self.w_latency:
            total += self.w_latency * evaluation.enc / self.latency_ref
        return total

    @property
    def label(self) -> str:
        """A compact report label, e.g. ``weighted(1,0.5,0)``."""
        return (f"weighted({self.w_area:g},{self.w_power:g},"
                f"{self.w_latency:g})")


def design_cost(design: DesignPoint, mode, enc_budget: float) -> float:
    """The search objective for one design point.

    ``mode`` is ``"area"`` (the area model), ``"power"`` (equal-throughput
    energy per pass) or a :class:`WeightedObjective` scalarizing the two
    plus latency.  ``enc_budget`` is the laxity-scaled ENC ceiling the
    equal-throughput Vdd is computed against.
    """
    if isinstance(mode, WeightedObjective):
        return mode.cost(design, enc_budget)
    if mode == "area":
        return design.evaluate().area
    if mode == "power":
        return energy_cost(design, enc_budget)
    raise ReproError(f"unknown optimization mode {mode!r}")


def iterative_improvement(
    initial: DesignPoint,
    mode,
    enc_budget: float,
    config: SearchConfig | None = None,
    area_cap: float | None = None,
    observer: Observer | None = None,
) -> tuple[DesignPoint, SearchHistory]:
    """Run the IMPACT search from an initial design point.

    ``mode`` is "power", "area" or a :class:`WeightedObjective`;
    ``enc_budget`` the laxity-scaled ENC ceiling; ``area_cap`` an optional
    absolute area ceiling a committed prefix must respect (the paper's
    designs stay within ~1.3x of the area-optimized base).

    ``observer`` is the archive hook for multi-objective exploration: it
    is called once for the (legal) initial point and once for every step
    endpoint of a move sequence whose evaluation is legal and within
    budget — i.e. every feasible design the search actually visits, not
    just the one it commits to.  Offers happen in visit order, so an
    archive fed by a deterministic search is itself deterministic.

    Returns the best design and the search history.
    """
    config = config or SearchConfig()
    rng = random.Random(config.seed)
    history = SearchHistory()
    cache = initial.cache
    cache_snapshot = cache.snapshot() if cache is not None else None

    current = initial
    current_eval = current.evaluate()
    if not current_eval.legal:
        raise ReproError("initial design point violates timing")
    if observer is not None and current_eval.enc <= enc_budget + 1e-9:
        observer(current, current_eval)
    current_cost = design_cost(current, mode, enc_budget)

    for _iteration in range(config.max_iterations):
        steps: list[SearchStep] = []
        work = current
        work_cost = current_cost
        tabu: set[tuple] = set()
        snapshots: list[DesignPoint] = []
        best_prefix_gain = 0.0
        best_prefix_len = 0

        for _depth in range(config.max_depth):
            candidates = [m for m in generate_moves(work)
                          if m.signature() not in tabu]
            if len(candidates) > config.max_candidates:
                candidates = rng.sample(candidates, config.max_candidates)
            best_move: Move | None = None
            best_design: DesignPoint | None = None
            best_cost = float("inf")
            for move in candidates:
                # Candidates rejected inside apply() (interfering register
                # shares, illegal merges) are search effort too — count
                # them before the attempt so reported evaluation counts
                # reflect what the search actually tried.
                history.evaluations += 1
                try:
                    candidate = move.apply(work)
                except ReproError:
                    continue
                cost = design_cost(candidate, mode, enc_budget)
                if cost < best_cost:
                    best_cost = cost
                    best_move = move
                    best_design = candidate
            if best_move is None:
                break

            gain = work_cost - best_cost
            work = best_design
            work_cost = best_cost
            tabu.add(best_move.signature())
            evaluation = work.evaluate()
            within = evaluation.enc <= enc_budget + 1e-9
            if area_cap is not None:
                within = within and evaluation.area <= area_cap + 1e-9
            steps.append(SearchStep(best_move.signature(), best_cost, gain,
                                    evaluation.legal, within))
            snapshots.append(work)
            if observer is not None and evaluation.legal and within:
                observer(work, evaluation)

            cumulative = current_cost - work_cost
            if evaluation.legal and within and cumulative > best_prefix_gain:
                best_prefix_gain = cumulative
                best_prefix_len = len(snapshots)

        history.iterations.append(steps)
        history.committed.append(best_prefix_len)
        if best_prefix_gain > config.min_gain and best_prefix_len > 0:
            current = snapshots[best_prefix_len - 1]
            current_cost = design_cost(current, mode, enc_budget)
        else:
            break

    if cache_snapshot is not None:
        delta = cache.delta(cache_snapshot)
        history.cache_hits = delta.hits
        history.cache_misses = delta.misses
    return current, history
