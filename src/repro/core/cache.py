"""Content-addressed memo tables for the synthesis hot path.

The iterative-improvement search evaluates hundreds of candidate design
points per run, and distinct candidates very often share intermediate
artifacts: two moves that arrive at the same binding need the same
schedule, two schedules with identical STGs replay identically, and any
(binding, STG) pair merges the same unit traces.  A :class:`SynthesisCache`
keys each stage on a content signature of exactly its inputs:

* **schedule** — (CDFG id, binding signature, schedule options);
* **replay**   — (trace-store id, CDFG id, STG signature);
* **traces**   — (trace-store id, CDFG id, binding signature, STG
  signature, clock period);
* **design**   — (CDFG id, trace-store id, options, binding signature,
  STG signature, mux tree policy) -> the whole derived
  :class:`~repro.core.design.DesignPoint`.  The search revisits
  candidates constantly (the same move from the same point in a later
  iteration, or the same binding reached along two move orders), and a
  revisited point's architecture, merged traces and power estimate are
  already materialized — a hit skips the entire evaluation pipeline.
  Rescheduling derivations drop the STG term: the schedule is itself a
  function of (CDFG, binding, options), so the binding signature alone
  determines the point.

All cached values are immutable once published (STG states, replay arrays
and merged traces are never mutated after construction — per-architecture
state durations live on :class:`~repro.rtl.architecture.Architecture`
precisely so STGs can be shared), so returning a shared object is
bit-identical to recomputing it.  A disabled cache recomputes every call
but still counts it as a miss, which is what lets benches report "full
computations avoided" by comparing hit/miss totals.

Tables are lock-guarded so the engine's parallel multi-start searches can
share one cache; a racing miss at worst computes a value twice and
publishes identical content.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Callable


@dataclass
class CacheStats:
    """Hit/miss counters of one memo table (or an aggregate)."""

    hits: int = 0
    misses: int = 0

    @property
    def calls(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.calls if self.calls else 0.0

    def as_dict(self) -> dict[str, float]:
        return {"hits": self.hits, "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4)}


class MemoTable:
    """One keyed memo table with hit/miss accounting.

    ``enabled=False`` turns the table into a counter-only pass-through:
    every call recomputes and registers as a miss, so the *number of full
    computations* stays measurable with caching off.

    ``max_entries`` optionally bounds the table with FIFO eviction
    (python dicts iterate in insertion order, so the oldest entry is the
    first key).  Off by default — a search-lifetime engine wants every
    artifact — and enabled by long-lived owners such as the job-server
    worker pool, whose engines would otherwise grow without bound.
    Eviction only drops the in-process reference; correctness is
    untouched (a re-request recomputes or re-reads the same content).
    """

    def __init__(self, name: str, enabled: bool = True,
                 max_entries: int | None = None):
        self.name = name
        self.enabled = enabled
        self.max_entries = max_entries
        self._table: dict[Any, Any] = {}
        self._lock = threading.Lock()
        self.stats = CacheStats()

    def get_or_compute(self, key: Any, compute: Callable[[], Any]) -> Any:
        if not self.enabled:
            with self._lock:
                self.stats.misses += 1
            return compute()
        with self._lock:
            if key in self._table:
                self.stats.hits += 1
                return self._table[key]
            self.stats.misses += 1
        value = compute()
        with self._lock:
            return self._publish_locked(key, value)

    def _publish_locked(self, key: Any, value: Any) -> Any:
        """Insert under the held lock; FIFO-evict past ``max_entries``.

        A racing thread may have published first; the first value is kept
        so every caller sees one shared object.
        """
        value = self._table.setdefault(key, value)
        excess = (len(self._table) - self.max_entries
                  if self.max_entries is not None else 0)
        if excess > 0:
            # Oldest-first, never the entry being returned.
            for oldest in [k for k in self._table if k != key][:excess]:
                del self._table[oldest]
        return value

    def clear(self) -> None:
        with self._lock:
            self._table.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._table)


class SynthesisCache:
    """The four memo tables of the synthesis pipeline, plus counters.

    One instance is owned by a :class:`~repro.core.engine.SynthesisEngine`
    (or created ad hoc by :func:`~repro.core.impact.synthesize`) and
    threaded through every :class:`~repro.core.design.DesignPoint` it
    derives, so laxity sweeps and multi-start searches share artifacts.
    """

    def __init__(self, enabled: bool = True, max_entries: int | None = None):
        self.enabled = enabled
        self.max_entries = max_entries
        self.schedule = MemoTable("schedule", enabled, max_entries)
        self.replay = MemoTable("replay", enabled, max_entries)
        self.traces = MemoTable("traces", enabled, max_entries)
        self.designs = MemoTable("design", enabled, max_entries)

    @property
    def tables(self) -> tuple[MemoTable, ...]:
        return (self.schedule, self.replay, self.traces, self.designs)

    def total_hits(self) -> int:
        return sum(t.stats.hits for t in self.tables)

    def total_misses(self) -> int:
        return sum(t.stats.misses for t in self.tables)

    def snapshot(self) -> dict[str, tuple[int, int]]:
        """(hits, misses) per table — cheap, for windowed deltas."""
        return {t.name: (t.stats.hits, t.stats.misses) for t in self.tables}

    def delta(self, since: dict[str, tuple[int, int]]) -> "CacheStats":
        """Aggregate hits/misses accumulated after a :meth:`snapshot`."""
        agg = CacheStats()
        for table in self.tables:
            hits0, misses0 = since.get(table.name, (0, 0))
            agg.hits += table.stats.hits - hits0
            agg.misses += table.stats.misses - misses0
        return agg

    def stats(self) -> dict[str, dict[str, float]]:
        out = {t.name: t.stats.as_dict() for t in self.tables}
        total = CacheStats(self.total_hits(), self.total_misses())
        out["total"] = total.as_dict()
        return out

    def window_stats(self, since: dict[str, tuple[int, int]]) -> dict[str, dict[str, float]]:
        """Like :meth:`stats`, restricted to the window after ``since``."""
        out: dict[str, dict[str, float]] = {}
        total = CacheStats()
        for table in self.tables:
            hits0, misses0 = since.get(table.name, (0, 0))
            window = CacheStats(table.stats.hits - hits0,
                                table.stats.misses - misses0)
            out[table.name] = window.as_dict()
            total.hits += window.hits
            total.misses += window.misses
        out["total"] = total.as_dict()
        return out

    def clear(self) -> None:
        for table in self.tables:
            table.clear()
